//! # pastfuture
//!
//! Umbrella crate for the Rust reproduction of **"Past-Future Scheduler for
//! LLM Serving under SLA Guarantees"** (ASPLOS 2025). It re-exports the whole
//! workspace:
//!
//! * [`core`] — the paper's contribution: output-length distribution
//!   prediction and future-required-memory estimation, plus the
//!   aggressive/conservative/oracle baselines;
//! * [`sim`] — a discrete-event continuous-batching serving engine with a
//!   roofline GPU performance model (the LightLLM stand-in), including the
//!   static [`sim::cluster`] and elastic [`sim::elastic`] multi-instance
//!   co-simulations;
//! * [`autoscale`] — SLA-driven elastic scaling: load predictors,
//!   performance interpolation and the scaling policy;
//! * [`workload`] — length distributions, datasets, trace synthesis and
//!   arrival processes (Poisson, diurnal, bursty);
//! * [`kvcache`] — KV-cache memory managers;
//! * [`metrics`] — SLA/goodput accounting and similarity metrics;
//! * [`frameworks`] — serving-framework presets used as baselines.
//!
//! # Quickstart
//!
//! ```
//! use pastfuture::prelude::*;
//!
//! // A decode-heavy workload served by the Past-Future scheduler.
//! let requests = datasets::distribution_1(64, 7);
//! let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
//!     .scheduler(SchedulerConfig::past_future())
//!     .seed(7)
//!     .build();
//! let report = Simulation::offline(config, requests).run().unwrap();
//! assert!(report.goodput.total_requests > 0);
//! ```

pub use pf_autoscale as autoscale;
pub use pf_core as core;
pub use pf_frameworks as frameworks;
pub use pf_kvcache as kvcache;
pub use pf_metrics as metrics;
pub use pf_sim as sim;
pub use pf_workload as workload;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use pf_core::{
        AggressiveScheduler, ConservativeScheduler, FutureMemoryEstimator, OracleScheduler,
        OutputLengthHistory, OutputLengthPredictor, PastFutureScheduler, Scheduler,
        SchedulerConfig,
    };
    pub use pf_frameworks::{Framework, FrameworkPreset};
    pub use pf_kvcache::{KvCacheManager, PagedPool, TokenPool};
    pub use pf_metrics::{GoodputReport, RequestTiming, SimDuration, SimTime, SlaSpec, Summary};
    pub use pf_sim::{GpuSpec, ModelSpec, PerfModel, SimConfig, SimReport, Simulation};
    pub use pf_workload::{datasets, ClosedLoopClients, LengthSampler, RequestSpec};
}
