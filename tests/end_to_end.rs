//! Cross-crate integration tests: the full stack from workload generation
//! through scheduling, simulation and SLA accounting.

use pastfuture::core::{BatchEntry, FutureMemoryEstimator, SchedulerConfig};
use pastfuture::prelude::*;
use pastfuture::sim::KvLayout;
use pastfuture::workload::datasets;

fn warmup(n: usize, seed: u64) -> Vec<u32> {
    datasets::sharegpt_o1(n, seed)
        .iter()
        .map(|r| r.true_output_len)
        .collect()
}

/// The paper's headline: under heavy decode-heavy load the Past-Future
/// scheduler delivers more goodput than both baselines.
///
/// 24 clients keep the deployment in the heavy-load regime the paper's
/// claim is about: memory-pressured enough that aggressive admission pays
/// ~90% evictions (MTPOT stalls), but not so oversaturated that queueing
/// alone pushes median TTFT far past the SLA for every scheduler — past
/// that point goodput collapses for all policies and the comparison is
/// noise (40 clients, the previous setting, put median TTFT at 25–50 s
/// against the 10 s limit and made the winner a coin flip per seed).
#[test]
fn past_future_wins_goodput_under_heavy_load() {
    let run = |scheduler: SchedulerConfig| {
        let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
            .scheduler(scheduler)
            .capacity_override(40_000)
            .history_warmup(warmup(1000, 50))
            .record_series(false)
            .seed(8)
            .build();
        Simulation::closed_loop(
            config,
            datasets::sharegpt_o1(160, 51),
            ClosedLoopClients::new(24),
        )
        .run()
        .unwrap()
    };
    let conservative = run(SchedulerConfig::conservative());
    let aggressive = run(SchedulerConfig::aggressive(0.99));
    let past_future = run(SchedulerConfig::past_future_reserved(0.03));
    assert!(
        past_future.goodput_tok_per_s() >= aggressive.goodput_tok_per_s(),
        "PF {} vs aggressive {}",
        past_future.goodput_tok_per_s(),
        aggressive.goodput_tok_per_s()
    );
    assert!(
        past_future.goodput_tok_per_s() > 1.5 * conservative.goodput_tok_per_s(),
        "PF {} vs conservative {}",
        past_future.goodput_tok_per_s(),
        conservative.goodput_tok_per_s()
    );
    assert!(past_future.evicted_request_pct() < aggressive.evicted_request_pct());
}

/// Oracle ≥ Past-Future ≥ conservative on memory utilization; oracle never
/// evicts; conservative never evicts without overcommit.
#[test]
fn utilization_ordering_matches_table_1() {
    let run = |scheduler: SchedulerConfig| {
        let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
            .scheduler(scheduler)
            .history_warmup(
                datasets::distribution_1(1000, 70)
                    .iter()
                    .map(|r| r.true_output_len)
                    .collect(),
            )
            .record_series(false)
            .seed(9)
            .build();
        Simulation::offline(config, datasets::distribution_1(150, 71))
            .run()
            .unwrap()
    };
    let oracle = run(SchedulerConfig::Oracle);
    let pf = run(SchedulerConfig::past_future_reserved(0.05));
    let conservative = run(SchedulerConfig::conservative());
    assert_eq!(oracle.evictions, 0);
    assert_eq!(conservative.evictions, 0);
    assert!(oracle.avg_consumed_frac >= pf.avg_consumed_frac - 0.02);
    assert!(pf.avg_consumed_frac > conservative.avg_consumed_frac + 0.15);
    assert!(oracle.decode_steps <= pf.decode_steps);
    assert!(pf.decode_steps < conservative.decode_steps);
}

/// Figure 2's arithmetic: the scheduler's own estimate of future required
/// memory agrees with the engine's measured peak when predictions are
/// exact (oracle).
#[test]
fn oracle_estimate_is_tight_against_engine_peak() {
    let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::Oracle)
        .capacity_override(3_000)
        .seed(10)
        .build();
    let requests = datasets::from_samplers(
        96,
        12,
        &LengthSampler::uniform(8, 64),
        &LengthSampler::uniform(32, 320),
        512,
    );
    let report = Simulation::offline(config, requests).run().unwrap();
    // The oracle packs the memory: peak close to capacity, never above.
    assert!(report.peak_consumed_frac <= 1.0);
    assert!(
        report.peak_consumed_frac > 0.97,
        "oracle should pack tightly, peaked at {}",
        report.peak_consumed_frac
    );
    assert_eq!(report.evictions, 0);
}

/// The estimator, KV accounting and engine agree for a hand-computed
/// two-request scenario.
#[test]
fn hand_computed_scenario_matches() {
    // Two requests, sequential completion: (input 10, output 4) and
    // (input 20, output 8). Both admitted at t=0 by the oracle iff
    // capacity fits M*.
    let entries = [
        BatchEntry {
            committed: 11,
            remaining: 3,
        }, // post-prefill state
        BatchEntry {
            committed: 21,
            remaining: 7,
        },
    ];
    let m_star = FutureMemoryEstimator::peak_memory(&entries);
    // Sorted desc: (21,7),(11,3): M1 = 28, M2 = 32 + 6 = 38.
    assert_eq!(m_star, 38);
    let requests = vec![
        RequestSpec::new(0u64, 10, 4, 16),
        RequestSpec::new(1u64, 20, 8, 16),
    ];
    let run_at = |capacity: u64| {
        let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
            .scheduler(SchedulerConfig::Oracle)
            .capacity_override(capacity)
            .seed(11)
            .build();
        Simulation::offline(config, requests.clone()).run().unwrap()
    };
    // At exactly M*, both requests run together: makespan is short.
    let tight = run_at(38);
    assert_eq!(tight.evictions, 0);
    // One token less forces serialization (second request admitted later).
    let short = run_at(37);
    assert_eq!(short.evictions, 0);
    assert!(short.makespan > tight.makespan);
}

/// Multimodal requests flow through the whole stack: image tokens occupy
/// KV and inflate prefill time.
#[test]
fn multimodal_image_tokens_cost_memory_and_time() {
    let with_images = datasets::textvqa_llava(48, 5);
    let text_only: Vec<RequestSpec> = with_images
        .iter()
        .map(|r| {
            RequestSpec::new(
                r.id.raw(),
                r.input_len - r.image_tokens,
                r.true_output_len,
                r.max_new_tokens,
            )
        })
        .collect();
    let run = |requests: Vec<RequestSpec>| {
        let config = SimConfig::builder(ModelSpec::llava_15_7b(), GpuSpec::a100_80g())
            .scheduler(SchedulerConfig::Oracle)
            .capacity_override(20_000)
            .seed(12)
            .build();
        Simulation::offline(config, requests).run().unwrap()
    };
    let multimodal = run(with_images);
    let text = run(text_only);
    assert!(multimodal.peak_consumed_frac > text.peak_consumed_frac);
    assert!(multimodal.makespan > text.makespan);
}

/// KV layouts only change overhead accounting, not workload outcomes.
#[test]
fn kv_layouts_complete_same_workload() {
    let requests = datasets::sharegpt(64, 20);
    for layout in [
        KvLayout::TokenPool,
        KvLayout::Paged { block_size: 16 },
        KvLayout::Contiguous,
    ] {
        let mut config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
            .scheduler(SchedulerConfig::conservative())
            .capacity_override(120_000)
            .seed(13)
            .build();
        config.kv_layout = layout;
        let report = Simulation::offline(config, requests.clone()).run().unwrap();
        assert_eq!(report.completed, 64, "{layout:?}");
    }
}

/// Determinism across the whole stack: every crate seeded, bit-identical
/// reports.
#[test]
fn full_stack_determinism() {
    let run = || {
        let config = SimConfig::builder(ModelSpec::llama2_13b(), GpuSpec::h800())
            .scheduler(SchedulerConfig::past_future())
            .history_warmup(warmup(500, 91))
            .seed(14)
            .build();
        Simulation::closed_loop(
            config,
            datasets::mixed_phase(30, 92),
            ClosedLoopClients::new(12),
        )
        .run()
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.decode_steps, b.decode_steps);
    assert_eq!(a.prefill_steps, b.prefill_steps);
    assert_eq!(a.evictions, b.evictions);
    assert_eq!(
        a.goodput.satisfied_output_tokens,
        b.goodput.satisfied_output_tokens
    );
}

/// The prelude exposes everything the README quickstart needs.
#[test]
fn prelude_suffices_for_quickstart() {
    let requests = datasets::distribution_1(16, 7);
    let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .seed(7)
        .build();
    let report = Simulation::offline(config, requests).run().unwrap();
    assert_eq!(report.completed, 16);
    assert!(report.goodput.total_output_tokens > 0);
}
