//! Heterogeneous fleets and cross-pool repurposing on the shared
//! `pf_sim::fleet` lifecycle kernel.
//!
//! Part 1 serves a diurnal chat cycle on a mixed elastic fleet (two big
//! GPUs plus two mid-tier GPUs at 45% of the price and 55% of the speed)
//! and prints the cost-weighted bill next to the plain GPU-seconds.
//!
//! Part 2 runs a prefill-heavy → decode-heavy phase shift through an
//! elastic disaggregated cluster with cross-pool repurposing enabled:
//! when the decode pool scales up while the prefill pool drains, the
//! drained prefill instance flips into the decode pool after a 2 s
//! repurpose delay instead of a 20 s cold warm-up.
//!
//! ```text
//! cargo run --release --example hetero_fleet
//! ```

use pf_autoscale::{AutoscaleConfig, PolicyConfig, PredictorKind};
use pf_core::SchedulerConfig;
use pf_metrics::{SimDuration, SimTime};
use pf_sim::disagg::{DisaggConfig, ElasticDisaggCluster};
use pf_sim::elastic::ElasticCluster;
use pf_sim::{GpuSpec, GpuType, ModelSpec, SimConfig};
use pf_workload::{datasets, rng::seeded, LengthSampler, RateProfile};

fn main() {
    // Part 1 — a mixed elastic fleet on diurnal chat.
    let base = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(6_000)
        .record_series(false)
        .seed(81)
        .build();
    let autoscale = AutoscaleConfig::bounded(1, 4)
        .interval(SimDuration::from_secs(10))
        .warmup(SimDuration::from_secs(20))
        .predictor(PredictorKind::holt())
        .initial_lengths(160.0, 224.0);
    let n = 900;
    let requests = datasets::short_chat(n, 82);
    let arrivals =
        RateProfile::diurnal(2.0, 10.0, SimDuration::from_secs(180)).assign(&mut seeded(83), n);
    let report = ElasticCluster::new(base.clone(), autoscale, 2)
        .fleet(vec![
            GpuType::big(),
            GpuType::big(),
            GpuType::mid(),
            GpuType::mid(),
        ])
        .run(requests, arrivals)
        .expect("mixed elastic run");
    println!(
        "mixed fleet: {} requests, SLA {:.1}%, {:.0} GPU-s billed as {:.0} cost-weighted GPU-s",
        report.completed(),
        report.sla_attainment() * 100.0,
        report.gpu_seconds(),
        report.cost_weighted_gpu_seconds(),
    );
    for (i, instance) in report.instances.iter().enumerate() {
        println!(
            "  instance {i}: {} ({}x cost, {}x speed) served {} requests over {:.0}s",
            instance.gpu.name,
            instance.gpu.cost_weight,
            instance.gpu.perf_scale,
            instance.routed,
            instance.active_secs(),
        );
    }

    // Part 2 — cross-pool repurposing through a phase shift.
    let n_prefill = 700;
    let n_decode = 450;
    let pre_in = LengthSampler::uniform(1024, 3072);
    let pre_out = LengthSampler::uniform(4, 16);
    let mut shift = datasets::from_samplers(n_prefill, 84, &pre_in, &pre_out, 32);
    let gen_in = LengthSampler::uniform(48, 160);
    let gen_out = LengthSampler::uniform(192, 512);
    let tail = datasets::from_samplers(n_decode, 85, &gen_in, &gen_out, 640);
    shift.extend(tail.into_iter().enumerate().map(|(i, mut r)| {
        r.id = ((n_prefill + i) as u64).into();
        r
    }));
    let mut times: Vec<SimTime> = (0..n_prefill)
        .map(|i| SimTime::from_micros(71_429 * i as u64))
        .collect();
    let switch = 71_429 * n_prefill as u64;
    times.extend((1..=n_decode as u64).map(|i| SimTime::from_micros(switch + 100_000 * i)));

    let pool = |max: usize, patience: u32| {
        let mut policy = PolicyConfig::bounded(1, max);
        policy.scale_down_patience = patience;
        AutoscaleConfig::bounded(1, max)
            .interval(SimDuration::from_secs(10))
            .warmup(SimDuration::from_secs(20))
            .predictor(PredictorKind::holt())
            .initial_lengths(512.0, 64.0)
            .policy(policy)
    };
    let mut disagg_base = base;
    disagg_base.capacity_override = Some(9_000);
    let config = DisaggConfig::new(disagg_base).repurpose(SimDuration::from_secs(2));
    let report = ElasticDisaggCluster::new(config, pool(4, 1), pool(4, 3), 2, 1)
        .run(shift, times)
        .expect("repurposing run");
    println!(
        "\nphase shift: {} requests, TTFT-SLA {:.1}%, full SLA {:.1}%, {} repurpose flip(s)",
        report.completed(),
        report.ttft_attainment() * 100.0,
        report.sla_attainment() * 100.0,
        report.repurposes.len(),
    );
    for event in &report.repurposes {
        println!(
            "  flip at {}: prefill instance {} became decode instance {}",
            event.at, event.prefill_member, event.decode_member
        );
    }
}
