//! Reproduces the paper's Figure 3 observation: the output-length
//! distributions of adjacent request windows are similar even when the
//! global distribution drifts (API services).
//!
//! ```text
//! cargo run --release --example trace_similarity
//! ```

use pastfuture::metrics::{Binning, Table, WindowedLengths};
use pastfuture::workload::trace::{generate_output_lengths, TraceArchetype};

fn main() {
    let mut table = Table::new([
        "trace",
        "windows",
        "adjacent sim",
        "global sim",
        "stationary?",
    ]);
    for archetype in TraceArchetype::ALL {
        let lengths = generate_output_lengths(archetype, 40_000, 2024);
        let windows = WindowedLengths::partition(&lengths, 1000, Binning::Log2);
        let matrix = windows.similarity_matrix();
        let diag = matrix.diagonal_mean().unwrap_or(0.0);
        let global = matrix.off_diagonal_mean().unwrap_or(0.0);
        table.row([
            archetype.label().to_string(),
            windows.n_windows().to_string(),
            format!("{diag:.3}"),
            format!("{global:.3}"),
            if archetype.is_globally_stable() {
                "yes"
            } else {
                "no (task mix drifts)"
            }
            .to_string(),
        ]);
    }
    println!("{}", table.to_text());
    println!(
        "Adjacent windows stay similar for every service — the property the\n\
         Past-Future scheduler's history window (w = 1000) relies on. Only the\n\
         API trace drifts globally, mirroring BurstGPT panel (b)."
    );
}
