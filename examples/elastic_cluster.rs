//! Elastic autoscaling demo: a diurnal load served by a fleet that grows
//! into the peak and drains through the trough.
//!
//! ```text
//! cargo run --release --example elastic_cluster
//! ```

use pastfuture::autoscale::{AutoscaleConfig, PredictorKind};
use pastfuture::prelude::*;
use pastfuture::sim::elastic::ElasticCluster;
use pastfuture::workload::rng::seeded;
use pastfuture::workload::RateProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One replica of this deployment saturates near 7 req/s of short-chat
    // traffic; the diurnal cycle swings between 2 and 12 req/s.
    let base = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(6_000)
        .record_series(false)
        .seed(7)
        .build();
    let autoscale = AutoscaleConfig::bounded(1, 4)
        .interval(SimDuration::from_secs(10))
        .warmup(SimDuration::from_secs(20))
        .predictor(PredictorKind::holt())
        .initial_lengths(160.0, 224.0);

    let n = 2_400;
    let requests = pastfuture::workload::datasets::short_chat(n, 1);
    let profile = RateProfile::diurnal(2.0, 12.0, SimDuration::from_secs(180));
    let arrivals = profile.assign(&mut seeded(2), n);

    let report = ElasticCluster::new(base, autoscale, 1).run(requests, arrivals)?;

    println!(
        "served {} requests in {:.0} s: SLA attainment {:.1}%, goodput {:.0} tok/s",
        report.completed(),
        report.makespan.as_secs_f64(),
        report.sla_attainment() * 100.0,
        report.goodput_tok_per_s(),
    );
    println!(
        "fleet: peak {} replicas, {:.0} GPU-seconds provisioned \
         (a static {}-replica fleet would burn {:.0})",
        report.peak_replicas(),
        report.gpu_seconds(),
        report.peak_replicas(),
        report.peak_replicas() as f64 * report.makespan.as_secs_f64(),
    );
    println!("\nscaling decisions:");
    for event in &report.events {
        let dir = if event.to > event.from { "up" } else { "down" };
        println!(
            "  t={:>5.0}s  {} {} -> {} replicas",
            event.at.as_secs_f64(),
            dir,
            event.from,
            event.to
        );
    }
    println!("\nper-instance lifetimes:");
    for (i, instance) in report.instances.iter().enumerate() {
        println!(
            "  #{i}: up {:>5.0}s..{:>5.0}s  served {:>4} requests",
            instance.spawned_at.as_secs_f64(),
            instance.stopped_at.as_secs_f64(),
            instance.routed,
        );
    }
    Ok(())
}
