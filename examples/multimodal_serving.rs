//! The Table 2 scenario: multimodal VQA serving, original static-batching
//! implementation vs. LightLLM with the Past-Future scheduler.
//!
//! ```text
//! cargo run --release --example multimodal_serving
//! ```

use pastfuture::frameworks::Framework;
use pastfuture::metrics::Table;
use pastfuture::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 400;
    type DatasetFn = fn(usize, u64) -> Vec<RequestSpec>;
    let cases: [(&str, ModelSpec, DatasetFn); 3] = [
        (
            "Qwen-VL-Chat",
            ModelSpec::qwen_vl_chat(),
            datasets::textvqa_qwen_vl,
        ),
        (
            "LLaVA-1.5-7B",
            ModelSpec::llava_15_7b(),
            datasets::textvqa_llava,
        ),
        (
            "LLaVA-1.5-13B",
            ModelSpec::llava_15_13b(),
            datasets::textvqa_llava,
        ),
    ];

    let mut table = Table::new(["model", "origin tok/s", "LightLLM tok/s", "speedup"]);
    for (name, model, dataset) in cases {
        let requests = dataset(n, 42);
        let origin = Framework::HfOriginal
            .config(model, GpuSpec::a100_80g(), 1)
            .record_series(false)
            .seed(1)
            .build();
        let origin_report = Simulation::offline(origin, requests.clone()).run()?;

        let lightllm = Framework::LightLlm
            .config(model, GpuSpec::a100_80g(), 1)
            .record_series(false)
            .seed(1)
            .build();
        let lightllm_report = Simulation::offline(lightllm, requests).run()?;

        table.row([
            name.to_string(),
            format!("{:.0}", origin_report.throughput()),
            format!("{:.0}", lightllm_report.throughput()),
            format!(
                "{:.2}x",
                lightllm_report.throughput() / origin_report.throughput()
            ),
        ]);
    }
    println!("{}", table.to_text());
    println!(
        "Image tokens (256 per image for Qwen-VL, 576 for LLaVA) occupy KV cache\n\
         like prompt text; continuous batching plus Past-Future admission keeps\n\
         the pool full while static batching pads and waits (paper Table 2\n\
         reports 1.5-1.9x)."
    );
    Ok(())
}
