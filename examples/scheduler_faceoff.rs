//! The paper's headline experiment in miniature: conservative vs.
//! aggressive vs. Past-Future under rising concurrency on a decode-heavy
//! workload (compare with Figure 7).
//!
//! ```text
//! cargo run --release --example scheduler_faceoff
//! ```

use pastfuture::metrics::Table;
use pastfuture::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schedulers = [
        SchedulerConfig::conservative(),
        SchedulerConfig::aggressive(0.99),
        SchedulerConfig::past_future_reserved(0.03),
    ];
    let client_counts = [4usize, 8, 16, 32, 64];

    // Warm history from "yesterday's" traffic of the same service.
    let warmup: Vec<u32> = datasets::sharegpt_o1(1000, 99)
        .iter()
        .map(|r| r.true_output_len)
        .collect();

    let mut table = Table::new([
        "scheduler",
        "clients",
        "goodput tok/s",
        "throughput",
        "evicted %",
        "SLA-ok %",
    ]);
    for scheduler in &schedulers {
        for &clients in &client_counts {
            let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
                .scheduler(scheduler.clone())
                .history_warmup(warmup.clone())
                // A slice of the A100's KV budget keeps this example fast;
                // the full-scale sweep lives in `pf-bench --bin fig7`.
                .capacity_override(30_000)
                .record_series(false)
                .seed(11)
                .build();
            let requests = datasets::sharegpt_o1(160, 5);
            let report =
                Simulation::closed_loop(config, requests, ClosedLoopClients::new(clients)).run()?;
            table.row([
                report.scheduler_name.clone(),
                clients.to_string(),
                format!("{:.0}", report.goodput_tok_per_s()),
                format!("{:.0}", report.throughput()),
                format!("{:.1}", report.evicted_request_pct()),
                format!("{:.0}", report.goodput.satisfied_fraction() * 100.0),
            ]);
        }
    }
    println!("{}", table.to_text());
    println!(
        "Expected shape (paper Fig. 7): conservative stays low (queueing breaks TTFT),\n\
         aggressive collapses at high concurrency (evictions break MTPOT),\n\
         past-future keeps the highest goodput throughout."
    );
    Ok(())
}
