//! Implementing a custom admission policy against the public `Scheduler`
//! trait — and racing it against the built-ins.
//!
//! The example policy is a "quantile scheduler": instead of sampling
//! per-request output lengths like Past-Future, it budgets every request at
//! a fixed quantile of the historical output-length distribution. Simpler,
//! deterministic — but it cannot exploit per-request progress the way the
//! conditional resampling of Past-Future does.
//!
//! ```text
//! cargo run --release --example custom_scheduler
//! ```

use pastfuture::core::{
    BatchEntry, FutureMemoryEstimator, MemoryState, OutputLengthHistory, QueuedRequest,
    RunningRequest, Scheduler, SchedulerConfig,
};
use pastfuture::metrics::Table;
use pastfuture::prelude::*;

/// Budgets every request at the `q`-quantile of historical output lengths
/// and admits while the future required memory (Eq. 2–4) fits.
#[derive(Debug)]
struct QuantileScheduler {
    history: OutputLengthHistory,
    q: f64,
}

impl QuantileScheduler {
    fn new(q: f64) -> Self {
        QuantileScheduler {
            history: OutputLengthHistory::new(1000),
            q,
        }
    }

    fn predicted_total(&self, generated: u32, max_new_tokens: u32) -> u32 {
        match self.history.distribution() {
            Some(dist) => dist
                .quantile(self.q)
                .clamp(generated.saturating_add(1), max_new_tokens.max(1)),
            None => max_new_tokens,
        }
    }
}

impl Scheduler for QuantileScheduler {
    fn name(&self) -> &str {
        "quantile(q=0.9)"
    }

    fn plan_admission(
        &mut self,
        running: &[RunningRequest],
        queue: &[QueuedRequest],
        memory: &MemoryState,
    ) -> usize {
        let mut entries: Vec<BatchEntry> = running
            .iter()
            .map(|r| {
                let predicted = self.predicted_total(r.generated, r.max_new_tokens);
                BatchEntry {
                    committed: r.committed(),
                    remaining: u64::from(predicted.saturating_sub(r.generated).max(1)),
                }
            })
            .collect();
        let mut admitted = 0;
        for candidate in queue {
            let predicted = self.predicted_total(candidate.generated, candidate.max_new_tokens);
            let (committed, remaining) = candidate.post_prefill_entry(predicted);
            entries.push(BatchEntry {
                committed,
                remaining,
            });
            if FutureMemoryEstimator::peak_memory(&entries) <= memory.capacity_tokens {
                admitted += 1;
            } else {
                break;
            }
        }
        admitted
    }

    fn on_request_finished(&mut self, output_len: u32) {
        self.history.record(output_len);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // NOTE: the engine consumes boxed `Scheduler`s via `SchedulerConfig`;
    // for a fully custom policy we drive the trait directly on a synthetic
    // admission timeline, then compare built-ins end-to-end.
    let mut custom = QuantileScheduler::new(0.9);
    for len in datasets::sharegpt_o1(1000, 3)
        .iter()
        .map(|r| r.true_output_len)
    {
        custom.on_request_finished(len);
    }
    let queue: Vec<QueuedRequest> = datasets::sharegpt_o1(64, 4)
        .iter()
        .map(|r| QueuedRequest {
            id: r.id.raw(),
            input_len: r.input_len,
            generated: 0,
            max_new_tokens: r.max_new_tokens,
            oracle_remaining: None,
        })
        .collect();
    let memory = MemoryState {
        capacity_tokens: 120_000,
        used_tokens: 0,
    };
    let admitted = custom.plan_admission(&[], &queue, &memory);
    println!(
        "custom {} admits {admitted}/{} queued requests into an empty batch\n",
        custom.name(),
        queue.len()
    );

    // End-to-end comparison of the built-ins on the same workload.
    let mut table = Table::new(["scheduler", "goodput tok/s", "evicted %", "decode steps"]);
    for scheduler in [
        SchedulerConfig::conservative(),
        SchedulerConfig::aggressive(0.95),
        SchedulerConfig::past_future(),
        SchedulerConfig::Oracle,
    ] {
        let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
            .scheduler(scheduler)
            .capacity_override(60_000)
            .record_series(false)
            .history_warmup(
                datasets::sharegpt_o1(1000, 9)
                    .iter()
                    .map(|r| r.true_output_len)
                    .collect(),
            )
            .seed(5)
            .build();
        let report = Simulation::closed_loop(
            config,
            datasets::sharegpt_o1(128, 6),
            ClosedLoopClients::new(32),
        )
        .run()?;
        table.row([
            report.scheduler_name.clone(),
            format!("{:.0}", report.goodput_tok_per_s()),
            format!("{:.1}", report.evicted_request_pct()),
            report.decode_steps.to_string(),
        ]);
    }
    println!("{}", table.to_text());
    Ok(())
}
