//! Quickstart: serve a decode-heavy workload with the Past-Future scheduler
//! and print the goodput report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pastfuture::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A deployment: Llama2-7B on one A100-80G, Past-Future scheduler
    //    with the paper's defaults (history window 1000, 5% reserved).
    let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .sla(SlaSpec::chat_7b()) // TTFT < 10 s, MTPOT < 1.5 s
        .seed(7)
        .build();
    println!(
        "deployment: {} on {} — KV capacity {} tokens",
        config.model.name,
        config.gpu.name,
        config.capacity_tokens()
    );

    // 2. A workload: 200 ShareGPT-o1-style requests (chain-of-thought
    //    outputs, the paper's hardest decode-heavy case) from 32 closed-loop
    //    clients.
    let requests = datasets::sharegpt_o1(200, 7);
    let clients = ClosedLoopClients::new(32);

    // 3. Run and report.
    let report = Simulation::closed_loop(config, requests, clients).run()?;
    println!("{}", report.summary_line());
    println!(
        "  TTFT  p50 {:.2}s  p99 {:.2}s",
        report.goodput.ttft_secs.p50, report.goodput.ttft_secs.p99
    );
    println!(
        "  MTPOT p50 {:.2}s  p99 {:.2}s",
        report.goodput.mtpot_secs.p50, report.goodput.mtpot_secs.p99
    );
    println!(
        "  memory: avg {:.1}% / peak {:.1}% of capacity, {} evictions",
        report.avg_consumed_frac * 100.0,
        report.peak_consumed_frac * 100.0,
        report.evictions
    );
    Ok(())
}
