//! Disaggregated prefill/decode demo: a prefill-heavy load served by
//! independently autoscaled pools — the prefill pool sized against TTFT,
//! the decode pool against TPOT, joined by an NVLink KV-transfer link.
//!
//! ```text
//! cargo run --release --example disagg_cluster
//! ```

use pastfuture::autoscale::{AutoscaleConfig, PredictorKind};
use pastfuture::prelude::*;
use pastfuture::sim::disagg::{DisaggConfig, ElasticDisaggCluster, KvTransferSpec};
use pastfuture::workload::{datasets, rng::seeded, PoissonArrivals};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Summarization-style traffic: 1-3k-token prompts, terse answers.
    // Prefill work dominates, so the two pools end up differently sized.
    let base = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .capacity_override(9_000)
        .record_series(false)
        .seed(7)
        .build();
    let config = DisaggConfig::new(base).transfer(KvTransferSpec::nvlink());
    let pool = |max: usize| {
        AutoscaleConfig::bounded(1, max)
            .interval(SimDuration::from_secs(10))
            .warmup(SimDuration::from_secs(20))
            .predictor(PredictorKind::holt())
            .initial_lengths(2_048.0, 56.0)
    };

    let n = 2_400;
    let requests = datasets::prefill_heavy(n, 1);
    let arrivals = PoissonArrivals::new(10.0).assign(&mut seeded(2), n);

    let report =
        ElasticDisaggCluster::new(config, pool(3), pool(3), 1, 1).run(requests, arrivals)?;

    println!(
        "served {} requests in {:.0} s: TTFT-SLA {:.1}%, full SLA {:.1}%, goodput {:.0} tok/s",
        report.completed(),
        report.makespan.as_secs_f64(),
        report.ttft_attainment() * 100.0,
        report.sla_attainment() * 100.0,
        report.goodput_tok_per_s(),
    );
    println!(
        "pools: prefill peaked at {} and decode at {} replicas; {:.0} GPU-seconds total",
        report.peak_prefill_replicas(),
        report.peak_decode_replicas(),
        report.gpu_seconds(),
    );
    println!(
        "kv transfers: {} handoffs, {:.1} GB moved, mean handoff {:.1} ms \
         (longest slot wait {:.1} ms)",
        report.transfers.transfers,
        report.transfers.total_bytes as f64 / 1e9,
        report.transfers.mean_handoff_secs() * 1e3,
        report.transfers.max_wait_secs * 1e3,
    );
    for (label, events) in [
        ("prefill", &report.prefill.events),
        ("decode", &report.decode.events),
    ] {
        println!("\n{label} pool scaling decisions:");
        for event in events {
            let dir = if event.to > event.from { "up" } else { "down" };
            println!(
                "  t={:>5.0}s  {} {} -> {} replicas",
                event.at.as_secs_f64(),
                dir,
                event.from,
                event.to
            );
        }
    }
    Ok(())
}
