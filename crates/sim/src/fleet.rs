//! The shared fleet-lifecycle kernel: one instance state machine, one
//! shrink pass, one cost ledger and one routing surface for every
//! multi-instance deployment in this crate.
//!
//! [`crate::elastic::ElasticCluster`], [`crate::disagg::DisaggCluster`]
//! and [`crate::disagg::ElasticDisaggCluster`] all manage pools of serving
//! instances that are provisioned, warmed up, drained and released over a
//! run. This module is the single definition of that machinery; the
//! deployment modules contribute only their pool-specific work loops.
//!
//! # The member state machine
//!
//! ```text
//!               spawn(warmup > 0)
//!                     │
//!                     ▼
//!                ┌─────────┐  ready_at reached   ┌──────┐
//!                │ Warming │ ───────────────────▶│ Live │◀── spawn(warmup = 0)
//!                └─────────┘                     └──────┘
//!                     │                             │
//!       shrink:       │ cancel                      │ shrink: drain victim
//!       (newest       ▼                             ▼
//!       first)   ┌─────────┐   in-flight work   ┌──────────┐
//!                │ Stopped │◀──────────────────│ Draining │
//!                └─────────┘   finishes         └──────────┘
//!                     ▲
//!                     │ repurpose: a drained member leaves this pool and
//!                     └─ re-spawns in another pool as Warming, with a
//!                        short repurpose delay instead of a full warm-up
//! ```
//!
//! * **Warming** members cost GPU time (the accelerator is booting and
//!   loading weights) but are never routed to.
//! * **Live** members serve traffic; only they are routing candidates.
//! * **Draining** members finish their queued and running work, receive
//!   nothing new, and stop — and stop costing — once empty.
//! * **Stopped** members cost nothing from `stopped_at` on.
//!
//! # Heterogeneous fleets
//!
//! Every member carries a [`GpuType`]: a name, a `cost_weight` (its price
//! relative to the fleet's reference accelerator) and a `perf_scale` (its
//! step-latency speed relative to the reference; 2.0 = twice as fast).
//! The cost ledger ([`MemberCore::cost_weighted_secs`]) charges
//! provisioned wall-clock seconds multiplied by `cost_weight` — the
//! objective heterogeneous planners minimize — and the shrink pass
//! releases the *costliest* members first, so a mixed fleet sheds its
//! expensive capacity as soon as the cheap capacity suffices.
//!
//! # Shrinking
//!
//! [`shrink_pool`] implements the one scale-down discipline every pool
//! uses: cancel the newest warming members first (they have served
//! nothing), then mark live victims as draining — preferring the highest
//! `cost_weight`, then the lowest load, then the lowest index — and never
//! take a pool below one live member, so its router always has a target.
//!
//! # Routing surface
//!
//! `pick_rotating_min` and `pick_routed` (crate-internal) are the one
//! definition of the load-minimizing routing dispatch with deterministic
//! rotating tie-breaks (first-index tie-breaking would herd all
//! cold-start traffic onto member 0). [`crate::cluster`], the elastic
//! fleet and both disagg pools route through them.

use pf_metrics::SimTime;
use pf_obs::{Pool, TraceEvent, TraceSink};

/// Forwards a [`TraceEvent`] to the sink, if one is attached. This is the
/// single emission funnel every engine and cluster module routes through:
/// with no sink it compiles to one branch on an empty option — no
/// allocation, no formatting, bit-identical reports.
#[inline]
pub(crate) fn emit(sink: &mut Option<&mut dyn TraceSink>, ev: TraceEvent) {
    if let Some(s) = sink {
        s.event(ev);
    }
}

/// Emits the pool-size transition `from → to` as a [`TraceEvent::ScaleUp`]
/// or [`TraceEvent::ScaleDown`] (no event when the size is unchanged).
pub(crate) fn emit_scale(
    sink: &mut Option<&mut dyn TraceSink>,
    at: SimTime,
    pool: Pool,
    from: usize,
    to: usize,
) {
    if to > from {
        emit(sink, TraceEvent::ScaleUp { at, pool, from, to });
    } else if to < from {
        emit(sink, TraceEvent::ScaleDown { at, pool, from, to });
    }
}

/// Lifecycle state of one fleet member (see the module-level diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Provisioned but not yet accepting traffic.
    Warming {
        /// When the instance becomes live.
        ready_at: SimTime,
    },
    /// Serving and routable.
    Live,
    /// Finishing in-flight work; receives nothing new.
    Draining,
    /// Released; costs nothing from its stop time on.
    Stopped,
}

/// An accelerator type in a (possibly mixed) fleet: a display name plus
/// its cost and speed relative to the fleet's reference GPU.
///
/// `perf_scale` multiplies the replica's effective kernel speed (2.0 =
/// step latencies halve); `cost_weight` multiplies its provisioned
/// seconds in the cost ledger. KV capacity is taken from the deployment
/// configuration as usual — `GpuType` models speed and price, not memory.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GpuType {
    /// Display name for reports.
    pub name: &'static str,
    /// Price per provisioned second relative to the reference GPU.
    pub cost_weight: f64,
    /// Step-latency speed relative to the reference GPU (higher = faster).
    pub perf_scale: f64,
}

impl GpuType {
    /// Creates a GPU type, validating the weights.
    ///
    /// # Panics
    ///
    /// Panics unless both weights are finite and positive.
    pub fn new(name: &'static str, cost_weight: f64, perf_scale: f64) -> Self {
        assert!(
            cost_weight.is_finite() && cost_weight > 0.0,
            "invalid cost weight {cost_weight}"
        );
        assert!(
            perf_scale.is_finite() && perf_scale > 0.0,
            "invalid perf scale {perf_scale}"
        );
        GpuType {
            name,
            cost_weight,
            perf_scale,
        }
    }

    /// The reference accelerator: cost 1.0, speed 1.0.
    pub fn reference() -> Self {
        GpuType::new("ref", 1.0, 1.0)
    }

    /// A big training-class GPU (the reference: cost 1.0, speed 1.0).
    pub fn big() -> Self {
        GpuType::new("big", 1.0, 1.0)
    }

    /// A mid-range inference GPU: 55% of the reference speed at 45% of
    /// the price — cheaper per provisioned second, slower per step.
    pub fn mid() -> Self {
        GpuType::new("mid", 0.45, 0.55)
    }

    /// A small inference GPU: 30% of the reference speed at 22% of the
    /// price.
    pub fn small() -> Self {
        GpuType::new("small", 0.22, 0.30)
    }

    /// Scales a reference-GPU step duration to this GPU's speed (a
    /// `perf_scale` of 2.0 halves it). Exactly the identity for the
    /// reference scale 1.0, so homogeneous runs replay bit-identically.
    pub fn scale_step(&self, duration: pf_metrics::SimDuration) -> pf_metrics::SimDuration {
        if self.perf_scale == 1.0 {
            duration
        } else {
            pf_metrics::SimDuration::from_secs_f64(duration.as_secs_f64() / self.perf_scale)
        }
    }
}

/// The GPU type of provisioning slot `k` in a declared mix (slots past the
/// end repeat the last entry; an empty mix is the homogeneous reference
/// fleet).
pub fn slot_gpu(slots: &[GpuType], k: usize) -> GpuType {
    match slots.get(k) {
        Some(gpu) => *gpu,
        None => slots.last().copied().unwrap_or_default(),
    }
}

impl Default for GpuType {
    fn default() -> Self {
        GpuType::reference()
    }
}

/// The lifecycle bookkeeping every fleet member embeds: state, GPU type,
/// provisioning timestamps and the routed-request counter.
#[derive(Debug, Clone, Copy)]
pub struct MemberCore {
    /// Current lifecycle state.
    pub state: MemberState,
    /// The accelerator this member runs on.
    pub gpu: GpuType,
    /// When the member was provisioned (cost accrues from here).
    pub spawned_at: SimTime,
    /// When it stopped costing GPU time (`None` while still provisioned).
    pub stopped_at: Option<SimTime>,
    /// Requests routed to this member.
    pub routed: usize,
}

impl MemberCore {
    /// Provisions a member at `now`: live immediately when `warmup` is
    /// zero, warming until `now + warmup` otherwise.
    pub fn spawn(now: SimTime, warmup: pf_metrics::SimDuration, gpu: GpuType) -> Self {
        let state = if warmup.is_zero() {
            MemberState::Live
        } else {
            MemberState::Warming {
                ready_at: now + warmup,
            }
        };
        MemberCore {
            state,
            gpu,
            spawned_at: now,
            stopped_at: None,
            routed: 0,
        }
    }

    /// Whether the member may hold work (live or draining).
    pub fn is_active(&self) -> bool {
        matches!(self.state, MemberState::Live | MemberState::Draining)
    }

    /// Whether the member is a routing candidate.
    pub fn is_live(&self) -> bool {
        self.state == MemberState::Live
    }

    /// Releases the member at `at`.
    pub fn stop(&mut self, at: SimTime) {
        self.state = MemberState::Stopped;
        self.stopped_at = Some(at);
    }

    /// Provisioned wall-clock seconds, using `end` for members still up.
    pub fn active_secs(&self, end: SimTime) -> f64 {
        self.stopped_at
            .unwrap_or(end)
            .saturating_since(self.spawned_at)
            .as_secs_f64()
    }

    /// Provisioned seconds weighted by the member's GPU cost.
    pub fn cost_weighted_secs(&self, end: SimTime) -> f64 {
        self.active_secs(end) * self.gpu.cost_weight
    }
}

/// One fleet-size change, for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalingEvent {
    /// When the planner decided.
    pub at: SimTime,
    /// Provisioned replicas (live + warming) before the decision.
    pub from: usize,
    /// Provisioned replicas after the decision.
    pub to: usize,
}

/// The surface a pool's member type exposes to the lifecycle kernel.
pub trait FleetMember {
    /// The embedded lifecycle bookkeeping.
    fn core(&self) -> &MemberCore;

    /// Mutable access to the lifecycle bookkeeping.
    fn core_mut(&mut self) -> &mut MemberCore;

    /// Relative load for drain-victim selection (lower drains first).
    fn load_signal(&self) -> u64;
}

/// `(live, warming)` counts of one pool.
pub fn pool_counts<T: FleetMember>(members: &[T]) -> (usize, usize) {
    let live = members.iter().filter(|m| m.core().is_live()).count();
    let warming = members
        .iter()
        .filter(|m| matches!(m.core().state, MemberState::Warming { .. }))
        .count();
    (live, warming)
}

/// Members still costing GPU time (anything not stopped).
pub fn provisioned_count<T: FleetMember>(members: &[T]) -> usize {
    members
        .iter()
        .filter(|m| m.core().stopped_at.is_none())
        .count()
}

/// Earliest pending ready-at among warming members.
pub fn next_ready<T: FleetMember>(members: &[T]) -> Option<SimTime> {
    members
        .iter()
        .filter_map(|m| match m.core().state {
            MemberState::Warming { ready_at } => Some(ready_at),
            _ => None,
        })
        .min()
}

/// Per-slot `perf_scale`s describing the fleet each candidate size would
/// *actually* run, for the planner's heterogeneous sizing
/// (`AutoscalePlanner::update_slot_perf_scales`).
///
/// Entry `k` is the `perf_scale` of the member that would be the
/// `(k+1)`-th survivor of shrinking this pool: live members in reverse
/// drain order (the longest-surviving — cheapest, then most loaded —
/// first), then warming members oldest-spawn-first (shrink cancels the
/// newest first), then the slot types future spawns would occupy. The
/// declared provisioning order alone is wrong here: the shrink pass
/// drains the *costliest* members first, so after any scale-down the
/// surviving fleet differs from the first-n slots.
pub fn candidate_perf_scales<T: FleetMember>(
    members: &[T],
    slots: &[GpuType],
    max_candidates: usize,
) -> Vec<f64> {
    // Live members, most-survivable first: the reverse of the drain
    // order's (cost desc, load asc, index asc) key.
    let mut live: Vec<usize> = members
        .iter()
        .enumerate()
        .filter(|(_, m)| m.core().is_live())
        .map(|(i, _)| i)
        .collect();
    live.sort_by(|&a, &b| {
        members[a]
            .core()
            .gpu
            .cost_weight
            .total_cmp(&members[b].core().gpu.cost_weight)
            .then_with(|| members[b].load_signal().cmp(&members[a].load_signal()))
            .then_with(|| b.cmp(&a))
    });
    // Warming members survive any live member's drain but are cancelled
    // newest-first, so the oldest (lowest index) is the most survivable.
    let warming = members
        .iter()
        .enumerate()
        .filter(|(_, m)| matches!(m.core().state, MemberState::Warming { .. }))
        .map(|(i, _)| i);
    let mut scales: Vec<f64> = live
        .into_iter()
        .chain(warming)
        .map(|i| members[i].core().gpu.perf_scale)
        .collect();
    let mut next_slot = provisioned_count(members);
    while scales.len() < max_candidates {
        scales.push(slot_gpu(slots, next_slot).perf_scale);
        next_slot += 1;
    }
    scales.truncate(max_candidates);
    scales
}

/// Shrinks one pool toward `target` members: cancels the newest warming
/// members first (they have served nothing), then marks live victims as
/// draining — preferring the highest `cost_weight`, then the lowest
/// [`FleetMember::load_signal`], then the lowest index — and never takes
/// the pool below one live member, so the router always has a target.
/// Returns the indices newly marked draining; the caller runs its
/// pool-specific idle-stop check on them.
pub fn shrink_pool<T: FleetMember>(members: &mut [T], target: usize, now: SimTime) -> Vec<usize> {
    let (live, warming) = pool_counts(members);
    let mut excess = (live + warming).saturating_sub(target);
    for i in (0..members.len()).rev() {
        if excess == 0 {
            break;
        }
        if matches!(members[i].core().state, MemberState::Warming { .. }) {
            members[i].core_mut().stop(now);
            excess -= 1;
        }
    }
    let mut drained = Vec::new();
    // Draining a victim is the only live-count change in this loop, so
    // the count carries across iterations instead of being recounted.
    let mut live_count = members.iter().filter(|m| m.core().is_live()).count();
    while excess > 0 {
        if live_count <= 1 {
            break; // never leave the router without a target
        }
        let Some(victim) = drain_victim(members) else {
            break;
        };
        members[victim].core_mut().state = MemberState::Draining;
        live_count -= 1;
        drained.push(victim);
        excess -= 1;
    }
    drained
}

/// The live member the shrink pass drains next: highest GPU cost first
/// (release expensive capacity as soon as cheap capacity suffices), then
/// lowest load (it empties soonest), then lowest index. For a homogeneous
/// fleet this reduces to the classic least-loaded-first victim.
pub fn drain_victim<T: FleetMember>(members: &[T]) -> Option<usize> {
    members
        .iter()
        .enumerate()
        .filter(|(_, m)| m.core().is_live())
        .min_by(|(ia, a), (ib, b)| {
            b.core()
                .gpu
                .cost_weight
                .total_cmp(&a.core().gpu.cost_weight)
                .then_with(|| a.load_signal().cmp(&b.load_signal()))
                .then_with(|| ia.cmp(ib))
        })
        .map(|(i, _)| i)
}

/// Smallest cached overlap (tokens) for which
/// [`crate::cluster::RouterPolicy::PrefixAffinity`] prefers the matching
/// instance over the least-loaded one. Below this the prefill saving is
/// smaller than the imbalance it can cause.
pub const PREFIX_MATCH_MIN_TOKENS: u64 = 32;

/// The least-slack-first ranking key shared by every queue in the crate
/// (engine admission, disagg prefill selection, disagg decode pending):
/// entries past the aging cap first, oldest first (the starvation bound);
/// then ascending remaining slack `deadline − waited` (saturating — an
/// already-expired entry ranks most urgent); deadline-less entries last,
/// oldest first. Callers prepend their own higher-priority groups (the
/// engine ranks preempted mid-response work at 0) — this key only uses
/// groups 1–3.
pub(crate) fn slack_rank_key(
    now: SimTime,
    arrival: SimTime,
    deadline: Option<pf_metrics::SimDuration>,
    aging_cap: pf_metrics::SimDuration,
) -> (u8, u64) {
    let waited = now.saturating_since(arrival);
    if waited >= aging_cap {
        return (1, arrival.as_micros());
    }
    match deadline {
        Some(deadline) => (2, (deadline - waited).as_micros()),
        None => (3, arrival.as_micros()),
    }
}

/// One queued request's contribution to the router-facing slack-pressure
/// signal: `1 / (1 + slack_secs)` — 1.0 at zero remaining slack, decaying
/// as the deadline recedes. Summed per queue and weighed by
/// [`SLACK_PRESSURE_WEIGHT`].
pub(crate) fn slack_urgency(
    now: SimTime,
    arrival: SimTime,
    deadline: pf_metrics::SimDuration,
) -> f64 {
    let waited = now.saturating_since(arrival);
    1.0 / (1.0 + (deadline - waited).as_secs_f64())
}

/// Fair-share weight of one KV stream on the shared transfer link,
/// grouped exactly like [`slack_rank_key`]: streams aged past the cap
/// weigh 2.0 (the starvation bound dominates), deadlined streams weigh
/// `1 + 1/(1 + slack_secs)` (up to 2.0 as slack vanishes), deadline-free
/// streams weigh 1.0. Weights are bounded in `[1, 2]`, so no stream is
/// ever starved of link bandwidth — urgency at most doubles a share.
pub(crate) fn slack_share_weight(
    now: SimTime,
    arrival: SimTime,
    deadline: Option<pf_metrics::SimDuration>,
    aging_cap: pf_metrics::SimDuration,
) -> f64 {
    let waited = now.saturating_since(arrival);
    if waited >= aging_cap {
        return 2.0;
    }
    match deadline {
        Some(deadline) => 1.0 + 1.0 / (1.0 + (deadline - waited).as_secs_f64()),
        None => 1.0,
    }
}

/// Which KV index backs [`crate::cluster::RouterPolicy::KvOverlap`]
/// routing over the disagg prefill pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DisaggKvIndex {
    /// The approximate TTL index fed by router-side observations (the
    /// default, bit-identical to the historical behavior): members emit
    /// no events, entries expire after
    /// [`RouterConfig::approx_index_ttl`].
    #[default]
    Approx,
    /// An exact event-driven index: prefill members run block-granular
    /// prefix stores and publish [`pf_kvcache::KvEvent`]s into a
    /// [`pf_kvcache::KvIndexer`] (delayed by
    /// [`RouterConfig::kv_event_delay`]), so overlap scores reflect real
    /// cache contents including evictions. Requires a
    /// [`crate::PrefixCacheConfig`] on the base config; its
    /// `block_tokens` sets the store granularity (default 64).
    Exact,
}

/// Weight of the queue's deadline-slack pressure in
/// [`crate::cluster::RouterPolicy::PrefixAffinity`]'s load signal: each
/// unit of pressure (one queued request at zero remaining slack) counts
/// like this fraction of an instance's capacity in load. Urgent queues
/// therefore look *fuller* to the affinity tie-break and receive less new
/// traffic, giving their tight-deadline work room to drain. Zero pressure
/// (any deadline-free run) leaves every routing decision bit-identical to
/// the pre-slack behavior.
pub const SLACK_PRESSURE_WEIGHT: f64 = 0.05;

/// Tunables of the routing layer shared by every fleet driver (coloc
/// cluster, elastic fleet, disagg pools). The defaults reproduce the
/// historical hard-coded constants bit-for-bit, so a config that never
/// touches this struct replays exactly as before the fields existed.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(default))]
pub struct RouterConfig {
    /// Smallest cached overlap (tokens) for which
    /// [`crate::cluster::RouterPolicy::PrefixAffinity`] prefers the
    /// matching instance over the least-loaded one. Defaults to
    /// [`PREFIX_MATCH_MIN_TOKENS`].
    pub prefix_match_min_tokens: u64,
    /// Weight of the queue's deadline-slack pressure in the affinity and
    /// overlap load signals. Defaults to [`SLACK_PRESSURE_WEIGHT`].
    pub slack_pressure_weight: f64,
    /// Propagation delay between an engine persisting/evicting a KV block
    /// and the global [`pf_kvcache::KvIndexer`] reflecting it. Zero (the
    /// default) models an ideal in-process index; raise it to study how
    /// stale overlap scores degrade
    /// [`crate::cluster::RouterPolicy::KvOverlap`] routing.
    pub kv_event_delay: pf_metrics::SimDuration,
    /// Time-to-live for the approximate (TTL) indexer used where engines
    /// do not emit removal events (the disagg prefill pool). Entries
    /// observed at `t` stop matching after `t + ttl`.
    pub approx_index_ttl: pf_metrics::SimDuration,
    /// Which KV index backs KvOverlap routing over the disagg prefill
    /// pool (ignored by the colocated drivers, which always run the
    /// exact indexer). Defaults to [`DisaggKvIndex::Approx`].
    pub disagg_kv_index: DisaggKvIndex,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            prefix_match_min_tokens: PREFIX_MATCH_MIN_TOKENS,
            slack_pressure_weight: SLACK_PRESSURE_WEIGHT,
            kv_event_delay: pf_metrics::SimDuration::ZERO,
            approx_index_ttl: pf_metrics::SimDuration::from_secs(60),
            disagg_kv_index: DisaggKvIndex::default(),
        }
    }
}

/// Deterministic uniform stream for softmax routing draws (SplitMix64).
///
/// The routing layer cannot share the workload generators' `StdRng`
/// streams (consuming from them would perturb arrivals), and `pf-sim`
/// deliberately keeps its own randomness dependency-free: SplitMix64 is
/// stable across platforms and cheap, and one `u64` of state replays
/// bit-for-bit from the config seed.
#[derive(Debug, Clone)]
pub(crate) struct RouteRng(u64);

/// `derive_seed` stream index of the router's softmax draws — distinct
/// from every workload stream so adding KV-overlap routing never perturbs
/// arrivals or lengths.
pub(crate) const ROUTE_RNG_STREAM: u64 = 0x524F_5554; // "ROUT"

impl RouteRng {
    pub(crate) fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next uniform draw in `[0, 1)` with 53 bits of precision.
    pub(crate) fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Selects among `candidates` by the given cost function: `temperature <=
/// 0` degrades to the deterministic [`pick_rotating_min`] argmin (and
/// consumes **no** randomness, so a zero-temperature run replays
/// bit-identically to the argmin policies); a positive temperature samples
/// candidate `c` with probability `exp(-(cost(c) - min_cost) /
/// temperature)` (normalized), using exactly one uniform draw and walking
/// the cumulative weights in candidate order. The cursor is only touched
/// on the argmin path.
pub(crate) fn pick_cost_logit(
    candidates: &[RouteCandidate],
    cost: impl Fn(&RouteCandidate) -> f64,
    temperature: f64,
    cursor: &mut usize,
    n: usize,
    rng: &mut RouteRng,
) -> Option<usize> {
    if temperature <= 0.0 {
        return pick_rotating_min(candidates.iter().map(|c| (c.index, cost(c))), cursor, n);
    }
    let min = candidates.iter().map(&cost).fold(f64::INFINITY, f64::min);
    let weight = |c: &RouteCandidate| (-(cost(c) - min) / temperature).exp();
    let total: f64 = candidates.iter().map(&weight).sum();
    let last = candidates.last()?.index;
    let mut draw = rng.next_f64() * total;
    for c in candidates {
        let w = weight(c);
        if draw < w {
            return Some(c.index);
        }
        draw -= w;
    }
    // Floating-point remainder after the walk: charge it to the last
    // candidate so the draw always lands.
    Some(last)
}

/// Index minimizing `key` among `candidates`, breaking *exact* key ties by
/// the first candidate at or after `*cursor` (mod `n`), then advancing the
/// cursor just past the winner. The rotation spreads equal-load picks
/// across the fleet instead of piling them onto the lowest index.
pub(crate) fn pick_rotating_min(
    candidates: impl Iterator<Item = (usize, f64)>,
    cursor: &mut usize,
    n: usize,
) -> Option<usize> {
    let n = n.max(1);
    let start = *cursor % n;
    let mut best: Option<(usize, f64, usize)> = None;
    for (i, key) in candidates {
        let rank = (i + n - start) % n;
        let better = match &best {
            None => true,
            Some((_, best_key, best_rank)) => match key.total_cmp(best_key) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => rank < *best_rank,
                std::cmp::Ordering::Greater => false,
            },
        };
        if better {
            best = Some((i, key, rank));
        }
    }
    best.map(|(i, _, _)| {
        *cursor = (i + 1) % n;
        i
    })
}

/// One routable candidate: fleet index, load under the active policy's
/// signal (already divided by the member's `perf_scale`, so a fast GPU
/// looks emptier than a slow one at equal queued work), and cached prefix
/// overlap with the request being routed.
pub(crate) struct RouteCandidate {
    pub(crate) index: usize,
    pub(crate) load: f64,
    pub(crate) cached_match: u64,
}

/// The single definition of the routing dispatch, shared by the cluster,
/// the elastic fleet and the disagg pools:
/// [`crate::cluster::RouterPolicy::RoundRobin`] rotates,
/// [`crate::cluster::RouterPolicy::PrefixAffinity`] takes the longest
/// cached match at or above `min_match` (ties by load or rotation), and
/// everything else — including
/// [`crate::cluster::RouterPolicy::KvOverlap`], whose overlap-discounted
/// cost the caller folds into `load` before dispatching here with its own
/// temperature handling — routes by the candidate's load, all exact ties
/// broken by the rotating cursor. `n` is the full fleet size.
pub(crate) fn pick_routed(
    policy: crate::cluster::RouterPolicy,
    candidates: &[RouteCandidate],
    min_match: u64,
    cursor: &mut usize,
    n: usize,
) -> Option<usize> {
    use crate::cluster::RouterPolicy;
    let by_load = |c: &RouteCandidate| (c.index, c.load);
    match policy {
        RouterPolicy::RoundRobin => {
            pick_rotating_min(candidates.iter().map(|c| (c.index, 0.0)), cursor, n)
        }
        RouterPolicy::LeastOutstanding
        | RouterPolicy::LeastUsedMemory
        | RouterPolicy::LeastEstimatedLoad
        | RouterPolicy::KvOverlap { .. } => {
            pick_rotating_min(candidates.iter().map(by_load), cursor, n)
        }
        RouterPolicy::PrefixAffinity { load_tiebreak } => {
            let best_match = candidates.iter().map(|c| c.cached_match).max().unwrap_or(0);
            if best_match >= min_match {
                let matched = candidates.iter().filter(|c| c.cached_match == best_match);
                if load_tiebreak {
                    pick_rotating_min(matched.map(by_load), cursor, n)
                } else {
                    pick_rotating_min(matched.map(|c| (c.index, 0.0)), cursor, n)
                }
            } else {
                pick_rotating_min(candidates.iter().map(by_load), cursor, n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_metrics::SimDuration;

    struct Toy {
        core: MemberCore,
        load: u64,
    }

    impl FleetMember for Toy {
        fn core(&self) -> &MemberCore {
            &self.core
        }

        fn core_mut(&mut self) -> &mut MemberCore {
            &mut self.core
        }

        fn load_signal(&self) -> u64 {
            self.load
        }
    }

    fn live(load: u64, gpu: GpuType) -> Toy {
        Toy {
            core: MemberCore::spawn(SimTime::ZERO, SimDuration::ZERO, gpu),
            load,
        }
    }

    fn warming(at_s: u64) -> Toy {
        Toy {
            core: MemberCore::spawn(SimTime::ZERO, SimDuration::from_secs(at_s), GpuType::big()),
            load: 0,
        }
    }

    #[test]
    fn spawn_state_depends_on_warmup() {
        let cold = MemberCore::spawn(SimTime::ZERO, SimDuration::from_secs(5), GpuType::big());
        assert!(matches!(cold.state, MemberState::Warming { ready_at } if
            ready_at == SimTime::from_secs(5)));
        let hot = MemberCore::spawn(SimTime::ZERO, SimDuration::ZERO, GpuType::big());
        assert!(hot.is_live());
    }

    #[test]
    fn shrink_cancels_newest_warming_first() {
        let mut pool = vec![live(3, GpuType::big()), warming(5), warming(9)];
        let drained = shrink_pool(&mut pool, 1, SimTime::from_secs(1));
        assert!(
            drained.is_empty(),
            "warming cancellation covered the excess"
        );
        assert_eq!(pool[0].core.state, MemberState::Live);
        assert_eq!(pool[1].core.state, MemberState::Stopped);
        assert_eq!(pool[2].core.state, MemberState::Stopped);
        assert_eq!(pool[1].core.stopped_at, Some(SimTime::from_secs(1)));
    }

    #[test]
    fn shrink_prefers_costly_then_idle_victims() {
        let mut pool = vec![
            live(0, GpuType::small()),
            live(50, GpuType::big()),
            live(10, GpuType::big()),
        ];
        let drained = shrink_pool(&mut pool, 1, SimTime::ZERO);
        // Both big members outrank the idle small one; among them the
        // less-loaded drains first.
        assert_eq!(drained, vec![2, 1]);
        assert_eq!(pool[0].core.state, MemberState::Live);
    }

    #[test]
    fn homogeneous_shrink_is_least_loaded_first() {
        let mut pool = vec![
            live(7, GpuType::big()),
            live(2, GpuType::big()),
            live(2, GpuType::big()),
        ];
        let drained = shrink_pool(&mut pool, 1, SimTime::ZERO);
        assert_eq!(drained, vec![1, 2], "load then index ties");
    }

    #[test]
    fn shrink_never_empties_the_pool() {
        let mut pool = vec![live(1, GpuType::big()), live(2, GpuType::big())];
        let drained = shrink_pool(&mut pool, 0, SimTime::ZERO);
        assert_eq!(drained.len(), 1);
        assert_eq!(pool.iter().filter(|m| m.core.is_live()).count(), 1);
    }

    #[test]
    fn ledger_weights_by_cost() {
        let mut a = live(0, GpuType::big());
        let mut b = live(0, GpuType::new("half", 0.5, 0.5));
        a.core.stop(SimTime::from_secs(10));
        b.core.stop(SimTime::from_secs(10));
        let end = SimTime::from_secs(99);
        let total = a.core.cost_weighted_secs(end) + b.core.cost_weighted_secs(end);
        assert!((total - 15.0).abs() < 1e-9);
    }

    #[test]
    fn candidate_scales_track_drain_survivors_not_slot_order() {
        // Slots declare big-first, but the shrink pass drains big members
        // first — so small candidate fleets are the *mid* members.
        let slots = [
            GpuType::big(),
            GpuType::big(),
            GpuType::mid(),
            GpuType::mid(),
        ];
        let pool = vec![
            live(10, GpuType::big()),
            live(20, GpuType::big()),
            live(30, GpuType::mid()),
            live(40, GpuType::mid()),
        ];
        let scales = candidate_perf_scales(&pool, &slots, 4);
        let mid = GpuType::mid().perf_scale;
        // Survivors of shrinking to 1/2: the mids (cheapest, most loaded
        // last); only candidates of 3+ include a big member.
        assert_eq!(scales[0], mid);
        assert_eq!(scales[1], mid);
        assert_eq!(scales[2], 1.0);
        assert_eq!(scales[3], 1.0);
        // After the bigs drain away, candidates re-grow from future slots.
        let survivors = vec![live(30, GpuType::mid()), live(40, GpuType::mid())];
        let scales = candidate_perf_scales(&survivors, &slots, 4);
        assert_eq!(scales, vec![mid, mid, mid, mid]);
    }

    #[test]
    fn candidate_scales_prefer_live_over_warming_and_pad_from_slots() {
        let slots = [GpuType::big(), GpuType::mid()];
        let pool = vec![warming(5), live(0, GpuType::big())];
        let scales = candidate_perf_scales(&pool, &slots, 4);
        // The live member survives everything; the warming member is next;
        // future spawns occupy slot 2+ (repeating the last declared type).
        assert_eq!(scales[0], 1.0);
        assert_eq!(scales[1], 1.0);
        assert_eq!(scales[2], GpuType::mid().perf_scale);
        assert_eq!(scales[3], GpuType::mid().perf_scale);
    }

    #[test]
    fn counts_and_next_ready() {
        let pool = vec![live(0, GpuType::big()), warming(3), warming(7)];
        assert_eq!(pool_counts(&pool), (1, 2));
        assert_eq!(provisioned_count(&pool), 3);
        assert_eq!(next_ready(&pool), Some(SimTime::from_secs(3)));
    }

    #[test]
    #[should_panic(expected = "invalid cost weight")]
    fn zero_cost_weight_panics() {
        let _ = GpuType::new("bad", 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid perf scale")]
    fn negative_perf_scale_panics() {
        let _ = GpuType::new("bad", 1.0, -1.0);
    }
}
