//! Elastic multi-instance serving: the cluster grows and shrinks mid-run.
//!
//! [`crate::cluster::ClusterSimulation`] serves a workload with a *fixed*
//! fleet. This module adds the control loop on top: an
//! [`AutoscalePlanner`] (from `pf-autoscale`) watches arrivals and
//! completions through sliding windows, forecasts the next adjustment
//! interval, and resizes the fleet —
//!
//! * **scale-up** provisions fresh instances that accept traffic only
//!   after a configurable *warm-up delay* (boot + weight load);
//! * **scale-down** runs the shared shrink pass of [`crate::fleet`]:
//!   cancel the newest warming instances first, then put live victims into
//!   a *draining* state — they finish their queued and running work but
//!   receive nothing new, and stop (and stop costing GPU-seconds) once
//!   empty.
//!
//! The member lifecycle (warm-up, drain, stop, the cost ledger) is the
//! [`crate::fleet`] kernel — the same state machine the disaggregated
//! pools run on; this module contributes only the engine work loop and
//! the planning cadence.
//!
//! # Heterogeneous fleets
//!
//! [`ElasticCluster::fleet`] assigns a [`GpuType`] per provisioning slot:
//! slot `k` (the `k`-th simultaneously provisioned instance) runs on
//! `slots[k]`. A member's `perf_scale` multiplies its engine's kernel
//! speed, the router divides each member's load signal by it (a fast GPU
//! looks emptier than a slow one at equal queued work), the planner sizes
//! candidate fleets against the mean `perf_scale` of the slots they would
//! occupy, and the shrink pass releases the costliest members first.
//! Reports price every instance at its `cost_weight`
//! ([`ElasticReport::cost_weighted_gpu_seconds`]).
//!
//! The front end routes every arriving request among the **live**
//! instances with a configurable [`RouterPolicy`] (default
//! [`RouterPolicy::LeastEstimatedLoad`] — the paper's §7 signal;
//! [`RouterPolicy::PrefixAffinity`] adds KV-aware prefix routing when the
//! base config enables a prefix cache); warming, draining and stopped
//! instances are never routed to. Exact load ties break with a rotating
//! cursor, not by lowest index. Member engines inherit the base config's
//! [`QueueOrder`](crate::QueueOrder), so deadline-slack-aware admission
//! (and its early-drop of doomed requests) works unchanged inside an
//! elastic fleet, and [`ElasticReport::timed_out`] requests count as SLA
//! misses in the cluster-level goodput.
//!
//! The run is fully deterministic: one global clock orders engine steps,
//! arrivals and planning rounds, and all randomness is seeded.
//!
//! # Example
//!
//! ```
//! use pf_autoscale::AutoscaleConfig;
//! use pf_core::SchedulerConfig;
//! use pf_metrics::SimDuration;
//! use pf_sim::elastic::ElasticCluster;
//! use pf_sim::{GpuSpec, ModelSpec, SimConfig};
//! use pf_workload::{datasets, rng::seeded, RateProfile};
//!
//! let base = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
//!     .scheduler(SchedulerConfig::past_future())
//!     .capacity_override(12_000)
//!     .record_series(false)
//!     .build();
//! let autoscale = AutoscaleConfig::bounded(1, 4)
//!     .interval(SimDuration::from_secs(10))
//!     .warmup(SimDuration::from_secs(15));
//! let requests = datasets::sharegpt(120, 1);
//! let arrivals = RateProfile::diurnal(1.0, 6.0, SimDuration::from_secs(120))
//!     .assign(&mut seeded(2), 120);
//! let report = ElasticCluster::new(base, autoscale, 1)
//!     .run(requests, arrivals)?;
//! assert_eq!(report.completed(), 120);
//! assert!(report.gpu_seconds() > 0.0);
//! # Ok::<(), pf_sim::SimError>(())
//! ```

use std::collections::VecDeque;

use pf_autoscale::{AutoscaleConfig, AutoscalePlanner, ScalingDecision, StepLatency};
use pf_metrics::{GoodputReport, SimDuration, SimTime, StepSeries};
use pf_obs::{Pool, TraceSink};
use pf_workload::RequestSpec;

use crate::cluster::{pick_engine, KvRouteCtx, RouteCandidate, RouterPolicy};
use crate::config::SimConfig;
use crate::engine::{Arrivals, Engine, Tick};
use crate::error::SimError;
use crate::fleet::{
    self, slot_gpu, FleetMember, GpuType, MemberCore, MemberState, RouteRng, RouterConfig,
    ROUTE_RNG_STREAM,
};
use crate::perf::PerfModel;
use crate::report::SimReport;

pub use crate::fleet::ScalingEvent;

/// Step-latency oracle for one replica of the elastic fleet: the roofline
/// [`PerfModel`] with the *deployment's* KV capacity (which an override in
/// [`SimConfig`] may shrink below the hardware-derived value).
#[derive(Debug, Clone, Copy)]
struct ReplicaModel {
    perf: PerfModel,
    capacity_tokens: u64,
}

impl StepLatency for ReplicaModel {
    fn prefill_secs(&self, prompt_tokens: u64) -> f64 {
        self.perf.prefill_step(prompt_tokens).as_secs_f64()
    }

    fn decode_secs(&self, batch_size: u64, kv_tokens: u64) -> f64 {
        self.perf.decode_step(batch_size, kv_tokens).as_secs_f64()
    }

    fn kv_capacity_tokens(&self) -> u64 {
        self.capacity_tokens
    }
}

#[derive(Debug)]
struct Member {
    engine: Engine,
    core: MemberCore,
    seen_outcomes: usize,
}

impl FleetMember for Member {
    fn core(&self) -> &MemberCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut MemberCore {
        &mut self.core
    }

    fn load_signal(&self) -> u64 {
        self.engine.outstanding() as u64
    }
}

/// An elastic fleet of serving instances driven by an SLA-targeted
/// autoscaling planner (identical replicas by default; see
/// [`ElasticCluster::fleet`] for mixed GPU types).
#[derive(Debug)]
pub struct ElasticCluster {
    base: SimConfig,
    autoscale: AutoscaleConfig,
    initial_replicas: usize,
    router: RouterPolicy,
    slots: Vec<GpuType>,
}

impl ElasticCluster {
    /// Creates an elastic cluster starting with `initial_replicas` live
    /// copies of `base`.
    ///
    /// # Panics
    ///
    /// Panics if `initial_replicas` is zero or outside the autoscale
    /// policy's `[min, max]` bounds.
    pub fn new(base: SimConfig, autoscale: AutoscaleConfig, initial_replicas: usize) -> Self {
        assert!(initial_replicas > 0, "cluster needs at least one instance");
        assert!(
            (autoscale.policy.min_replicas..=autoscale.policy.max_replicas)
                .contains(&initial_replicas),
            "initial_replicas {} outside policy bounds [{}, {}]",
            initial_replicas,
            autoscale.policy.min_replicas,
            autoscale.policy.max_replicas
        );
        ElasticCluster {
            base,
            autoscale,
            initial_replicas,
            router: RouterPolicy::LeastEstimatedLoad,
            slots: Vec::new(),
        }
    }

    /// Sets the front-end routing policy (default
    /// [`RouterPolicy::LeastEstimatedLoad`]).
    pub fn router(mut self, router: RouterPolicy) -> Self {
        self.router = router;
        self
    }

    /// Declares a heterogeneous fleet: provisioning slot `k` runs on
    /// `slots[k]` (slots past the end repeat the last entry). The default
    /// is a homogeneous fleet of [`GpuType::reference`] instances, which
    /// reproduces the single-type behavior bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty.
    pub fn fleet(mut self, slots: Vec<GpuType>) -> Self {
        assert!(!slots.is_empty(), "a fleet needs at least one GPU type");
        self.slots = slots;
        self
    }

    /// Runs the elastic fleet against a timed arrival stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if a request can never fit an instance or an
    /// instance stalls.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != arrival_times.len()` or the times are
    /// not sorted.
    pub fn run(
        self,
        requests: Vec<RequestSpec>,
        arrival_times: Vec<SimTime>,
    ) -> Result<ElasticReport, SimError> {
        self.run_traced(requests, arrival_times, None)
    }

    /// [`ElasticCluster::run`] with an optional [`TraceSink`] receiving
    /// every member engine's lifecycle events plus fleet-level scaling
    /// events. With `None` this is exactly `run`: bit-identical reports,
    /// no allocation on the emission paths.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if a request can never fit an instance or an
    /// instance stalls.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != arrival_times.len()` or the times are
    /// not sorted.
    pub fn run_traced(
        self,
        requests: Vec<RequestSpec>,
        arrival_times: Vec<SimTime>,
        sink: Option<&mut dyn TraceSink>,
    ) -> Result<ElasticReport, SimError> {
        assert_eq!(
            requests.len(),
            arrival_times.len(),
            "one arrival time per request"
        );
        assert!(
            arrival_times.windows(2).all(|w| w[0] <= w[1]),
            "arrival times must be sorted"
        );
        let mut sink = sink;
        Run::start(
            self.base,
            self.autoscale,
            self.initial_replicas,
            self.router,
            self.slots,
            &requests,
        )?
        .drive(arrival_times.into_iter().zip(requests).collect(), &mut sink)
    }
}

/// Mutable state of one elastic run.
struct Run {
    base: SimConfig,
    planner: AutoscalePlanner<ReplicaModel>,
    members: Vec<Member>,
    spawned_total: usize,
    router: RouterPolicy,
    slots: Vec<GpuType>,
    /// Rotating tie-break cursor of the router (see
    /// [`crate::fleet::pick_rotating_min`]).
    route_cursor: usize,
    /// Reusable per-arrival candidate buffer of the affinity router (see
    /// [`pick_engine`]).
    route_scratch: Vec<RouteCandidate>,
    /// Routing tunables (copied out of `base` once at start).
    router_cfg: RouterConfig,
    /// Whether the policy is [`RouterPolicy::KvOverlap`] — only then do
    /// members publish KV events into the global index.
    kv_routing: bool,
    /// Global event-fed KV index; members publish under their *member
    /// index* (stable — members are stopped, never removed), the same
    /// index space [`Run::route_target`] scores over.
    kv_indexer: pf_kvcache::KvIndexer,
    /// Dedicated softmax stream (never the workload's generators).
    route_rng: RouteRng,
    /// Reusable chained-hash buffer of the routed request.
    chain_scratch: Vec<u64>,
    /// Reusable per-tick event drain buffer.
    kv_event_buf: Vec<(SimTime, pf_kvcache::KvEvent)>,
    /// Block size of the members' prefix stores (0 = no block store).
    block_tokens: u32,
    next_adjust: SimTime,
    interval: SimDuration,
    warmup: SimDuration,
    events: Vec<ScalingEvent>,
    live_series: StepSeries,
    provisioned_series: StepSeries,
    /// Series must be recorded in time order; planning rounds are stamped
    /// at the interval boundary, which can trail the global front.
    last_record: SimTime,
}

impl Run {
    fn start(
        base: SimConfig,
        autoscale: AutoscaleConfig,
        initial_replicas: usize,
        router: RouterPolicy,
        slots: Vec<GpuType>,
        requests: &[RequestSpec],
    ) -> Result<Run, SimError> {
        let model = ReplicaModel {
            perf: base.perf_model(),
            capacity_tokens: base.capacity_tokens(),
        };
        let max_replicas = autoscale.policy.max_replicas;
        let mut planner = AutoscalePlanner::new(autoscale, base.sla, model);
        if !slots.is_empty() {
            let scales = (0..max_replicas)
                .map(|k| slot_gpu(&slots, k).perf_scale)
                .collect();
            planner = planner.with_slot_perf_scales(scales);
        }
        let interval = planner.interval();
        let warmup = planner.warmup();
        let router_cfg = base.router;
        let kv_routing = matches!(router, RouterPolicy::KvOverlap { .. });
        let kv_indexer = pf_kvcache::KvIndexer::new(router_cfg.kv_event_delay.as_micros());
        let route_rng = RouteRng::new(pf_workload::rng::derive_seed(base.seed, ROUTE_RNG_STREAM));
        let block_tokens = base.prefix_cache.and_then(|p| p.block_tokens).unwrap_or(0);
        let mut run = Run {
            base,
            planner,
            members: Vec::new(),
            spawned_total: 0,
            router,
            slots,
            route_cursor: 0,
            route_scratch: Vec::new(),
            router_cfg,
            kv_routing,
            kv_indexer,
            route_rng,
            chain_scratch: Vec::new(),
            kv_event_buf: Vec::new(),
            block_tokens,
            next_adjust: SimTime::ZERO + interval,
            interval,
            warmup,
            events: Vec::new(),
            live_series: StepSeries::new(),
            provisioned_series: StepSeries::new(),
            last_record: SimTime::ZERO,
        };
        for _ in 0..initial_replicas {
            run.spawn(SimTime::ZERO, SimDuration::ZERO);
        }
        // Upfront validation against one (any) member: every member shares
        // the same KV capacity (GPU types differ in speed and cost only).
        run.members[0].engine.validate()?;
        for spec in requests {
            run.members[0].engine.validate_spec(spec)?;
        }
        run.record_fleet(SimTime::ZERO);
        Ok(run)
    }

    fn spawn(&mut self, now: SimTime, warmup: SimDuration) {
        // The slot an instance occupies is its rank among currently
        // provisioned members: a fleet of n instances always runs on
        // (approximately) the first n slots of the declared mix.
        let gpu = slot_gpu(&self.slots, fleet::provisioned_count(&self.members));
        let mut config = self.base.clone();
        // Independent sampling streams per instance, as in the static
        // cluster.
        config.seed = config.seed.wrapping_add(self.spawned_total as u64);
        // A GPU type's perf_scale multiplies the whole stack's kernel
        // speed (×1.0 for the reference type — bit-identical).
        config.tuning.kernel_speedup *= gpu.perf_scale;
        // Trace-event instance id: dense over spawn order, stable for the
        // member's lifetime.
        let instance = self.spawned_total as u32;
        self.spawned_total += 1;
        let mut engine = Engine::new(config, Arrivals::offline(Vec::new()));
        engine.set_instance(instance);
        engine.advance_to(now);
        if self.kv_routing {
            engine.enable_kv_event_log();
        }
        self.members.push(Member {
            engine,
            core: MemberCore::spawn(now, warmup, gpu),
            seen_outcomes: 0,
        });
    }

    fn live_count(&self) -> usize {
        fleet::pool_counts(&self.members).0
    }

    fn warming_count(&self) -> usize {
        fleet::pool_counts(&self.members).1
    }

    fn record_fleet(&mut self, at: SimTime) {
        let at = at.max(self.last_record);
        self.last_record = at;
        self.live_series.record(at, self.live_count() as f64);
        self.provisioned_series
            .record(at, fleet::provisioned_count(&self.members) as f64);
    }

    /// Index of the active member with the smallest clock (the global
    /// front), or `None` when no member is active.
    fn lagging_active(&self) -> Option<usize> {
        self.members
            .iter()
            .enumerate()
            .filter(|(_, m)| m.core.is_active())
            .min_by_key(|(_, m)| m.engine.now())
            .map(|(i, _)| i)
    }

    /// Routes `spec` among the live members with the configured policy,
    /// breaking exact load ties with the rotating cursor (first-index
    /// tie-breaking would herd every cold-start request onto member 0).
    /// Load signals divide by each member's `perf_scale`, so mixed fleets
    /// weight traffic toward their faster GPUs.
    fn route_target(&mut self, now: SimTime, spec: &RequestSpec) -> Option<usize> {
        let Run {
            members,
            router,
            route_cursor,
            route_scratch,
            router_cfg,
            kv_routing,
            kv_indexer,
            route_rng,
            chain_scratch,
            block_tokens,
            ..
        } = self;
        if *kv_routing {
            // Stored events older than the propagation delay become
            // visible at the routing-time reference clock.
            kv_indexer.advance(now.as_micros());
        }
        let n = members.len();
        let mut kv_ctx = KvRouteCtx {
            indexer: kv_indexer,
            rng: route_rng,
            block_tokens: *block_tokens,
            chain: chain_scratch,
        };
        pick_engine(
            *router,
            *router_cfg,
            members
                .iter()
                .enumerate()
                .filter(|(_, m)| m.core.is_live())
                .map(|(i, m)| (i, &m.engine, m.core.gpu.perf_scale)),
            spec,
            route_cursor,
            n,
            route_scratch,
            Some(&mut kv_ctx),
        )
    }

    /// Feeds newly finished requests of member `i` to the planner.
    fn harvest_outcomes(&mut self, i: usize) {
        // Disjoint borrows: the member is read, the planner is fed. This
        // runs after every member tick, so it must not allocate.
        let Run {
            members, planner, ..
        } = self;
        let member = &mut members[i];
        let now = member.engine.now();
        let outcomes = member.engine.outcomes();
        for o in &outcomes[member.seen_outcomes..] {
            if let Some(ttft) = o.timing.ttft() {
                planner.on_request_finished(now, o.output_len, ttft, o.timing.avg_tpot());
            }
        }
        member.seen_outcomes = outcomes.len();
    }

    /// Runs one planning round at `self.next_adjust` and applies the
    /// decision.
    fn adjust(&mut self, sink: &mut Option<&mut dyn TraceSink>) {
        let at = self.next_adjust;
        self.next_adjust = at + self.interval;
        let live = self.live_count();
        let warming = self.warming_count();
        let effective = live + warming;
        if effective == 0 {
            // Horizon pressure stopped the whole fleet; nothing to steer.
            return;
        }
        if !self.slots.is_empty() {
            // Refresh the planner's view of what each candidate size would
            // run on: drains removed the costliest members first, so the
            // surviving fleet can differ from the declared slot order.
            let max = self.planner.config().policy.max_replicas;
            self.planner
                .update_slot_perf_scales(fleet::candidate_perf_scales(
                    &self.members,
                    &self.slots,
                    max,
                ));
        }
        let outcome = self.planner.plan(at, live, warming);
        let target = outcome.decision.target_or(effective);
        match outcome.decision {
            ScalingDecision::ScaleUp { target } if target > effective => {
                for _ in effective..target {
                    self.spawn(at, self.warmup);
                }
            }
            ScalingDecision::ScaleDown { target } if target < effective => {
                // The shared shrink pass: cancel the newest warming
                // members, then drain the costliest / least-loaded live
                // ones — never below one live member.
                let _ = fleet::shrink_pool(&mut self.members, target, at);
            }
            _ => {}
        }
        if target != effective {
            fleet::emit_scale(sink, at, Pool::Colocated, effective, target);
            self.events.push(ScalingEvent {
                at,
                from: effective,
                to: target,
            });
        }
        self.record_fleet(at);
    }

    /// Promotes warming members whose delay elapsed before `front`.
    fn promote_ready(&mut self, front: SimTime) -> bool {
        let mut promoted = false;
        for member in &mut self.members {
            if let MemberState::Warming { ready_at } = member.core.state {
                if ready_at <= front {
                    member.engine.advance_to(ready_at);
                    member.core.state = MemberState::Live;
                    promoted = true;
                }
            }
        }
        if promoted {
            self.record_fleet(front);
        }
        promoted
    }

    fn drive(
        mut self,
        mut stream: VecDeque<(SimTime, RequestSpec)>,
        sink: &mut Option<&mut dyn TraceSink>,
    ) -> Result<ElasticReport, SimError> {
        // Requests popped from the stream while no live instance exists
        // (possible only under horizon pressure) are unserved too and
        // must count alongside the un-popped remainder.
        let mut dropped = 0usize;
        // The loop ends when no member is active (every instance stopped,
        // possible only via max_sim_time — remaining stream goes unserved)
        // or via the explicit all-idle break below.
        while let Some(i_min) = self.lagging_active() {
            let front = self.members[i_min].engine.now();
            if self.promote_ready(front) {
                continue;
            }
            if front >= self.next_adjust {
                self.adjust(sink);
                continue;
            }
            if let Some(&(at, _)) = stream.front() {
                if front >= at {
                    let (at, spec) = stream.pop_front().expect("peeked");
                    let Some(target) = self.route_target(front, &spec) else {
                        // No live instance (all draining under horizon
                        // pressure): the request goes unserved.
                        dropped += 1;
                        continue;
                    };
                    self.planner.on_request_arrival(at, spec.input_len);
                    let arrival = at.max(self.members[target].engine.now());
                    self.members[target].engine.inject(arrival, spec);
                    self.members[target].core.routed += 1;
                    continue;
                }
            }
            let tick = self.members[i_min].engine.tick_traced(sink)?;
            if self.kv_routing {
                self.kv_event_buf.clear();
                self.members[i_min]
                    .engine
                    .drain_kv_events(&mut self.kv_event_buf);
                for &(at, ev) in &self.kv_event_buf {
                    self.kv_indexer.publish(i_min as u32, ev, at.as_micros());
                }
            }
            match tick {
                Tick::Worked => self.harvest_outcomes(i_min),
                Tick::Sleep(t) => {
                    // Do not overshoot the next global event: the planner
                    // round and stream arrivals need the front to pause at
                    // their timestamps.
                    let mut bound = t.min(self.next_adjust);
                    if let Some(&(at, _)) = stream.front() {
                        bound = bound.min(at);
                    }
                    self.members[i_min].engine.advance_to(bound.max(front));
                }
                Tick::Blocked => {
                    return Err(SimError::Stalled {
                        queued: self.members[i_min].engine.outstanding(),
                        at: front,
                    });
                }
                Tick::HorizonReached => {
                    // The member will never work again; release it so the
                    // run can terminate.
                    self.members[i_min].core.stop(front);
                    self.record_fleet(front);
                }
                Tick::Drained => {
                    if self.members[i_min].core.state == MemberState::Draining {
                        self.members[i_min].core.stop(front);
                        self.record_fleet(front);
                        continue;
                    }
                    // Idle live instance: fast-forward to the next global
                    // event so it stays a valid routing-time reference.
                    let all_idle = self
                        .members
                        .iter()
                        .filter(|m| m.core.is_active())
                        .all(|m| m.engine.outstanding() == 0);
                    if stream.is_empty() && all_idle && self.warming_count() == 0 {
                        break;
                    }
                    let mut next = self.next_adjust;
                    if let Some(&(at, _)) = stream.front() {
                        next = next.min(at);
                    }
                    if let Some(ready) = fleet::next_ready(&self.members) {
                        next = next.min(ready);
                    }
                    self.members[i_min].engine.advance_to(next.max(front));
                }
            }
        }
        Ok(self.finish(dropped + stream.len()))
    }

    fn finish(mut self, unrouted: usize) -> ElasticReport {
        // Collect any completions the final ticks produced.
        for i in 0..self.members.len() {
            self.harvest_outcomes(i);
        }
        let end = self
            .members
            .iter()
            .map(|m| m.core.stopped_at.unwrap_or(m.engine.now()))
            .max()
            .unwrap_or(SimTime::ZERO);
        self.live_series.record(end, self.live_count() as f64);
        self.provisioned_series
            .record(end, fleet::provisioned_count(&self.members) as f64);
        let sla = self.base.sla;
        let instances: Vec<ElasticInstanceReport> = self
            .members
            .into_iter()
            .map(|m| {
                let stopped_at = m.core.stopped_at.unwrap_or(end);
                ElasticInstanceReport {
                    spawned_at: m.core.spawned_at,
                    stopped_at,
                    gpu: m.core.gpu,
                    routed: m.core.routed,
                    report: m.engine.into_report(),
                }
            })
            .collect();
        // Cluster-level goodput over every completed request, measured on
        // the cluster makespan; timed-out requests enter the denominators
        // as SLA misses.
        let all_requests: Vec<(pf_metrics::RequestTiming, u64)> = instances
            .iter()
            .flat_map(|i| i.report.outcomes.iter())
            .map(|o| (o.timing, u64::from(o.output_len)))
            .collect();
        let timed_out: usize = instances.iter().map(|i| i.report.timed_out).sum();
        let makespan = end.saturating_since(SimTime::ZERO);
        let goodput =
            GoodputReport::compute_with_timeouts(&sla, &all_requests, makespan, timed_out);
        ElasticReport {
            goodput,
            makespan,
            unrouted,
            instances,
            events: self.events,
            live_series: self.live_series,
            provisioned_series: self.provisioned_series,
        }
    }
}

/// Per-instance result of an elastic run.
#[derive(Debug)]
pub struct ElasticInstanceReport {
    /// When the instance was provisioned.
    pub spawned_at: SimTime,
    /// When it stopped costing GPU time (run end for instances still up).
    pub stopped_at: SimTime,
    /// The accelerator this instance ran on.
    pub gpu: GpuType,
    /// Requests routed to it.
    pub routed: usize,
    /// Its engine report.
    pub report: SimReport,
}

impl ElasticInstanceReport {
    /// GPU time this instance was provisioned for, in seconds (warm-up
    /// time counts: the GPU is busy loading weights, not serving).
    pub fn active_secs(&self) -> f64 {
        self.stopped_at
            .saturating_since(self.spawned_at)
            .as_secs_f64()
    }

    /// Provisioned seconds weighted by the instance's GPU cost.
    pub fn cost_weighted_secs(&self) -> f64 {
        self.active_secs() * self.gpu.cost_weight
    }
}

/// Aggregate result of an elastic cluster run.
#[derive(Debug)]
pub struct ElasticReport {
    /// Cluster-level goodput over all completed requests.
    pub goodput: GoodputReport,
    /// Run end time (latest instance activity).
    pub makespan: SimDuration,
    /// Requests dropped because no live instance existed (only possible
    /// when `max_sim_time` stops the fleet early).
    pub unrouted: usize,
    /// Per-instance reports, in spawn order.
    pub instances: Vec<ElasticInstanceReport>,
    /// Fleet-size changes the planner made.
    pub events: Vec<ScalingEvent>,
    /// Live-replica count over time.
    pub live_series: StepSeries,
    /// Provisioned-replica count (live + warming + draining) over time.
    pub provisioned_series: StepSeries,
}

impl ElasticReport {
    /// Total completed requests.
    pub fn completed(&self) -> usize {
        self.instances.iter().map(|i| i.report.completed).sum()
    }

    /// Requests that satisfied the SLA.
    pub fn satisfied(&self) -> usize {
        self.goodput.satisfied_requests
    }

    /// Fraction of requests that satisfied the SLA (timed-out requests
    /// count as misses).
    pub fn sla_attainment(&self) -> f64 {
        self.goodput.satisfied_fraction()
    }

    /// SLA-satisfying output tokens per second over the makespan.
    pub fn goodput_tok_per_s(&self) -> f64 {
        self.goodput.goodput_tok_per_s
    }

    /// Total GPU-seconds provisioned across the fleet (the cost metric
    /// the elastic planner competes on against static fleets).
    pub fn gpu_seconds(&self) -> f64 {
        self.instances.iter().map(|i| i.active_secs()).sum()
    }

    /// Total provisioned GPU-seconds weighted by each instance's GPU cost
    /// — the objective heterogeneous fleets compete on. Equals
    /// [`ElasticReport::gpu_seconds`] for homogeneous weight-1.0 fleets.
    pub fn cost_weighted_gpu_seconds(&self) -> f64 {
        self.instances.iter().map(|i| i.cost_weighted_secs()).sum()
    }

    /// Largest number of simultaneously provisioned replicas.
    pub fn peak_replicas(&self) -> usize {
        self.provisioned_series.max_value().unwrap_or(0.0) as usize
    }

    /// Total evictions across instances.
    pub fn evictions(&self) -> u64 {
        self.instances.iter().map(|i| i.report.evictions).sum()
    }

    /// Requests dropped because their deadline expired while queued,
    /// summed across instances.
    pub fn timed_out(&self) -> usize {
        self.instances.iter().map(|i| i.report.timed_out).sum()
    }

    /// Fraction of completed requests whose TTFT met the SLA.
    pub fn ttft_attainment(&self) -> f64 {
        self.goodput.ttft_attainment()
    }

    /// Prefix-cache statistics merged across instances (all zero when
    /// caches are disabled).
    pub fn prefix_stats(&self) -> pf_kvcache::PrefixCacheStats {
        let mut stats = pf_kvcache::PrefixCacheStats::default();
        for instance in &self.instances {
            stats.merge(&instance.report.prefix_stats);
        }
        stats
    }
}
