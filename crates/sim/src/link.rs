//! A shared KV-transfer link modeled as a fluid, weighted max-min
//! fair-share resource (progressive filling).
//!
//! The atomic transfer path in [`crate::disagg`] charges each handoff a
//! closed-form latency and bounds concurrency with fixed slots. Layer-wise
//! streaming needs a richer model: many streams share the link at once,
//! each stream's bytes become *eligible* chunk by chunk while its prefill
//! pass is still running, and completion times shift whenever a stream
//! joins or leaves. [`LinkScheduler`] implements that model exactly:
//!
//! - Chunk `ℓ ∈ 1..=L` of a stream producing over `[start, end]` becomes
//!   eligible at `start + ceil((end − start)·ℓ/L)` — the pass emits KV
//!   proportionally, so the last chunk is eligible exactly at `end`.
//! - At any instant the link capacity `C = link_gbps·1e9` bytes/s is split
//!   among *active* streams (open, with eligible bytes not yet delivered)
//!   in proportion to their weights: `r_i = C·w_i / Σ_active w_j`. A
//!   stream throttled by eligibility (transfer caught up with production)
//!   temporarily leaves the active set and its share redistributes — the
//!   classic progressive-filling construction of weighted max-min
//!   fairness.
//! - The fluid trajectory is piecewise linear; the scheduler advances it
//!   breakpoint by breakpoint (stream drains, eligibility boundaries), so
//!   completion times are exact, not discretised.
//! - `per_hop_overhead` is charged **once per stream**, appended after the
//!   last byte lands (not per chunk — see the disagg module docs).
//!
//! All state advances through deterministic `f64` arithmetic in a fixed
//! order, so replays are bit-identical.

/// One stream's shape: how many bytes, over which production window, in
/// how many chunks, at what fair-share weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSpec {
    /// Total payload in bytes (must be positive).
    pub bytes: u64,
    /// When production (the prefill pass) starts, in µs.
    pub produce_start_us: u64,
    /// When production ends, in µs (`>= produce_start_us`). With
    /// `produce_end_us == produce_start_us` every chunk is eligible
    /// immediately (post-hoc transfer).
    pub produce_end_us: u64,
    /// Number of equal chunks (layers); must be positive.
    pub chunks: u32,
    /// Fair-share weight (finite, positive). Higher weights draw a larger
    /// share of the link while contended.
    pub weight: f64,
}

/// A completed stream, reported by [`LinkScheduler::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamDone {
    /// Stream id, as returned by [`LinkScheduler::start_stream`].
    pub id: usize,
    /// When the last byte cleared the link, in µs.
    pub transmit_end_us: u64,
    /// `transmit_end_us` plus the per-stream overhead: when the receiver
    /// may use the KV.
    pub done_us: u64,
}

#[derive(Debug, Clone)]
struct Stream {
    spec: StreamSpec,
    delivered: f64,
    open: bool,
    /// Chunk landing times (µs), recorded when enabled.
    landings: Vec<u64>,
}

impl Stream {
    fn span_us(&self) -> u64 {
        self.spec.produce_end_us - self.spec.produce_start_us
    }

    /// Bytes eligible for transfer at fluid time `t` (µs).
    fn eligible_at(&self, t: f64) -> f64 {
        let bytes = self.spec.bytes as f64;
        let span = self.span_us();
        if span == 0 || t >= self.spec.produce_end_us as f64 {
            return bytes;
        }
        let start = self.spec.produce_start_us;
        if t < start as f64 {
            return 0.0;
        }
        // Chunk ℓ is eligible at start + ceil(span·ℓ/L), an integer, so
        // count chunks via the equivalent integer test span·ℓ ≤ floor(t−start)·L.
        let elapsed = (t as u64).saturating_sub(start);
        let l = self.spec.chunks as u64;
        let k = (elapsed * l / span).min(l);
        bytes * k as f64 / l as f64
    }

    /// The next eligibility boundary strictly after `t`, if production is
    /// still ahead of the cursor.
    fn next_boundary(&self, t: f64) -> Option<u64> {
        let span = self.span_us();
        if span == 0 || t >= self.spec.produce_end_us as f64 {
            return None;
        }
        let start = self.spec.produce_start_us;
        if t < start as f64 {
            // First chunk's boundary (production may start in the future).
            let l = self.spec.chunks as u64;
            return Some(start + span.div_ceil(l));
        }
        let elapsed = (t as u64).saturating_sub(start);
        let l = self.spec.chunks as u64;
        let k = (elapsed * l / span).min(l);
        if k >= l {
            return None;
        }
        Some(start + (span * (k + 1)).div_ceil(l))
    }
}

/// Delivered-byte slack below which a stream counts as caught up.
const EPS_BYTES: f64 = 1e-6;
/// Cursor slack (µs) below which two fluid instants are the same.
const EPS_US: f64 = 1e-9;

/// The shared-link bandwidth scheduler (see the module docs).
#[derive(Debug, Clone)]
pub struct LinkScheduler {
    /// Link capacity in bytes per microsecond.
    bytes_per_us: f64,
    overhead_us: u64,
    streams: Vec<Stream>,
    /// Fluid clock, fractional µs. Monotone.
    cursor: f64,
    /// Integral of time with at least one active stream, in µs.
    busy_us: f64,
    /// Bumped whenever the completion schedule may have changed (stream
    /// joins, completions drained). Stale wake-ups compare against this.
    generation: u64,
    record_chunks: bool,
    pending: Vec<StreamDone>,
}

impl LinkScheduler {
    /// Creates a scheduler for a link of `link_gbps` GB/s charging
    /// `overhead_us` once per stream after its last byte.
    ///
    /// # Panics
    ///
    /// Panics unless the bandwidth is finite and positive.
    pub fn new(link_gbps: f64, overhead_us: u64) -> Self {
        assert!(
            link_gbps.is_finite() && link_gbps > 0.0,
            "invalid link bandwidth {link_gbps}"
        );
        LinkScheduler {
            bytes_per_us: link_gbps * 1e3,
            overhead_us,
            streams: Vec::new(),
            cursor: 0.0,
            busy_us: 0.0,
            generation: 0,
            record_chunks: false,
            pending: Vec::new(),
        }
    }

    /// Enables per-chunk landing-time recording (for tests and tracing).
    pub fn record_chunks(mut self, on: bool) -> Self {
        self.record_chunks = on;
        self
    }

    /// Opens a new stream at `now_us` and returns its id. The fluid model
    /// is advanced to `now_us` first; the join invalidates previously
    /// projected completion times (the generation is bumped).
    ///
    /// # Panics
    ///
    /// Panics on an empty or malformed spec.
    pub fn start_stream(&mut self, now_us: u64, spec: StreamSpec) -> usize {
        assert!(spec.bytes > 0, "empty stream");
        assert!(spec.chunks > 0, "stream needs at least one chunk");
        assert!(
            spec.produce_end_us >= spec.produce_start_us,
            "production window ends before it starts"
        );
        assert!(
            spec.weight.is_finite() && spec.weight > 0.0,
            "invalid stream weight {}",
            spec.weight
        );
        self.sync_to(now_us as f64);
        self.streams.push(Stream {
            spec,
            delivered: 0.0,
            open: true,
            landings: Vec::new(),
        });
        self.generation += 1;
        self.streams.len() - 1
    }

    /// Advances the fluid model to `now_us` and drains any streams that
    /// completed at or before it into `out`. Bumps the generation when a
    /// completion was drained (remaining streams just sped up).
    pub fn advance(&mut self, now_us: u64, out: &mut Vec<StreamDone>) {
        self.sync_to(now_us as f64);
        if !self.pending.is_empty() {
            out.append(&mut self.pending);
            self.generation += 1;
        }
    }

    /// The current completion-schedule generation (see
    /// [`LinkScheduler::start_stream`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Projects the next stream-completion instant (`done_us`, overhead
    /// included) without mutating the model, or `None` when idle.
    pub fn next_event_us(&self) -> Option<u64> {
        let open: Vec<usize> = (0..self.streams.len())
            .filter(|&i| self.streams[i].open)
            .collect();
        if open.is_empty() {
            return None;
        }
        let mut cursor = self.cursor;
        let mut delivered: Vec<f64> = open.iter().map(|&i| self.streams[i].delivered).collect();
        // Piecewise-linear projection: identical fluid algorithm to
        // `sync_to`, run forward on scratch state until the first drain.
        loop {
            let mut weight_sum = 0.0;
            for (slot, &i) in open.iter().enumerate() {
                let s = &self.streams[i];
                let limit = s.eligible_at(cursor).min(s.spec.bytes as f64);
                if delivered[slot] < limit - EPS_BYTES {
                    weight_sum += s.spec.weight;
                }
            }
            if weight_sum <= 0.0 {
                // Everyone is caught up with production: idle-jump to the
                // earliest future eligibility boundary.
                let next = open
                    .iter()
                    .filter_map(|&i| self.streams[i].next_boundary(cursor))
                    .min()?;
                cursor = next as f64;
                continue;
            }
            let mut dt = f64::INFINITY;
            for (slot, &i) in open.iter().enumerate() {
                let s = &self.streams[i];
                let limit = s.eligible_at(cursor).min(s.spec.bytes as f64);
                if delivered[slot] < limit - EPS_BYTES {
                    let rate = self.bytes_per_us * s.spec.weight / weight_sum;
                    dt = dt.min((limit - delivered[slot]) / rate);
                }
                if let Some(b) = s.next_boundary(cursor) {
                    dt = dt.min(b as f64 - cursor);
                }
            }
            debug_assert!(dt.is_finite() && dt > 0.0);
            let mut first_done: Option<u64> = None;
            for (slot, &i) in open.iter().enumerate() {
                let s = &self.streams[i];
                let limit = s.eligible_at(cursor).min(s.spec.bytes as f64);
                if delivered[slot] < limit - EPS_BYTES {
                    let rate = self.bytes_per_us * s.spec.weight / weight_sum;
                    delivered[slot] = (delivered[slot] + rate * dt).min(limit);
                }
                if delivered[slot] >= s.spec.bytes as f64 - EPS_BYTES {
                    let end = (cursor + dt).ceil() as u64 + self.overhead_us;
                    first_done = Some(first_done.map_or(end, |e: u64| e.min(end)));
                }
            }
            cursor += dt;
            if let Some(done) = first_done {
                return Some(done);
            }
        }
    }

    /// Bytes delivered so far on stream `id`.
    pub fn delivered_bytes(&self, id: usize) -> f64 {
        self.streams[id].delivered
    }

    /// Chunk landing times (µs) recorded for stream `id` (empty unless
    /// recording is enabled).
    pub fn chunk_landings(&self, id: usize) -> &[u64] {
        &self.streams[id].landings
    }

    /// Number of streams currently open (transmitting or waiting on
    /// production).
    pub fn inflight(&self) -> usize {
        self.streams.iter().filter(|s| s.open).count()
    }

    /// Total time the link spent transmitting, in seconds.
    pub fn busy_secs(&self) -> f64 {
        self.busy_us / 1e6
    }

    /// Running-mean utilization: busy time over elapsed fluid time.
    pub fn utilization(&self) -> f64 {
        if self.cursor <= 0.0 {
            return 0.0;
        }
        (self.busy_us / self.cursor).clamp(0.0, 1.0)
    }

    /// Advances the fluid trajectory to `target` (fractional µs),
    /// breakpoint by breakpoint, closing streams whose last byte lands.
    fn sync_to(&mut self, target: f64) {
        while self.cursor < target - EPS_US {
            let mut weight_sum = 0.0;
            for s in &self.streams {
                if !s.open {
                    continue;
                }
                let limit = s.eligible_at(self.cursor).min(s.spec.bytes as f64);
                if s.delivered < limit - EPS_BYTES {
                    weight_sum += s.spec.weight;
                }
            }
            if weight_sum <= 0.0 {
                // Idle (or everyone throttled by production): jump to the
                // next eligibility boundary or the target, whichever is
                // sooner.
                let next = self
                    .streams
                    .iter()
                    .filter(|s| s.open)
                    .filter_map(|s| s.next_boundary(self.cursor))
                    .min()
                    .map_or(target, |b| (b as f64).min(target));
                self.cursor = next.max(self.cursor);
                continue;
            }
            // Breakpoints: a stream drains, a chunk becomes eligible, or
            // we reach the target.
            let mut dt = target - self.cursor;
            for s in &self.streams {
                if !s.open {
                    continue;
                }
                let limit = s.eligible_at(self.cursor).min(s.spec.bytes as f64);
                if s.delivered < limit - EPS_BYTES {
                    let rate = self.bytes_per_us * s.spec.weight / weight_sum;
                    dt = dt.min((limit - s.delivered) / rate);
                }
                if let Some(b) = s.next_boundary(self.cursor) {
                    dt = dt.min(b as f64 - self.cursor);
                }
            }
            debug_assert!(dt.is_finite() && dt > 0.0, "fluid step stalled");
            let cursor = self.cursor;
            let after = cursor + dt;
            let record = self.record_chunks;
            let bytes_per_us = self.bytes_per_us;
            let overhead_us = self.overhead_us;
            let mut done: Vec<StreamDone> = Vec::new();
            for (id, s) in self.streams.iter_mut().enumerate() {
                if !s.open {
                    continue;
                }
                let bytes = s.spec.bytes as f64;
                let limit = s.eligible_at(cursor).min(bytes);
                if s.delivered < limit - EPS_BYTES {
                    let rate = bytes_per_us * s.spec.weight / weight_sum;
                    let before = s.delivered;
                    s.delivered = (before + rate * dt).min(limit);
                    if record {
                        // Record each chunk threshold crossed in this
                        // interval at its exact fluid crossing time.
                        let chunk = bytes / s.spec.chunks as f64;
                        let mut c = s.landings.len() + 1;
                        while c <= s.spec.chunks as usize
                            && s.delivered >= chunk * c as f64 - EPS_BYTES
                        {
                            let at = cursor + (chunk * c as f64 - before).max(0.0) / rate;
                            s.landings.push(at.ceil() as u64);
                            c += 1;
                        }
                    }
                }
                if s.delivered >= bytes - EPS_BYTES {
                    s.open = false;
                    let transmit_end_us = after.ceil() as u64;
                    done.push(StreamDone {
                        id,
                        transmit_end_us,
                        done_us: transmit_end_us + overhead_us,
                    });
                }
            }
            self.pending.append(&mut done);
            self.busy_us += dt;
            self.cursor = after;
        }
        self.cursor = self.cursor.max(target);
    }
}
