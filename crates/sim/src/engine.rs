//! The continuous-batching serving engine.
//!
//! A discrete-event reimplementation of the LightLLM/vLLM serving loop:
//!
//! 1. ingest arrivals;
//! 2. ask the [`Scheduler`] how many queued requests to admit, allocate
//!    their prompts and run a prefill step (or start chunked prefill);
//! 3. otherwise run one decode step: every running request grows by one
//!    token; if the KV pool cannot hold the growth, evict the most recently
//!    admitted request (recompute preemption: it re-queues at the *front*
//!    keeping its generated tokens, and pays a full re-prefill on
//!    readmission);
//! 4. requests reaching their true output length finish, release memory and
//!    feed the scheduler's output-length history.
//!
//! Time advances by the roofline [`PerfModel`] step latencies; every token
//! emission is timestamped for SLA accounting. The engine also instruments
//! the *true* future required memory (Eq. 2–4 evaluated with ground-truth
//! lengths) at every step — the quantity reported in the paper's Figure 1
//! and Table 1, which exceeds 100% exactly when the current batch is
//! destined to run out of memory.
//!
//! # Queue discipline and deadlines
//!
//! A queued request moves through these states, ordered by the configured
//! [`QueueOrder`]:
//!
//! ```text
//!             ingest                 scheduler plan + KV alloc
//! arrivals ──────────▶ queue ════(QueueOrder ranks the queue)════▶ running
//!                      ▲  │                                          │
//!   preemption: evicted│  │ purge:                            finish │
//!   victims re-queue   │  │  · waited ≥ deadline (Fifo guillotine)   ▼
//!   (rank 0 — client   │  │  · slack < min feasible prefill     outcomes
//!   is mid-response)   │  │    (LeastSlackFirst early-drop)
//!                      │  ▼
//!              running └─ timed_out
//!
//! LeastSlackFirst ranking (stable within each group):
//!   [0] preempted (mid-response, resume first)
//!   [1] waited ≥ aging_cap, oldest first          (starvation bound)
//!   [2] remaining slack = deadline − waited, ascending
//!   [3] no effective deadline, oldest first
//! ```
//!
//! Under [`QueueOrder::Fifo`] deadlines act only as the guillotine: an
//! expired queued request — never-started *or* preempted-and-waiting — is
//! cancelled and counted `timed_out` (a queued entry holds no KV, so
//! cancellation frees exactly the queue slot). Under
//! [`QueueOrder::LeastSlackFirst`] admission additionally serves the
//! tightest remaining slack first and drops requests that can no longer
//! make their deadline even if admitted alone immediately. The purge runs
//! only while a deadline can actually fire (a deployment-wide default, or
//! at least one queued request carrying its own), so deadline-less runs
//! pay nothing per tick.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use pf_core::{
    BatchEntry, FutureMemoryEstimator, MemoryState, QueuedRequest, RunningRequest, Scheduler,
};
use pf_kvcache::{BlockPrefixCache, KvCacheManager, KvEvent, PrefixCache, PrefixCacheStats};
use pf_metrics::{GoodputReport, RequestTiming, SimDuration, SimTime, StepSeries};
use pf_obs::{GaugeKind, TraceEvent, TraceSink};
use pf_workload::{ClosedLoopClients, RequestSpec};

use crate::config::{BatchingMode, EvictionMode, PrefillMode, QueueOrder, SimConfig};
use crate::error::SimError;
use crate::fleet;
use crate::perf::PerfModel;
use crate::report::{RequestOutcome, SimReport};
use crate::slab::Slab;

/// How many queued requests are exposed to the scheduler per planning call.
/// The plan loop repeats while the scheduler admits the whole visible
/// window, so this is not an admission cap — only a cost bound.
const PLAN_WINDOW: usize = 256;

/// Reserved KV-pool request id under which the prefix cache's occupancy is
/// charged, so cached prefixes and request KV compete for the *same*
/// physical slots. Workload request ids are dense from zero and never
/// reach it.
const PREFIX_SENTINEL: u64 = u64::MAX;

#[derive(Debug)]
struct Pending {
    /// Handle into the engine's spec slab — queue rotations and slack
    /// re-sorts move this `u32`, not the full [`RequestSpec`].
    spec: u32,
    generated: u32,
    timing: RequestTiming,
    evictions: u32,
    /// KV state parked in host memory (swap preemption): readmission pays
    /// a PCIe transfer instead of a recompute prefill.
    swapped: bool,
}

#[derive(Debug)]
struct Live {
    /// Handle into the engine's spec slab.
    spec: u32,
    generated: u32,
    timing: RequestTiming,
    evictions: u32,
    /// Prompt tokens still to process (chunked prefill only).
    prefill_remaining: u64,
    /// The first post-(re)admission token is pre-paid by the admission
    /// allocation and consumes no extra KV slot.
    first_token_pending: bool,
    /// This admission restores a swapped-out victim: the "prefill" is a
    /// PCIe swap-in transfer, not a recompute pass.
    swapped_in: bool,
    /// Prompt tokens served from the prefix cache at this admission: the
    /// prefill pass skips them (KV accounting is unchanged — the request
    /// still holds its full footprint).
    cached_prefix: u64,
}

/// Outcome of one engine tick (co-simulation protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tick {
    /// The engine performed a prefill or decode step (clock advanced).
    Worked,
    /// Nothing to do until the contained arrival time.
    Sleep(SimTime),
    /// Requests are queued but nothing can ever run without external input
    /// (standalone runs treat this as [`SimError::Stalled`]; a cluster may
    /// still inject work).
    Blocked,
    /// All work drained.
    Drained,
    /// `max_sim_time` reached.
    HorizonReached,
}

/// Request arrival schedule.
#[derive(Debug)]
pub(crate) struct Arrivals {
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    specs: Vec<Option<RequestSpec>>,
    /// Closed-loop state: requests not yet bound to a client, plus the
    /// per-client think time.
    closed_loop: Option<(VecDeque<RequestSpec>, SimDuration)>,
}

impl Arrivals {
    pub(crate) fn offline(requests: Vec<RequestSpec>) -> Self {
        let heap = (0..requests.len()).map(|i| Reverse((0, i))).collect();
        Arrivals {
            heap,
            specs: requests.into_iter().map(Some).collect(),
            closed_loop: None,
        }
    }

    pub(crate) fn timed(requests: Vec<RequestSpec>, times: Vec<SimTime>) -> Self {
        assert_eq!(requests.len(), times.len(), "one arrival time per request");
        let heap = times
            .iter()
            .enumerate()
            .map(|(i, t)| Reverse((t.as_micros(), i)))
            .collect();
        Arrivals {
            heap,
            specs: requests.into_iter().map(Some).collect(),
            closed_loop: None,
        }
    }

    pub(crate) fn closed_loop(requests: Vec<RequestSpec>, clients: ClosedLoopClients) -> Self {
        let mut pending: VecDeque<RequestSpec> = requests.into();
        let first_wave: Vec<RequestSpec> = (0..clients.n_clients)
            .filter_map(|_| pending.pop_front())
            .collect();
        let mut arrivals = Arrivals {
            heap: BinaryHeap::new(),
            specs: Vec::new(),
            closed_loop: Some((pending, clients.think_time)),
        };
        for spec in first_wave {
            arrivals.push(SimTime::ZERO, spec);
        }
        arrivals
    }

    fn push(&mut self, at: SimTime, spec: RequestSpec) {
        let idx = self.specs.len();
        self.specs.push(Some(spec));
        self.heap.push(Reverse((at.as_micros(), idx)));
    }

    fn next_time(&self) -> Option<SimTime> {
        self.heap
            .peek()
            .map(|Reverse((t, _))| SimTime::from_micros(*t))
    }

    fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, RequestSpec)> {
        match self.heap.peek() {
            Some(Reverse((t, _))) if *t <= now.as_micros() => {
                let Reverse((t, idx)) = self.heap.pop().expect("peeked");
                let spec = self.specs[idx].take().expect("arrival consumed twice");
                Some((SimTime::from_micros(t), spec))
            }
            _ => None,
        }
    }

    /// Closed-loop hook: a finished request frees its client, which submits
    /// the next pending request after the think time.
    fn on_finish(&mut self, now: SimTime) {
        if let Some((pending, think)) = &mut self.closed_loop {
            let think = *think;
            if let Some(spec) = pending.pop_front() {
                self.push(now + think, spec);
            }
        }
    }

    fn remaining(&self) -> usize {
        self.heap.len()
            + self
                .closed_loop
                .as_ref()
                .map_or(0, |(pending, _)| pending.len())
    }

    /// Ids and sizes of every request this schedule will ever deliver
    /// (used for upfront validation).
    fn iter_specs(&self) -> impl Iterator<Item = &RequestSpec> {
        self.specs
            .iter()
            .flatten()
            .chain(self.closed_loop.iter().flat_map(|(p, _)| p.iter()))
    }
}

/// The engine's prefix-reuse store: the legacy whole-prefix-id LRU, or —
/// when [`crate::PrefixCacheConfig::block_tokens`] is set — the
/// block-granular chained-hash store, whose matches are block *runs*
/// (crossing conversations via shared system prompts), whose eviction is
/// suffix-granular, and which emits [`KvEvent`]s for the global router
/// index. Both charge their occupancy against the same KV pool under
/// [`PREFIX_SENTINEL`].
#[derive(Debug)]
enum PrefixStore {
    Whole(PrefixCache),
    Blocks(BlockPrefixCache),
}

impl PrefixStore {
    fn used_tokens(&self) -> u64 {
        match self {
            PrefixStore::Whole(cache) => cache.used_tokens(),
            PrefixStore::Blocks(store) => store.used_tokens(),
        }
    }

    fn evict_down_to(&mut self, target_tokens: u64) -> u64 {
        match self {
            PrefixStore::Whole(cache) => cache.evict_down_to(target_tokens),
            PrefixStore::Blocks(store) => store.evict_down_to(target_tokens),
        }
    }

    fn stats(&self) -> PrefixCacheStats {
        match self {
            PrefixStore::Whole(cache) => cache.stats(),
            PrefixStore::Blocks(store) => store.stats(),
        }
    }

    /// Cached overlap a request would enjoy right now, *without* touching
    /// recency or statistics — the router's probe and the slack purge's
    /// feasibility estimate.
    fn peek_match(&self, spec: &RequestSpec) -> u64 {
        match self {
            PrefixStore::Whole(cache) => match spec.prefix_id {
                Some(id) => cache
                    .peek(id.raw())
                    .map_or(0, |cached| cached.min(u64::from(spec.prefix_len))),
                None => 0,
            },
            PrefixStore::Blocks(store) => {
                store.peek_run(spec.matchable_blocks(store.block_tokens() as u32))
            }
        }
    }

    /// Consumes an admission-time hit: the cached overlap in tokens,
    /// refreshing recency and counting lookup/hit statistics.
    fn lookup_match(&mut self, spec: &RequestSpec) -> u64 {
        match self {
            PrefixStore::Whole(cache) => match spec.prefix_id {
                Some(id) => cache.lookup(id.raw(), u64::from(spec.prefix_len)),
                None => 0,
            },
            PrefixStore::Blocks(store) => {
                let block_tokens = store.block_tokens() as u32;
                store.lookup_run(spec.matchable_blocks(block_tokens))
            }
        }
    }
}

/// The serving engine. Construct via [`crate::Simulation`].
pub(crate) struct Engine {
    perf: PerfModel,
    capacity: u64,
    kv: Box<dyn KvCacheManager>,
    scheduler: Box<dyn Scheduler>,
    needs_oracle: bool,
    config: SimConfig,
    /// Id stamped into emitted trace events (clusters assign one per
    /// spawned member; standalone runs stay at 0).
    instance: u32,

    now: SimTime,
    arrivals: Arrivals,
    queue: VecDeque<Pending>,
    running: Vec<Live>,
    /// Backing store for every ingested request's spec; `Pending`/`Live`
    /// entries carry slab handles.
    specs: Slab<RequestSpec>,
    /// Simulated prefix store (disabled unless configured). Its occupancy
    /// is mirrored into `kv` under [`PREFIX_SENTINEL`].
    prefix: Option<PrefixStore>,
    /// `(time, event)` log of block store/evict events, appended by the
    /// per-tick flush and drained by cluster drivers into the global
    /// [`pf_kvcache::KvIndexer`]. Only populated after
    /// [`Engine::enable_kv_event_log`] — a standalone run has no consumer
    /// and must not accumulate an unbounded log.
    kv_events: Vec<(SimTime, KvEvent)>,
    log_kv_events: bool,
    /// Reusable drain buffer for the per-tick event flush.
    scratch_kv_events: Vec<KvEvent>,

    /// Slack-ranking cache: set whenever the queue gains an entry whose
    /// rank is not known to respect the current order (arrival at the
    /// back, preemption at the front). Pops and purges preserve order and
    /// leave it clear.
    queue_order_dirty: bool,
    /// Earliest future instant at which a queued entry crosses the aging
    /// cap and changes rank group — the only time-driven reorder. While
    /// `now` is before this and the order is clean, the ranked queue is
    /// reused as-is.
    next_aging_at: Option<SimTime>,
    /// Bumped on every queue mutation; keys the slack-pressure cache.
    queue_epoch: u64,
    /// `(now_micros, queue_epoch) → pressure` memo for the router probes,
    /// which ask every candidate instance per routed request.
    pressure_cache: Cell<(u64, u64, f64)>,

    // Reusable per-tick buffers: the steady-state loop builds scheduler
    // views and estimator batches in place instead of allocating.
    scratch_running: Vec<RunningRequest>,
    scratch_queue: Vec<QueuedRequest>,
    scratch_entries: Vec<BatchEntry>,
    scratch_ids: Vec<u64>,

    decode_steps: u64,
    prefill_steps: u64,
    evictions: u64,
    timed_out: usize,
    /// Queued requests carrying their *own* deadline, maintained across
    /// every queue mutation — the purge runs only while this is non-zero
    /// or a deployment-wide default exists, so a trace with one deadlined
    /// request pays the per-tick scan only while that request is pending.
    queued_deadlines: usize,
    outcomes: Vec<RequestOutcome>,

    output_len_sum: u64,
    output_len_count: u64,
    consumed_weighted_sum: f64,
    weighted_time: f64,
    future_required_sum: f64,
    future_required_samples: u64,
    peak_consumed_frac: f64,
    consumed_series: StepSeries,
    future_required_series: StepSeries,
    queue_series: StepSeries,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("running", &self.running.len())
            .field("queued", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl Engine {
    pub(crate) fn new(config: SimConfig, arrivals: Arrivals) -> Self {
        let perf = config.perf_model();
        let capacity = config.capacity_tokens();
        let kv = config.build_kv_manager();
        let mut scheduler = config.scheduler.build(config.seed);
        for &len in &config.history_warmup {
            scheduler.on_request_finished(len);
        }
        let needs_oracle = config.scheduler.needs_oracle();
        // Seed the router-facing mean-output estimate from the warmup
        // history, mirroring a service whose statistics are already warm.
        let output_len_sum: u64 = config.history_warmup.iter().map(|&l| u64::from(l)).sum();
        let output_len_count = config.history_warmup.len() as u64;
        let prefix = config.prefix_cache.map(|spec| {
            let budget = spec.budget_tokens(capacity);
            match spec.block_tokens {
                Some(block_tokens) => {
                    PrefixStore::Blocks(BlockPrefixCache::new(budget, block_tokens))
                }
                None => PrefixStore::Whole(PrefixCache::new(budget)),
            }
        });
        Engine {
            perf,
            capacity,
            kv,
            scheduler,
            needs_oracle,
            config,
            instance: 0,
            now: SimTime::ZERO,
            arrivals,
            queue: VecDeque::new(),
            running: Vec::new(),
            specs: Slab::new(),
            prefix,
            kv_events: Vec::new(),
            log_kv_events: false,
            scratch_kv_events: Vec::new(),
            queue_order_dirty: false,
            next_aging_at: None,
            queue_epoch: 0,
            pressure_cache: Cell::new((u64::MAX, u64::MAX, 0.0)),
            scratch_running: Vec::new(),
            scratch_queue: Vec::new(),
            scratch_entries: Vec::new(),
            scratch_ids: Vec::new(),
            output_len_sum,
            output_len_count,
            decode_steps: 0,
            prefill_steps: 0,
            evictions: 0,
            timed_out: 0,
            queued_deadlines: 0,
            outcomes: Vec::new(),
            consumed_weighted_sum: 0.0,
            weighted_time: 0.0,
            future_required_sum: 0.0,
            future_required_samples: 0,
            peak_consumed_frac: 0.0,
            consumed_series: StepSeries::new(),
            future_required_series: StepSeries::new(),
            queue_series: StepSeries::new(),
        }
    }

    pub(crate) fn run(self) -> Result<SimReport, SimError> {
        self.run_traced(None)
    }

    /// Runs to completion with an optional [`TraceSink`] receiving every
    /// lifecycle event. With `None` this is exactly [`Engine::run`]: the
    /// emission sites reduce to a branch on an empty option, so the
    /// untraced path stays allocation-free and bit-identical.
    pub(crate) fn run_traced(
        mut self,
        sink: Option<&mut dyn TraceSink>,
    ) -> Result<SimReport, SimError> {
        let mut sink = sink;
        self.validate()?;
        if let BatchingMode::Static { max_batch } = self.config.batching {
            return self.run_static(max_batch, &mut sink);
        }
        loop {
            match self.tick_traced(&mut sink)? {
                Tick::Worked => {}
                Tick::Sleep(t) => self.now = t,
                Tick::Blocked => {
                    return Err(SimError::Stalled {
                        queued: self.queue.len(),
                        at: self.now,
                    });
                }
                Tick::Drained | Tick::HorizonReached => break,
            }
        }
        Ok(self.finish_report())
    }

    /// Executes at most one engine action (admission-plus-prefill or one
    /// decode step) with an optional trace sink (see [`Engine::run_traced`]
    /// for the zero-cost contract). This is the co-simulation entry point
    /// used by [`crate::cluster`], [`crate::elastic`] and [`crate::disagg`]
    /// to interleave several engines on one global clock. Any KV-block
    /// events the tick produced are flushed afterwards — to the sink as
    /// [`TraceEvent::KvStored`]/[`TraceEvent::KvRemoved`], and to the
    /// driver-facing log when enabled.
    pub(crate) fn tick_traced(
        &mut self,
        sink: &mut Option<&mut dyn TraceSink>,
    ) -> Result<Tick, SimError> {
        let tick = self.tick_inner(sink)?;
        self.flush_kv_events(sink);
        Ok(tick)
    }

    fn tick_inner(&mut self, sink: &mut Option<&mut dyn TraceSink>) -> Result<Tick, SimError> {
        self.ingest_arrivals(sink);
        if self.time_exceeded() {
            return Ok(Tick::HorizonReached);
        }
        if self.try_admission(sink) {
            return Ok(Tick::Worked);
        }
        if !self.running.is_empty() {
            self.step(sink)?;
            return Ok(Tick::Worked);
        }
        // Idle: nothing running, nothing admissible.
        match self.arrivals.next_time() {
            Some(t) if t > self.now => Ok(Tick::Sleep(t)),
            Some(_) => unreachable!("due arrival not ingested"),
            None if !self.queue.is_empty() => Ok(Tick::Blocked),
            None => Ok(Tick::Drained),
        }
    }

    /// Current simulated time of this engine.
    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the idle engine's clock (cluster co-simulation only).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `to` precedes the current time.
    pub(crate) fn advance_to(&mut self, to: SimTime) {
        debug_assert!(to >= self.now, "engine time went backwards");
        self.now = self.now.max(to);
    }

    /// Sets the instance id stamped into emitted trace events (clusters
    /// assign one id per spawned member).
    pub(crate) fn set_instance(&mut self, instance: u32) {
        self.instance = instance;
    }

    /// Starts accumulating the `(time, event)` KV-block event log for a
    /// cluster driver to drain (see [`Engine::drain_kv_events`]). Off by
    /// default so standalone runs never grow an unconsumed log.
    pub(crate) fn enable_kv_event_log(&mut self) {
        self.log_kv_events = true;
    }

    /// Moves the accumulated KV-block events (in emission order, stamped
    /// with the engine clock at flush time) into `out`.
    pub(crate) fn drain_kv_events(&mut self, out: &mut Vec<(SimTime, KvEvent)>) {
        out.append(&mut self.kv_events);
    }

    /// Drains the block store's pending events, mirroring each to the
    /// trace sink and — when enabled — the driver-facing log. No-op for
    /// the whole-prefix store.
    fn flush_kv_events(&mut self, sink: &mut Option<&mut dyn TraceSink>) {
        let Some(PrefixStore::Blocks(store)) = self.prefix.as_mut() else {
            return;
        };
        if store.pending_events() == 0 {
            return;
        }
        self.scratch_kv_events.clear();
        store.drain_events(&mut self.scratch_kv_events);
        let at = self.now;
        let instance = self.instance;
        for &ev in &self.scratch_kv_events {
            fleet::emit(
                sink,
                match ev {
                    KvEvent::Stored { block, .. } => TraceEvent::KvStored {
                        at,
                        instance,
                        block,
                    },
                    KvEvent::Removed { block } => TraceEvent::KvRemoved {
                        at,
                        instance,
                        block,
                    },
                },
            );
            if self.log_kv_events {
                self.kv_events.push((at, ev));
            }
        }
    }

    /// Injects an externally routed request arriving at `at`.
    pub(crate) fn inject(&mut self, at: SimTime, spec: RequestSpec) {
        self.arrivals.push(at, spec);
    }

    /// Requests in flight, waiting, or already routed to this engine but
    /// not yet ingested (the router must see its own recent decisions, or
    /// a burst of arrivals herds onto one instance).
    pub(crate) fn outstanding(&self) -> usize {
        self.running.len() + self.queue.len() + self.arrivals.remaining()
    }

    /// Fraction of KV capacity physically in use right now.
    pub(crate) fn used_frac(&self) -> f64 {
        self.kv.used_tokens() as f64 / self.capacity as f64
    }

    /// Load estimate for routing: the running batch's future required
    /// memory (Eq. 2–4 on ground truth) plus the expected footprint of the
    /// queue (prompt + mean historical output), as a fraction of capacity.
    /// This is the signal the paper's future-work section proposes for
    /// forwarding requests to under-utilized instances.
    pub(crate) fn load_estimate(&self) -> f64 {
        let mean_output = if self.output_len_count == 0 {
            256.0
        } else {
            self.output_len_sum as f64 / self.output_len_count as f64
        };
        let queued_tokens: f64 = self
            .queue
            .iter()
            .map(|p| f64::from(self.specs[p.spec].input_len) + f64::from(p.generated) + mean_output)
            .chain(
                // Routed but not yet ingested arrivals count too.
                self.arrivals
                    .iter_specs()
                    .map(|spec| f64::from(spec.input_len) + mean_output),
            )
            .sum();
        self.true_future_required_frac() + queued_tokens / self.capacity as f64
    }

    /// Runs upfront validation (also used by the cluster driver, which
    /// validates against each member engine's capacity).
    ///
    /// # Panics
    ///
    /// Panics if a prefix cache is enabled and the request id is
    /// `u64::MAX` — that id is reserved for the cache's pool charge, and
    /// letting it through would silently corrupt the KV accounting.
    pub(crate) fn validate_spec(&self, spec: &RequestSpec) -> Result<(), SimError> {
        assert!(
            self.prefix.is_none() || spec.id.raw() != PREFIX_SENTINEL,
            "request id u64::MAX is reserved for the prefix cache"
        );
        let contiguous = matches!(self.config.kv_layout, crate::config::KvLayout::Contiguous);
        let static_mode = matches!(self.config.batching, BatchingMode::Static { .. });
        let needed = if contiguous || static_mode {
            u64::from(spec.input_len) + u64::from(spec.max_new_tokens)
        } else {
            u64::from(spec.true_total_len())
        };
        if needed > self.capacity {
            return Err(SimError::RequestTooLarge {
                id: spec.id.raw(),
                needed,
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    /// Completed-request outcomes so far. The elastic cluster reads these
    /// incrementally (by index) to feed observed output lengths and
    /// TTFT/TPOT into the autoscaling planner as requests finish.
    pub(crate) fn outcomes(&self) -> &[RequestOutcome] {
        &self.outcomes
    }

    /// Consumes the engine and produces its report (cluster co-simulation).
    pub(crate) fn into_report(self) -> SimReport {
        self.finish_report()
    }

    pub(crate) fn validate(&self) -> Result<(), SimError> {
        if self.capacity == 0 {
            return Err(SimError::NoKvCapacity { capacity: 0 });
        }
        let specs: Vec<RequestSpec> = self.arrivals.iter_specs().copied().collect();
        for spec in &specs {
            self.validate_spec(spec)?;
        }
        Ok(())
    }

    /// Cached prefix overlap a request would enjoy on this instance right
    /// now, *without* touching the cache — the KV-aware router's probe
    /// (only the instance that actually serves the request refreshes the
    /// entry).
    pub(crate) fn cached_prefix_tokens(&self, spec: &RequestSpec) -> u64 {
        self.prefix
            .as_ref()
            .map_or(0, |store| store.peek_match(spec))
    }

    /// Re-charges the pool's sentinel allocation to the cache's current
    /// occupancy, shrinking the cache when the pool cannot hold it (block
    /// rounding can make a paged pool stricter than the token budget).
    fn sync_prefix_charge(&mut self) {
        let Some(cache) = self.prefix.as_mut() else {
            return;
        };
        self.kv.release(PREFIX_SENTINEL);
        loop {
            let occ = cache.used_tokens();
            if occ == 0 {
                return;
            }
            if self.kv.allocate(PREFIX_SENTINEL, occ, occ).is_ok() {
                return;
            }
            let free = self.kv.available_tokens();
            cache.evict_down_to(free.min(occ - 1));
        }
    }

    /// Evicts cached prefixes (LRU first) until the pool can admit a
    /// request of `tokens` prompt / `reserve_total` reservation. Returns
    /// whether admission is now possible. Cached prefixes are always
    /// reclaimed before live work is refused or evicted: a cache entry is
    /// a bet on future savings, a request is work already accepted.
    fn reclaim_prefix_for_admission(&mut self, tokens: u64, reserve_total: u64) -> bool {
        loop {
            if self.kv.can_admit(tokens, reserve_total) {
                return true;
            }
            let Some(cache) = self.prefix.as_mut() else {
                return false;
            };
            let occ = cache.used_tokens();
            if occ == 0 {
                return false;
            }
            // One LRU entry at a time, then re-check.
            cache.evict_down_to(occ - 1);
            self.sync_prefix_charge();
        }
    }

    /// Evicts exactly one LRU prefix entry, returning whether anything
    /// was reclaimed (used when a scheduler whose admission gate counts
    /// used memory refuses an empty batch).
    fn reclaim_prefix_one(&mut self) -> bool {
        let Some(cache) = self.prefix.as_mut() else {
            return false;
        };
        let occ = cache.used_tokens();
        if occ == 0 {
            return false;
        }
        cache.evict_down_to(occ - 1);
        self.sync_prefix_charge();
        true
    }

    /// Frees at least `needed` cached-prefix tokens if the cache holds
    /// any, returning whether anything was reclaimed (decode-step memory
    /// pressure).
    fn reclaim_prefix_tokens(&mut self, needed: u64) -> bool {
        let Some(cache) = self.prefix.as_mut() else {
            return false;
        };
        let occ = cache.used_tokens();
        if occ == 0 {
            return false;
        }
        cache.evict_down_to(occ.saturating_sub(needed));
        self.sync_prefix_charge();
        true
    }

    /// Consumes the admission-time prefix hit for `pending`: the cached
    /// overlap in tokens, refreshing the entry's recency and counting
    /// lookup/hit statistics.
    fn prefix_lookup(&mut self, pending: &Pending) -> u64 {
        let spec = &self.specs[pending.spec];
        match self.prefix.as_mut() {
            Some(store) => store.lookup_match(spec),
            None => 0,
        }
    }

    /// Retains a finished request's conversation KV in the prefix store —
    /// under its declared prefix id (whole-prefix store) or as a chain of
    /// fixed-size blocks (block store) — so the session's next turn can
    /// skip re-prefilling it.
    fn cache_finished_prefix(&mut self, spec: &RequestSpec, generated: u32) {
        let available = self.kv.available_tokens();
        let Some(store) = self.prefix.as_mut() else {
            return;
        };
        let before = store.used_tokens();
        match store {
            PrefixStore::Whole(cache) => {
                let Some(id) = spec.prefix_id else {
                    return;
                };
                let conversation = u64::from(spec.input_len) + u64::from(generated);
                // A conversation the pool cannot charge even after
                // evicting every other entry would thrash: the insert
                // flushes the LRU, then `sync_prefix_charge` evicts the
                // new entry itself. Skip it — the cache keeps its
                // still-useful entries instead.
                if conversation > available + before {
                    return;
                }
                cache.insert(id.raw(), conversation);
            }
            PrefixStore::Blocks(store) => {
                if spec.prefix_id.is_none() && spec.system_prompt_id.is_none() {
                    return;
                }
                let block_tokens = store.block_tokens() as u32;
                store.insert_chain(spec.storable_blocks(block_tokens, generated));
            }
        }
        let changed = store.used_tokens() != before;
        if changed {
            self.sync_prefix_charge();
        }
    }

    fn time_exceeded(&self) -> bool {
        match self.config.max_sim_time {
            Some(limit) => self.now.saturating_since(SimTime::ZERO) >= limit,
            None => false,
        }
    }

    fn ingest_arrivals(&mut self, sink: &mut Option<&mut dyn TraceSink>) {
        while let Some((at, spec)) = self.arrivals.pop_due(self.now) {
            if spec.deadline.is_some() {
                self.queued_deadlines += 1;
            }
            fleet::emit(
                sink,
                TraceEvent::Enqueued {
                    at,
                    instance: self.instance,
                    request: spec.id.raw(),
                },
            );
            let spec = self.specs.insert(spec);
            self.queue.push_back(Pending {
                spec,
                generated: 0,
                timing: RequestTiming::new(at),
                evictions: 0,
                swapped: false,
            });
            self.queue_order_dirty = true;
            self.queue_epoch += 1;
        }
        self.purge_timed_out(sink);
    }

    /// Pops the queue front, keeping the pending-deadline count exact.
    /// Removing the front preserves the ranked order, so only the epoch
    /// advances.
    fn pop_queue_front(&mut self) -> Option<Pending> {
        let pending = self.queue.pop_front()?;
        self.queue_epoch += 1;
        if self.specs[pending.spec].deadline.is_some() {
            self.queued_deadlines -= 1;
        }
        Some(pending)
    }

    /// Cancels queued requests whose deadline has expired: the queue slot
    /// is reclaimed and the request counts as timed out. This covers both
    /// never-started arrivals and preempted requests waiting for
    /// readmission — a preempted request past its deadline must not be
    /// silently re-served as if it had made it (the client gave up at the
    /// deadline either way), and a queued entry holds no KV, so
    /// cancellation frees exactly the queue slot. Under
    /// [`QueueOrder::LeastSlackFirst`] a request whose remaining slack is
    /// below the minimum feasible prefill time is dropped *early*: even
    /// admitted alone right now its (re-)prefill would land past the
    /// deadline, so admitting it would burn a prefill pass and KV on a
    /// guaranteed miss. Skipped entirely while no pending request can
    /// time out.
    fn purge_timed_out(&mut self, sink: &mut Option<&mut dyn TraceSink>) {
        let default_deadline = self.config.request_deadline;
        if default_deadline.is_none() && self.queued_deadlines == 0 {
            return;
        }
        let now = self.now;
        let slack_aware = self.config.queue_order.is_slack_aware();
        let perf = self.perf;
        let prefix = &self.prefix;
        let specs = &self.specs;
        let instance = self.instance;
        let mut expired_own_deadline = 0usize;
        let mut removed: Vec<u32> = Vec::new();
        self.queue.retain(|p| {
            let spec = &specs[p.spec];
            let Some(deadline) = spec.deadline.or(default_deadline) else {
                return true;
            };
            let waited = now.saturating_since(p.timing.arrival());
            // The fastest possible path to a (first or resumed) token: a
            // dedicated prefill pass over everything this admission must
            // process, minus the current prefix-cache overlap (admission
            // skips cached tokens — a near-fully-cached prompt is feasible
            // far later than its raw length suggests). Swap restores are
            // transfer-bound, not compute-bound; never early-drop those.
            let min_feasible = if slack_aware && !p.swapped {
                let tokens = u64::from(spec.input_len) + u64::from(p.generated);
                let cached = prefix.as_ref().map_or(0, |store| store.peek_match(spec));
                perf.prefill_step(tokens.saturating_sub(cached).max(1))
            } else {
                SimDuration::ZERO
            };
            if waited + min_feasible >= deadline {
                removed.push(p.spec);
                if spec.deadline.is_some() {
                    expired_own_deadline += 1;
                }
                // Past the deadline outright = guillotine timeout; still
                // inside it = slack-aware early drop.
                fleet::emit(
                    sink,
                    if waited >= deadline {
                        TraceEvent::TimedOut {
                            at: now,
                            instance,
                            request: spec.id.raw(),
                        }
                    } else {
                        TraceEvent::SlackDropped {
                            at: now,
                            instance,
                            request: spec.id.raw(),
                        }
                    },
                );
                false
            } else {
                true
            }
        });
        let expired = removed.len();
        if expired > 0 {
            // Removals keep the surviving order intact — epoch only.
            self.queue_epoch += 1;
        }
        for idx in removed {
            self.specs.remove(idx);
        }
        self.timed_out += expired;
        self.queued_deadlines -= expired_own_deadline;
        // A cancelled request still frees its closed-loop client: the
        // client gave up on this response and submits its next request
        // after the think time (no-op for open-loop schedules).
        for _ in 0..expired {
            self.arrivals.on_finish(now);
        }
    }

    /// Reorders the queue for [`QueueOrder::LeastSlackFirst`] (see the
    /// module docs for the ranking): preempted work first, then aged
    /// entries oldest-first, then ascending remaining slack, then
    /// deadline-less entries oldest-first. The sort is stable, so equal
    /// keys keep arrival order and the reorder is deterministic.
    ///
    /// The sort itself runs only when it can change anything. A ranked
    /// queue stays ranked as time passes: within the slack group every
    /// key shifts by the same elapsed time (saturating at zero, which
    /// collapses neighbours into ties a stable sort leaves in place), and
    /// the other groups order by time-invariant arrival. The only inputs
    /// that can disturb the order are queue mutations that insert at a
    /// rank-unknown position (`queue_order_dirty`) and an entry crossing
    /// the aging cap into the starvation group (`next_aging_at`). Short of
    /// those, a full stable re-sort is the identity and is skipped.
    fn rank_queue_by_slack(&mut self, aging_cap: SimDuration) {
        if self.queue.len() < 2 {
            return;
        }
        let now = self.now;
        let aging_due = self.next_aging_at.is_some_and(|at| now >= at);
        if !self.queue_order_dirty && !aging_due {
            return;
        }
        let default_deadline = self.config.request_deadline;
        let specs = &self.specs;
        self.queue.make_contiguous().sort_by_key(|p| {
            let arrival = p.timing.arrival();
            if p.generated > 0 || p.swapped {
                return (0u8, arrival.as_micros());
            }
            fleet::slack_rank_key(
                now,
                arrival,
                specs[p.spec].deadline.or(default_deadline),
                aging_cap,
            )
        });
        self.queue_order_dirty = false;
        // Next time-driven reorder: the earliest not-yet-aged entry that
        // can still change group (preempted entries always rank ahead of
        // the aged group and never migrate).
        self.next_aging_at = self
            .queue
            .iter()
            .filter(|p| !(p.generated > 0 || p.swapped))
            .map(|p| p.timing.arrival() + aging_cap)
            .filter(|&ages_at| ages_at > now)
            .min();
    }

    /// Router-facing urgency signal: the sum over queued requests with an
    /// effective deadline of `1 / (1 + slack_secs)`. Zero for
    /// deadline-free queues; grows as deadlines accumulate or tighten.
    /// [`crate::cluster::RouterPolicy::PrefixAffinity`]'s load tie-break
    /// adds this (weighted by [`crate::fleet::SLACK_PRESSURE_WEIGHT`]) so
    /// urgent queues receive less new traffic and get room to drain.
    pub(crate) fn queue_slack_pressure(&self) -> f64 {
        let default_deadline = self.config.request_deadline;
        if default_deadline.is_none() && self.queued_deadlines == 0 {
            return 0.0;
        }
        // Routers probe every candidate instance per request; between
        // probes neither the clock nor the queue of an idle candidate
        // moves, so the sum is memoized on `(now, queue_epoch)`.
        let key = (self.now.as_micros(), self.queue_epoch);
        let (at, epoch, cached) = self.pressure_cache.get();
        if (at, epoch) == key {
            return cached;
        }
        let now = self.now;
        let pressure = self
            .queue
            .iter()
            .filter_map(|p| {
                let deadline = self.specs[p.spec].deadline.or(default_deadline)?;
                Some(fleet::slack_urgency(now, p.timing.arrival(), deadline))
            })
            .sum();
        self.pressure_cache.set((key.0, key.1, pressure));
        pressure
    }

    fn memory_state(&self) -> MemoryState {
        MemoryState {
            capacity_tokens: self.capacity,
            used_tokens: self.kv.used_tokens(),
        }
    }

    /// Rebuilds `scratch_running` with the scheduler's view of the
    /// running batch.
    fn fill_running_views(&mut self) {
        self.scratch_running.clear();
        for l in &self.running {
            let spec = &self.specs[l.spec];
            debug_assert!(
                spec.true_output_len >= l.generated,
                "request {} generated past its true output length",
                spec.id.raw()
            );
            self.scratch_running.push(RunningRequest {
                id: spec.id.raw(),
                input_len: spec.input_len,
                generated: l.generated,
                max_new_tokens: spec.max_new_tokens,
                oracle_remaining: self
                    .needs_oracle
                    .then(|| spec.true_output_len.saturating_sub(l.generated)),
            });
        }
    }

    /// Admits queue-front requests per the scheduler's plan. In
    /// [`PrefillMode::WholePrompt`] an admission runs the prefill step
    /// immediately (advancing the clock); in chunked mode prompts are
    /// processed incrementally by subsequent steps. The configured
    /// [`QueueOrder`] decides which requests sit at the front (under
    /// [`QueueOrder::LeastSlackFirst`], the ones closest to their
    /// deadline). Returns whether any request was admitted.
    fn try_admission(&mut self, sink: &mut Option<&mut dyn TraceSink>) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        if let QueueOrder::LeastSlackFirst { aging_cap } = self.config.queue_order {
            self.rank_queue_by_slack(aging_cap);
        }
        // Handle discipline: every slab slot is owned by exactly one queue
        // or batch entry.
        debug_assert_eq!(self.specs.len(), self.queue.len() + self.running.len());
        let mut admitted_total = 0usize;
        loop {
            let window = PLAN_WINDOW.min(self.queue.len());
            if window == 0 {
                break;
            }
            self.scratch_queue.clear();
            for p in self.queue.iter().take(window) {
                let spec = &self.specs[p.spec];
                debug_assert!(
                    spec.true_output_len >= p.generated,
                    "request {} generated past its true output length",
                    spec.id.raw()
                );
                self.scratch_queue.push(QueuedRequest {
                    id: spec.id.raw(),
                    input_len: spec.input_len,
                    generated: p.generated,
                    max_new_tokens: spec.max_new_tokens,
                    oracle_remaining: self
                        .needs_oracle
                        .then(|| spec.true_output_len.saturating_sub(p.generated)),
                });
            }
            self.fill_running_views();
            let memory = self.memory_state();
            let plan = self
                .scheduler
                .plan_admission(&self.scratch_running, &self.scratch_queue, &memory)
                .min(window);
            if plan == 0 {
                // Schedulers gate admission on used memory, which counts
                // cached prefixes. With an empty batch, a refusal means
                // the *cache* is what blocks the queue — give entries
                // back until the scheduler admits or the cache is empty.
                // (Refusal with a live batch is ordinary backpressure and
                // resolves as requests finish; draining the cache for it
                // would forfeit hits for no admission gain.)
                if self.running.is_empty() && self.reclaim_prefix_one() {
                    continue;
                }
                break;
            }
            let mut admitted_now = 0usize;
            for _ in 0..plan {
                let pending = self.queue.front().expect("plan within queue bounds");
                let spec = &self.specs[pending.spec];
                // Pre-pay the prompt plus the first output token's slot.
                let needed = u64::from(spec.input_len) + u64::from(pending.generated) + 1;
                let reserve_total = u64::from(spec.input_len) + u64::from(spec.max_new_tokens);
                let req = spec.id.raw();
                if self.kv.allocate(req, needed, reserve_total).is_err() {
                    // Reclaim cached prefixes before refusing admission:
                    // request KV outranks speculative cache entries.
                    if !self.reclaim_prefix_for_admission(needed, reserve_total)
                        || self.kv.allocate(req, needed, reserve_total).is_err()
                    {
                        break;
                    }
                }
                let pending = self.pop_queue_front().expect("front exists");
                // Swap-in restores the full KV wholesale — no recompute to
                // skip; everything else (fresh admissions *and* recompute
                // re-prefills) can reuse cached prefix tokens.
                let cached = if pending.swapped {
                    0
                } else {
                    self.prefix_lookup(&pending)
                };
                let prefill_tokens =
                    u64::from(self.specs[pending.spec].input_len) + u64::from(pending.generated);
                fleet::emit(
                    sink,
                    TraceEvent::Admitted {
                        at: self.now,
                        instance: self.instance,
                        request: req,
                    },
                );
                fleet::emit(
                    sink,
                    TraceEvent::PrefillStart {
                        at: self.now,
                        instance: self.instance,
                        request: req,
                    },
                );
                self.running.push(Live {
                    spec: pending.spec,
                    generated: pending.generated,
                    timing: pending.timing,
                    evictions: pending.evictions,
                    prefill_remaining: match self.config.prefill {
                        PrefillMode::WholePrompt => 0,
                        // Swap-in restores the KV state wholesale; it never
                        // goes through chunked prompt processing.
                        PrefillMode::Chunked { .. } if pending.swapped => 0,
                        // Even a full-prefix hit computes at least the last
                        // prompt position.
                        PrefillMode::Chunked { .. } => prefill_tokens.saturating_sub(cached).max(1),
                    },
                    first_token_pending: true,
                    swapped_in: pending.swapped,
                    cached_prefix: cached,
                });
                admitted_now += 1;
            }
            admitted_total += admitted_now;
            // Whole-prompt mode prefills each admission round immediately,
            // so the next planning round sees the post-prefill state (the
            // state the schedulers' future-memory entries model).
            if admitted_now > 0 && matches!(self.config.prefill, PrefillMode::WholePrompt) {
                self.prefill_step(admitted_now, sink);
            }
            if admitted_now < plan || plan < window {
                break;
            }
        }
        admitted_total > 0
    }

    /// Dedicated prefill step over the `admitted` most recent batch entries
    /// (whole-prompt mode). Every admitted request emits its first token at
    /// the end of the step.
    fn prefill_step(&mut self, admitted: usize, sink: &mut Option<&mut dyn TraceSink>) {
        let start = self.running.len() - admitted;
        let mut prompt_tokens = 0u64;
        let mut swapped_tokens = 0u64;
        for live in &self.running[start..] {
            let tokens = u64::from(self.specs[live.spec].input_len) + u64::from(live.generated);
            if live.swapped_in {
                swapped_tokens += tokens;
            } else {
                // Prefix-cache hits shrink the prefill to the uncached
                // suffix (at least one position: the final prompt token is
                // always computed).
                prompt_tokens += tokens.saturating_sub(live.cached_prefix).max(1);
            }
        }
        let mut duration = self.perf.prefill_step(prompt_tokens);
        if let EvictionMode::Swap { pcie_gbps } = self.config.eviction {
            duration += self.perf.swap_transfer(swapped_tokens, pcie_gbps);
        }
        self.now += duration;
        self.prefill_steps += 1;
        self.record_step_metrics(duration, sink);
        let instance = self.instance;
        let mut i = start;
        while i < self.running.len() {
            let live = &mut self.running[i];
            live.first_token_pending = false;
            live.generated += 1;
            let first_ever = live.timing.ttft().is_none();
            live.timing.record_token(self.now);
            let request = self.specs[live.spec].id.raw();
            fleet::emit(
                sink,
                TraceEvent::PrefillEnd {
                    at: self.now,
                    instance,
                    request,
                },
            );
            if first_ever {
                fleet::emit(
                    sink,
                    TraceEvent::FirstToken {
                        at: self.now,
                        instance,
                        request,
                    },
                );
            }
            if self.running[i].generated >= self.specs[self.running[i].spec].true_output_len {
                let live = self.running.remove(i);
                self.finish(live, sink);
            } else {
                i += 1;
            }
        }
    }

    /// One decode (or mixed chunked-prefill) step.
    fn step(&mut self, sink: &mut Option<&mut dyn TraceSink>) -> Result<(), SimError> {
        // Chunked prefill progress for this step.
        let mut chunk_tokens = 0u64;
        if let PrefillMode::Chunked {
            chunk_tokens: budget,
        } = self.config.prefill
        {
            let mut left = budget;
            for live in &mut self.running {
                if left == 0 {
                    break;
                }
                if live.prefill_remaining > 0 {
                    let take = live.prefill_remaining.min(left);
                    live.prefill_remaining -= take;
                    left -= take;
                    chunk_tokens += take;
                }
            }
        }
        // Make room for one new token per decoding request: reclaim cached
        // prefixes first, then evict the most recently admitted request
        // while short (recompute preemption).
        loop {
            self.scratch_ids.clear();
            for l in &self.running {
                if l.prefill_remaining == 0 && !l.first_token_pending {
                    self.scratch_ids.push(self.specs[l.spec].id.raw());
                }
            }
            if self.scratch_ids.is_empty() {
                break;
            }
            let at = self.now;
            let shortfall = self
                .kv
                .extension_shortfall(&self.scratch_ids)
                .map_err(|error| SimError::KvCache { error, at })?;
            if shortfall == 0 {
                break;
            }
            if self.reclaim_prefix_tokens(shortfall) {
                continue;
            }
            if self.running.len() <= 1 {
                // Cannot happen for validated workloads: a lone request
                // always fits its own growth.
                return Err(SimError::Stalled {
                    queued: self.queue.len(),
                    at: self.now,
                });
            }
            self.evict_most_recent(sink);
        }
        // Grow every decoding request by one token.
        let mut emitters = 0u64;
        let at = self.now;
        for live in &self.running {
            if live.prefill_remaining == 0 {
                emitters += 1;
                if !live.first_token_pending {
                    self.kv
                        .extend(self.specs[live.spec].id.raw(), 1)
                        .map_err(|error| SimError::KvCache { error, at })?;
                }
            }
        }
        // Idle cached prefixes occupy memory but no running request
        // attends to them: they must not be billed as attention KV in the
        // step's bandwidth term.
        let kv_tokens = self
            .kv
            .logical_tokens()
            .saturating_sub(self.prefix.as_ref().map_or(0, PrefixStore::used_tokens));
        let duration = if chunk_tokens > 0 {
            self.perf.mixed_step(chunk_tokens, emitters, kv_tokens)
        } else {
            self.perf.decode_step(emitters, kv_tokens)
        };
        self.now += duration;
        if emitters > 0 {
            self.decode_steps += 1;
            // One coalesced decode event per batch tick, not one per
            // token: the batch size carries the per-request fan-out.
            fleet::emit(
                sink,
                TraceEvent::DecodeStep {
                    at: self.now,
                    instance: self.instance,
                    batch: emitters as u32,
                },
            );
        }
        self.record_step_metrics(duration, sink);
        let instance = self.instance;
        // Emit tokens; finish completed requests.
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].prefill_remaining == 0 {
                let live = &mut self.running[i];
                let was_pending = live.first_token_pending;
                live.first_token_pending = false;
                live.generated += 1;
                let first_ever = live.timing.ttft().is_none();
                live.timing.record_token(self.now);
                let request = self.specs[live.spec].id.raw();
                // A chunked prefill that just drained emits its first
                // (or post-preemption resumed) token on this step.
                if was_pending {
                    fleet::emit(
                        sink,
                        TraceEvent::PrefillEnd {
                            at: self.now,
                            instance,
                            request,
                        },
                    );
                }
                if first_ever {
                    fleet::emit(
                        sink,
                        TraceEvent::FirstToken {
                            at: self.now,
                            instance,
                            request,
                        },
                    );
                }
                if self.running[i].generated >= self.specs[self.running[i].spec].true_output_len {
                    let live = self.running.remove(i);
                    self.finish(live, sink);
                    continue;
                }
            }
            i += 1;
        }
        Ok(())
    }

    fn evict_most_recent(&mut self, sink: &mut Option<&mut dyn TraceSink>) {
        let live = self.running.pop().expect("eviction from non-empty batch");
        let spec = &self.specs[live.spec];
        let held = u64::from(spec.input_len) + u64::from(live.generated);
        let request = spec.id.raw();
        let has_deadline = spec.deadline.is_some();
        self.kv.release(request);
        self.scheduler.on_eviction(request);
        self.evictions += 1;
        let swapped = match self.config.eviction {
            EvictionMode::Recompute => false,
            EvictionMode::Swap { pcie_gbps } => {
                // The swap-out transfer stalls the engine before the step.
                self.now += self.perf.swap_transfer(held, pcie_gbps);
                true
            }
        };
        fleet::emit(
            sink,
            if swapped {
                TraceEvent::Swapped {
                    at: self.now,
                    instance: self.instance,
                    request,
                }
            } else {
                TraceEvent::Preempted {
                    at: self.now,
                    instance: self.instance,
                    request,
                }
            },
        );
        if has_deadline {
            self.queued_deadlines += 1;
        }
        self.queue.push_front(Pending {
            spec: live.spec,
            generated: live.generated,
            timing: live.timing,
            evictions: live.evictions + 1,
            swapped,
        });
        // A preempted entry enters at the front (rank group 0) — rank
        // unknown relative to other preempted work, so the order is dirty.
        self.queue_order_dirty = true;
        self.queue_epoch += 1;
    }

    fn finish(&mut self, live: Live, sink: &mut Option<&mut dyn TraceSink>) {
        let spec = self.specs.remove(live.spec);
        if sink.is_some() {
            let sla_ok = self.config.sla.evaluate(&live.timing).is_satisfied();
            fleet::emit(
                sink,
                TraceEvent::Finished {
                    at: self.now,
                    instance: self.instance,
                    request: spec.id.raw(),
                    sla_ok,
                },
            );
        }
        self.kv.release(spec.id.raw());
        // Retain the conversation KV as a cached prefix (the release above
        // freed the slots this re-charges under the cache sentinel).
        self.cache_finished_prefix(&spec, live.generated);
        self.scheduler.on_request_finished(live.generated);
        self.output_len_sum += u64::from(live.generated);
        self.output_len_count += 1;
        self.arrivals.on_finish(self.now);
        self.outcomes.push(RequestOutcome {
            id: spec.id.raw(),
            input_len: spec.input_len,
            output_len: live.generated,
            timing: live.timing,
            evictions: live.evictions,
        });
    }

    /// One running request's ground-truth future-memory entry. Requests
    /// whose admission prefill is in flight already hold the pre-paid slot
    /// for their first token.
    fn true_entry(spec: &RequestSpec, l: &Live) -> BatchEntry {
        debug_assert!(
            spec.true_output_len >= l.generated,
            "request {} generated past its true output length",
            spec.id.raw()
        );
        let prepaid = u64::from(l.first_token_pending);
        BatchEntry {
            committed: u64::from(spec.input_len) + u64::from(l.generated) + prepaid,
            remaining: u64::from(spec.true_output_len.saturating_sub(l.generated))
                .saturating_sub(prepaid),
        }
    }

    /// True future required memory of the current batch: Eq. 2–4 evaluated
    /// with ground-truth remaining lengths. Reporting-only — schedulers
    /// never see this. This is the cold (router-probe) entry point; the
    /// per-step metrics path reuses `scratch_entries` instead.
    fn true_future_required_frac(&self) -> f64 {
        let entries: Vec<BatchEntry> = self
            .running
            .iter()
            .map(|l| Self::true_entry(&self.specs[l.spec], l))
            .collect();
        FutureMemoryEstimator::peak_memory(&entries) as f64 / self.capacity as f64
    }

    fn record_step_metrics(
        &mut self,
        duration: SimDuration,
        sink: &mut Option<&mut dyn TraceSink>,
    ) {
        let used_frac = self.kv.used_tokens() as f64 / self.capacity as f64;
        let secs = duration.as_secs_f64();
        self.consumed_weighted_sum += used_frac * secs;
        self.weighted_time += secs;
        self.peak_consumed_frac = self.peak_consumed_frac.max(used_frac);
        // `true_future_required_frac` via the reusable entry buffer: this
        // runs every step, so it must not allocate (M* is
        // permutation-invariant — sorting the scratch in place computes
        // the same value).
        self.scratch_entries.clear();
        for l in &self.running {
            self.scratch_entries
                .push(Self::true_entry(&self.specs[l.spec], l));
        }
        let future_frac = FutureMemoryEstimator::peak_memory_in_place(&mut self.scratch_entries)
            as f64
            / self.capacity as f64;
        self.future_required_sum += future_frac;
        self.future_required_samples += 1;
        if self.config.record_series {
            self.consumed_series.record(self.now, used_frac);
            self.future_required_series.record(self.now, future_frac);
            self.queue_series.record(self.now, self.queue.len() as f64);
        }
        if let Some(s) = sink {
            s.gauge(
                self.now,
                self.instance,
                GaugeKind::QueueDepth,
                self.queue.len() as f64,
            );
            s.gauge(self.now, self.instance, GaugeKind::KvOccupancy, used_frac);
            s.gauge(
                self.now,
                self.instance,
                GaugeKind::BatchSize,
                self.running.len() as f64,
            );
            let pressure = self.queue_slack_pressure();
            s.gauge(self.now, self.instance, GaugeKind::SlackPressure, pressure);
        }
    }

    fn finish_report(self) -> SimReport {
        let makespan = self.now - SimTime::ZERO;
        let requests: Vec<(RequestTiming, u64)> = self
            .outcomes
            .iter()
            .map(|o| (o.timing, u64::from(o.output_len)))
            .collect();
        let goodput = GoodputReport::compute_with_timeouts(
            &self.config.sla,
            &requests,
            makespan,
            self.timed_out,
        );
        let unfinished = self.running.len() + self.queue.len() + self.arrivals.remaining();
        let kv_used_tokens_end = self.kv.used_tokens();
        SimReport {
            scheduler_name: self.scheduler.name().to_string(),
            goodput,
            decode_steps: self.decode_steps,
            prefill_steps: self.prefill_steps,
            evictions: self.evictions,
            completed: self.outcomes.len(),
            unfinished,
            timed_out: self.timed_out,
            makespan,
            capacity_tokens: self.capacity,
            avg_consumed_frac: if self.weighted_time > 0.0 {
                self.consumed_weighted_sum / self.weighted_time
            } else {
                0.0
            },
            avg_future_required_frac: if self.future_required_samples > 0 {
                self.future_required_sum / self.future_required_samples as f64
            } else {
                0.0
            },
            peak_consumed_frac: self.peak_consumed_frac,
            consumed_series: self.consumed_series,
            future_required_series: self.future_required_series,
            queue_series: self.queue_series,
            prefix_stats: self
                .prefix
                .as_ref()
                .map(PrefixStore::stats)
                .unwrap_or_default(),
            prefix_cached_tokens: self.prefix.as_ref().map_or(0, PrefixStore::used_tokens),
            kv_used_tokens_end,
            outcomes: self.outcomes,
        }
    }

    /// Static batching (pre-ORCA "original implementation" baseline): form
    /// a batch, pad every sequence to the batch maximum, run the whole
    /// batch to completion, repeat.
    fn run_static(
        mut self,
        max_batch: usize,
        sink: &mut Option<&mut dyn TraceSink>,
    ) -> Result<SimReport, SimError> {
        assert!(max_batch > 0, "static batch size must be positive");
        let instance = self.instance;
        loop {
            self.ingest_arrivals(sink);
            if self.time_exceeded() {
                break;
            }
            if self.queue.is_empty() {
                match self.arrivals.next_time() {
                    Some(t) if t > self.now => {
                        self.now = t;
                        continue;
                    }
                    Some(_) => unreachable!("due arrival not ingested"),
                    None => break,
                }
            }
            // Form a batch under padded worst-case reservation.
            let mut batch: Vec<Pending> = Vec::new();
            let mut max_in = 0u64;
            let mut max_cap = 0u64;
            while batch.len() < max_batch {
                let Some(front) = self.queue.front() else {
                    break;
                };
                let front_spec = &self.specs[front.spec];
                let cand_in = max_in.max(u64::from(front_spec.input_len));
                let cand_cap = max_cap.max(u64::from(front_spec.max_new_tokens));
                let worst = (batch.len() as u64 + 1) * (cand_in + cand_cap);
                if worst <= self.capacity {
                    max_in = cand_in;
                    max_cap = cand_cap;
                    batch.push(self.pop_queue_front().expect("front exists"));
                } else {
                    break;
                }
            }
            if batch.is_empty() {
                return Err(SimError::Stalled {
                    queued: self.queue.len(),
                    at: self.now,
                });
            }
            if sink.is_some() {
                for pending in &batch {
                    let request = self.specs[pending.spec].id.raw();
                    fleet::emit(
                        sink,
                        TraceEvent::Admitted {
                            at: self.now,
                            instance,
                            request,
                        },
                    );
                    fleet::emit(
                        sink,
                        TraceEvent::PrefillStart {
                            at: self.now,
                            instance,
                            request,
                        },
                    );
                }
            }
            let b = batch.len() as u64;
            // Prefill over padded prompts.
            let duration = self.perf.prefill_step(b * max_in);
            self.now += duration;
            self.prefill_steps += 1;
            self.accumulate_static_metrics(b, max_in, max_cap, duration, sink);
            for pending in &mut batch {
                pending.generated += 1;
                let first_ever = pending.timing.ttft().is_none();
                pending.timing.record_token(self.now);
                if sink.is_some() {
                    let request = self.specs[pending.spec].id.raw();
                    fleet::emit(
                        sink,
                        TraceEvent::PrefillEnd {
                            at: self.now,
                            instance,
                            request,
                        },
                    );
                    if first_ever {
                        fleet::emit(
                            sink,
                            TraceEvent::FirstToken {
                                at: self.now,
                                instance,
                                request,
                            },
                        );
                    }
                }
            }
            // Decode until the whole batch finishes (early finishers idle
            // inside the batch — padding waste).
            let mut step_idx = 1u64;
            loop {
                let specs = &self.specs;
                if !batch
                    .iter()
                    .any(|p| p.generated < specs[p.spec].true_output_len)
                {
                    break;
                }
                if self.time_exceeded() {
                    break;
                }
                step_idx += 1;
                let kv_tokens = b * (max_in + step_idx);
                let duration = self.perf.decode_step(b, kv_tokens);
                self.now += duration;
                self.decode_steps += 1;
                if sink.is_some() {
                    let specs = &self.specs;
                    let emitters = batch
                        .iter()
                        .filter(|p| p.generated < specs[p.spec].true_output_len)
                        .count() as u32;
                    fleet::emit(
                        sink,
                        TraceEvent::DecodeStep {
                            at: self.now,
                            instance,
                            batch: emitters,
                        },
                    );
                }
                self.accumulate_static_metrics(b, max_in, max_cap, duration, sink);
                let specs = &self.specs;
                for pending in &mut batch {
                    if pending.generated < specs[pending.spec].true_output_len {
                        pending.generated += 1;
                        pending.timing.record_token(self.now);
                    }
                }
            }
            for pending in batch {
                let spec = self.specs.remove(pending.spec);
                if sink.is_some() {
                    let sla_ok = self.config.sla.evaluate(&pending.timing).is_satisfied();
                    fleet::emit(
                        sink,
                        TraceEvent::Finished {
                            at: self.now,
                            instance,
                            request: spec.id.raw(),
                            sla_ok,
                        },
                    );
                }
                self.scheduler.on_request_finished(pending.generated);
                self.arrivals.on_finish(self.now);
                self.outcomes.push(RequestOutcome {
                    id: spec.id.raw(),
                    input_len: spec.input_len,
                    output_len: pending.generated,
                    timing: pending.timing,
                    evictions: 0,
                });
            }
        }
        Ok(self.finish_report())
    }

    fn accumulate_static_metrics(
        &mut self,
        batch: u64,
        max_in: u64,
        max_cap: u64,
        duration: SimDuration,
        sink: &mut Option<&mut dyn TraceSink>,
    ) {
        // Static systems reserve the padded worst case for the whole batch.
        let used_frac = (batch * (max_in + max_cap)) as f64 / self.capacity as f64;
        let secs = duration.as_secs_f64();
        self.consumed_weighted_sum += used_frac * secs;
        self.weighted_time += secs;
        self.peak_consumed_frac = self.peak_consumed_frac.max(used_frac);
        self.future_required_sum += used_frac;
        self.future_required_samples += 1;
        if self.config.record_series {
            self.consumed_series.record(self.now, used_frac);
            self.future_required_series.record(self.now, used_frac);
            self.queue_series.record(self.now, self.queue.len() as f64);
        }
        if let Some(s) = sink {
            s.gauge(
                self.now,
                self.instance,
                GaugeKind::QueueDepth,
                self.queue.len() as f64,
            );
            s.gauge(self.now, self.instance, GaugeKind::KvOccupancy, used_frac);
            s.gauge(self.now, self.instance, GaugeKind::BatchSize, batch as f64);
            s.gauge(self.now, self.instance, GaugeKind::SlackPressure, 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefixCacheConfig;
    use crate::{GpuSpec, ModelSpec};
    use pf_core::SchedulerConfig;

    fn prefix_engine(capacity: u64, budget_frac: f64) -> Engine {
        let mut config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
            .scheduler(SchedulerConfig::past_future())
            .capacity_override(capacity)
            .record_series(false)
            .seed(7)
            .build();
        config.prefix_cache = Some(PrefixCacheConfig::with_budget_frac(budget_frac));
        Engine::new(config, Arrivals::offline(Vec::new()))
    }

    /// Regression: a finished conversation that fits the token budget but
    /// exceeds what the pool can ever charge (free tokens plus the current
    /// sentinel charge) must be skipped outright. The old path inserted
    /// it, which flushed every other LRU entry during `sync_prefix_charge`
    /// and then evicted the new entry itself — an empty cache for nothing.
    #[test]
    fn over_budget_conversation_skips_instead_of_flushing_cache() {
        let mut engine = prefix_engine(10_000, 0.5); // budget 5_000 tokens
        match engine.prefix.as_mut().expect("cache enabled") {
            PrefixStore::Whole(cache) => cache.insert(1, 500),
            PrefixStore::Blocks(_) => unreachable!("whole-prefix store expected"),
        }
        engine.sync_prefix_charge();
        // Live work crowds the pool: 9_000 of 10_000 tokens held, leaving
        // 500 free beyond the 500-token sentinel charge.
        engine.kv.allocate(7, 9_000, 9_000).expect("blocker fits");
        assert_eq!(engine.kv.available_tokens(), 500);

        // conversation = 3_000 + 1_000 = 4_000: under the 5_000 budget but
        // over the 1_000 the pool could ever charge (500 free + 500 cached).
        let spec = RequestSpec::new(99u64, 3_000, 1_000, 1_000).with_prefix(2u64, 0);
        engine.cache_finished_prefix(&spec, 1_000);

        let store = engine.prefix.as_ref().unwrap();
        assert_eq!(store.used_tokens(), 500, "warm entry survives untouched");
        match store {
            PrefixStore::Whole(cache) => {
                assert_eq!(cache.peek(1), Some(500));
                assert_eq!(cache.peek(2), None, "unchargeable conversation skipped");
            }
            PrefixStore::Blocks(_) => unreachable!(),
        }
        assert_eq!(
            engine.kv.available_tokens(),
            500,
            "sentinel charge unchanged"
        );
    }

    /// A conversation the pool *can* charge after evicting colder entries
    /// still lands in the cache — the skip is strictly for unchargeable
    /// conversations, not a general admission tightening.
    #[test]
    fn chargeable_conversation_still_caches_after_evicting_lru() {
        let mut engine = prefix_engine(10_000, 0.5);
        match engine.prefix.as_mut().expect("cache enabled") {
            PrefixStore::Whole(cache) => cache.insert(1, 500),
            PrefixStore::Blocks(_) => unreachable!("whole-prefix store expected"),
        }
        engine.sync_prefix_charge();
        engine.kv.allocate(7, 6_000, 6_000).expect("blocker fits");
        // 3_500 free + 500 cached = 4_000 chargeable; a 4_000-token
        // conversation fits exactly once the cold entry is evicted.
        let spec = RequestSpec::new(99u64, 3_000, 1_000, 1_000).with_prefix(2u64, 0);
        engine.cache_finished_prefix(&spec, 1_000);

        let store = engine.prefix.as_ref().unwrap();
        assert_eq!(store.used_tokens(), 4_000);
        match store {
            PrefixStore::Whole(cache) => {
                assert_eq!(cache.peek(2), Some(4_000), "new conversation cached");
                assert_eq!(cache.peek(1), None, "cold entry gave way");
            }
            PrefixStore::Blocks(_) => unreachable!(),
        }
    }
}
