//! GPU hardware descriptions.
//!
//! The simulator only needs three numbers per accelerator — HBM capacity,
//! dense fp16 throughput and memory bandwidth — because LLM inference is
//! either compute-bound (prefill) or bandwidth-bound (decode), and KV-cache
//! capacity is a memory-size budget. Presets carry published datasheet
//! numbers for the GPUs the paper evaluates on.

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// A GPU model.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// HBM/GDDR capacity in GiB.
    pub hbm_gib: f64,
    /// Dense fp16/bf16 tensor throughput in TFLOPS.
    pub tflops_fp16: f64,
    /// Memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
}

impl GpuSpec {
    /// NVIDIA A100 80GB SXM (312 TFLOPS dense fp16, 2039 GB/s).
    pub const fn a100_80g() -> Self {
        GpuSpec {
            name: "A100-80G",
            hbm_gib: 80.0,
            tflops_fp16: 312.0,
            mem_bw_gbps: 2039.0,
        }
    }

    /// NVIDIA H800 80GB (H100-class compute, 989 TFLOPS dense fp16,
    /// 3350 GB/s).
    pub const fn h800() -> Self {
        GpuSpec {
            name: "H800",
            hbm_gib: 80.0,
            tflops_fp16: 989.0,
            mem_bw_gbps: 3350.0,
        }
    }

    /// NVIDIA GeForce RTX 4090 24GB (165 TFLOPS dense fp16, 1008 GB/s).
    pub const fn rtx_4090() -> Self {
        GpuSpec {
            name: "RTX-4090",
            hbm_gib: 24.0,
            tflops_fp16: 165.0,
            mem_bw_gbps: 1008.0,
        }
    }

    /// NVIDIA A30 24GB (165 TFLOPS dense fp16, 933 GB/s).
    pub const fn a30() -> Self {
        GpuSpec {
            name: "A30",
            hbm_gib: 24.0,
            tflops_fp16: 165.0,
            mem_bw_gbps: 933.0,
        }
    }

    /// HBM capacity in bytes.
    pub fn hbm_bytes(&self) -> u64 {
        (self.hbm_gib * GIB) as u64
    }

    /// Peak fp16 FLOP/s.
    pub fn flops(&self) -> f64 {
        self.tflops_fp16 * 1e12
    }

    /// Memory bandwidth in bytes/s.
    pub fn bw_bytes_per_s(&self) -> f64 {
        self.mem_bw_gbps * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_magnitudes() {
        for gpu in [
            GpuSpec::a100_80g(),
            GpuSpec::h800(),
            GpuSpec::rtx_4090(),
            GpuSpec::a30(),
        ] {
            assert!(gpu.hbm_bytes() > 20 * (GIB as u64));
            assert!(gpu.flops() > 1e14, "{}", gpu.name);
            assert!(gpu.bw_bytes_per_s() > 5e11, "{}", gpu.name);
        }
    }

    #[test]
    fn a100_matches_datasheet() {
        let a100 = GpuSpec::a100_80g();
        assert_eq!(a100.hbm_gib, 80.0);
        assert_eq!(a100.tflops_fp16, 312.0);
        assert!((a100.bw_bytes_per_s() - 2.039e12).abs() < 1e9);
    }

    #[test]
    fn h800_outclasses_a100() {
        assert!(GpuSpec::h800().flops() > GpuSpec::a100_80g().flops());
        assert!(GpuSpec::h800().bw_bytes_per_s() > GpuSpec::a100_80g().bw_bytes_per_s());
    }
}
