//! Disaggregated prefill/decode serving: separate instance pools joined by
//! a KV-transfer link (DistServe / NVIDIA-Dynamo-style).
//!
//! A colocated engine runs prefill and decode on the same GPU, so the two
//! stages interfere: prompt passes stall token emission (MTPOT), and the
//! decode batch's KV residency starves prompt admission (TTFT). This module
//! splits them. **Prefill instances** serve a queue of prompts in batched
//! whole-prompt passes and emit each request's *first* token — in FIFO
//! order or shortest-prompt-first with an aging cap
//! ([`PrefillOrder`]); **decode instances** run continuous-batching token
//! generation for requests whose KV cache has been handed over, admitting
//! handoffs by the paper's future-required-memory estimate (Eq. 2–4 on
//! ground-truth lengths — an oracle, so the decode batch packs densely yet
//! never evicts). The pools scale (and in the elastic variant autoscale)
//! independently, each against the SLA term its stage controls: prefill
//! against TTFT, decode against TPOT.
//!
//! When the base config sets [`QueueOrder::LeastSlackFirst`](crate::QueueOrder),
//! deadline slack overrides the [`PrefillOrder`]: each prefill instance
//! serves the queued prompt with the least remaining slack next (aging
//! cap intact), and prompts whose slack has fallen below their minimum
//! feasible prefill time are dropped early instead of burning a pass on a
//! guaranteed miss. Decode admission ranks pending handoffs by remaining
//! slack against the *end-to-end* deadline — a handoff reaches the decode
//! pool only after its KV transfer lands, so the transfer latency is
//! charged before the ranking.
//!
//! # The KV-transfer cost model
//!
//! Moving a request between pools means moving its KV cache. The cost
//! model ([`KvTransferSpec`]) charges, per handoff,
//!
//! ```text
//! bytes   = (input_len + 1) × kv_bytes_per_token(model)
//!         = (input_len + 1) × 2 · layers · kv_heads · head_dim · 2
//! latency = bytes / (link_gbps × 1e9)  +  per_hop_overhead
//! ```
//!
//! where `input_len + 1` counts the prompt plus the first generated token,
//! `link_gbps` is the prefill→decode interconnect bandwidth (NVLink ≈ 200
//! GB/s, PCIe 4.0 x16 ≈ 25 GB/s) and `per_hop_overhead` models connection
//! setup, layer-wise descriptor exchange and scheduler hops. The latency
//! is charged **between prefill completion and the first decode step**: it
//! widens the gap between a request's first and second tokens (an MTPOT
//! term), never its TTFT.
//!
//! Transfers share a handoff queue with at most
//! [`KvTransferSpec::max_inflight`] transfers in flight; excess handoffs
//! wait for a slot in FIFO order. A prefill instance keeps the request's
//! KV resident (and charged against its capacity) until the transfer
//! completes, so a saturated link backpressures prompt admission exactly
//! as it would in a real deployment.
//!
//! # Layer-wise streaming
//!
//! [`TransferMode::LayerStreamed`] replaces the post-hoc atomic blob with
//! a chunked pipeline: while a prefill pass runs, each of the model's
//! `num_layers` KV chunks becomes eligible for transfer as the pass
//! proportionally produces it, so the transfer overlaps the *remaining
//! prefill compute* and only the tail chunks (bounded by link bandwidth
//! versus prefill rate) land after the pass ends. The link itself turns
//! from `max_inflight` fixed slots into a shared fluid resource:
//! concurrent streams split `link_gbps` by weighted max-min fair share
//! ([`crate::link::LinkScheduler`]), with slack-aware weights (the
//! shared [`crate::fleet`] slack grouping) so urgent transfers draw up
//! to twice the bandwidth, and `per_hop_overhead` charged **once per
//! stream** — not per chunk, which would make thin links quadratically
//! pessimistic in the layer count. TTFT is stamped at prefill end in
//! both modes; streaming wins by *backpressure*: the source instance
//! frees its held KV as soon as the short tail lands instead of a full
//! transfer later, so a saturated prefill pool admits new prompts
//! sooner, and the first decode step starts earlier (an MTPOT term).
//! `docs/disagg.md` covers the model and its tuning knobs.
//!
//! # Elastic variant and cross-pool repurposing
//!
//! [`ElasticDisaggCluster`] runs both pools on the [`crate::fleet`]
//! lifecycle kernel: scale-ups provision instances that serve only after
//! a warm-up delay, scale-downs cancel warming instances first and then
//! drain live ones (they finish their work, transfer everything out and
//! stop costing GPU-seconds). One [`AutoscalePlanner`] per pool — built
//! with [`pf_autoscale::PoolRole::Prefill`] / [`PoolRole::Decode`] — sizes
//! the pools independently.
//!
//! With [`DisaggConfig::repurpose`] enabled, a decode scale-up first
//! *claims* draining prefill instances instead of provisioning cold ones:
//! when a claimed instance finishes draining, it flips into the decode
//! pool after the short `repurpose_delay` (KV pool reset, CUDA graphs
//! re-captured) instead of a full warm-up — the weights are already on
//! the GPU. The flip is atomic in the cost ledger: the instance stops
//! charging the prefill pool and starts charging the decode pool at the
//! same instant, carries its [`GpuType`] with it, and is reported in
//! [`DisaggReport::repurposes`]. A member never serves both roles at
//! once: it must be fully drained (no queue, no batch, no held KV) before
//! the flip, and its decode life starts from an empty KV pool.
//!
//! # Heterogeneous pools
//!
//! [`DisaggConfig::fleet`] assigns a [`GpuType`] per provisioning slot in
//! each pool. A member's `perf_scale` scales its step durations, routing
//! divides load signals by it, the per-pool planners size candidates
//! against the mean scale of the slots they would occupy, and reports
//! price every instance at its `cost_weight`.
//!
//! The run is fully deterministic: one global event heap orders arrivals,
//! step completions, transfers and planning rounds, with a monotone
//! sequence number breaking timestamp ties.
//!
//! # Example
//!
//! ```
//! use pf_core::SchedulerConfig;
//! use pf_metrics::SimTime;
//! use pf_sim::disagg::{DisaggCluster, DisaggConfig};
//! use pf_sim::{GpuSpec, ModelSpec, SimConfig};
//! use pf_workload::{datasets, LengthSampler};
//!
//! let base = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
//!     .capacity_override(12_000)
//!     .build();
//! let input = LengthSampler::uniform(256, 1024);
//! let output = LengthSampler::uniform(8, 64);
//! let requests = datasets::from_samplers(40, 1, &input, &output, 64);
//! let arrivals = (0..40).map(|i| SimTime::from_millis(250 * i)).collect();
//! let report = DisaggCluster::new(DisaggConfig::new(base), 1, 1)
//!     .run(requests, arrivals)?;
//! assert_eq!(report.completed(), 40);
//! assert!(report.transfers.transfers > 0);
//! # Ok::<(), pf_sim::SimError>(())
//! ```

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};

use pf_autoscale::{AutoscaleConfig, AutoscalePlanner, PoolRole, ScalingDecision, StepLatency};
use pf_core::{AdmissionIndex, BatchEntry};
use pf_kvcache::{
    block_hash, ApproxKvIndexer, BlockPrefixCache, KvEvent, KvIndexer, PrefixCache,
    PrefixCacheStats, KV_ROOT_HASH,
};
use pf_metrics::{GoodputReport, RequestTiming, SeriesGroup, SimDuration, SimTime, SlaSpec};
use pf_obs::{GaugeKind, Pool, TraceEvent, TraceSink};
use pf_workload::RequestSpec;

use crate::cluster::RouterPolicy;
use crate::config::{PrefixCacheConfig, QueueOrder, SimConfig};
use crate::error::SimError;
use crate::fleet::{
    self, pick_cost_logit, pick_rotating_min, pick_routed, slot_gpu, DisaggKvIndex, FleetMember,
    GpuType, MemberCore, MemberState, RouteCandidate, RouteRng, RouterConfig, ScalingEvent,
    ROUTE_RNG_STREAM,
};
use crate::link::{LinkScheduler, StreamDone, StreamSpec};
use crate::perf::PerfModel;
use crate::report::RequestOutcome;

/// The KV-transfer cost model between the prefill and decode pools (see
/// the module docs for the formula).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KvTransferSpec {
    /// Effective prefill→decode link bandwidth in GB/s.
    pub link_gbps: f64,
    /// Fixed per-transfer overhead (connection setup, descriptor hops).
    pub per_hop_overhead: SimDuration,
    /// Maximum simultaneously in-flight transfers; excess handoffs queue
    /// FIFO for a slot. Atomic mode only — the streamed link is a shared
    /// fluid resource with no slot bound.
    pub max_inflight: usize,
    /// How transfers use the link (default [`TransferMode::Atomic`],
    /// bit-identical to the historical behavior).
    #[cfg_attr(feature = "serde", serde(default))]
    pub mode: TransferMode,
    /// Layer chunks per streamed transfer; `0` (the default) resolves to
    /// the model's layer count. Ignored in atomic mode.
    #[cfg_attr(feature = "serde", serde(default))]
    pub num_layers: u32,
}

/// How the prefill→decode KV handoff uses the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TransferMode {
    /// One atomic blob after prefill completes, over
    /// [`KvTransferSpec::max_inflight`] fixed slots (the default).
    #[default]
    Atomic,
    /// Layer-chunked streaming over the shared fair-share link: chunks
    /// become eligible as the prefill pass produces them, overlapping the
    /// transfer with the remaining compute (see the module docs).
    LayerStreamed,
}

impl KvTransferSpec {
    /// Creates a transfer spec, validating the parameters.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not finite and positive or
    /// `max_inflight` is zero.
    pub fn new(link_gbps: f64, per_hop_overhead: SimDuration, max_inflight: usize) -> Self {
        assert!(
            link_gbps.is_finite() && link_gbps > 0.0,
            "invalid link bandwidth {link_gbps}"
        );
        assert!(max_inflight > 0, "need at least one in-flight transfer");
        KvTransferSpec {
            link_gbps,
            per_hop_overhead,
            max_inflight,
            mode: TransferMode::Atomic,
            num_layers: 0,
        }
    }

    /// Switches to layer-streamed transfers (see [`TransferMode`]).
    pub fn streamed(mut self) -> Self {
        self.mode = TransferMode::LayerStreamed;
        self
    }

    /// Overrides the layer-chunk count of streamed transfers (`0` = the
    /// model's layer count).
    pub fn layers(mut self, num_layers: u32) -> Self {
        self.num_layers = num_layers;
        self
    }

    /// NVLink-class interconnect (≈200 GB/s, 50 µs overhead, 8 slots).
    pub fn nvlink() -> Self {
        KvTransferSpec::new(200.0, SimDuration::from_micros(50), 8)
    }

    /// PCIe 4.0 x16 interconnect (≈25 GB/s, 200 µs overhead, 4 slots).
    pub fn pcie4() -> Self {
        KvTransferSpec::new(25.0, SimDuration::from_micros(200), 4)
    }

    /// Pure link latency for one transfer of `bytes` (excluding slot
    /// queueing).
    pub fn latency(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / (self.link_gbps * 1e9)) + self.per_hop_overhead
    }
}

/// Order in which a prefill instance serves its prompt queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PrefillOrder {
    /// Arrival order (the default).
    Fifo,
    /// Shortest prompt first: short prompts overtake long ones, cutting
    /// the TTFT tail on mixed prompt lengths — bounded by an aging cap so
    /// long prompts cannot starve.
    ShortestPromptFirst {
        /// Once the *oldest* queued prompt has waited this long, it is
        /// served next regardless of length (starvation bound).
        aging_cap: SimDuration,
    },
}

impl PrefillOrder {
    /// Shortest-prompt-first with a 10-second aging cap.
    pub fn sjf() -> Self {
        PrefillOrder::ShortestPromptFirst {
            aging_cap: SimDuration::from_secs(10),
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PrefillOrder::Fifo => "fifo",
            PrefillOrder::ShortestPromptFirst { .. } => "sjf",
        }
    }
}

/// Configuration of a disaggregated deployment: one replica type (model,
/// GPU, capacity, SLA — all from the embedded [`SimConfig`]) split into
/// two pools joined by a [`KvTransferSpec`] link.
#[derive(Debug, Clone)]
pub struct DisaggConfig {
    /// Replica description shared by both pools (scheduler settings are
    /// unused — the pools run stage-specific loops; a
    /// [`SimConfig::prefix_cache`] setting is honoured on the prefill
    /// pool, where hits shrink prefill passes directly).
    pub base: SimConfig,
    /// The prefill→decode KV-transfer link.
    pub transfer: KvTransferSpec,
    /// *Computed* prompt tokens batched into one prefill pass at most
    /// (prefix-cache hits shrink a prompt's computed tokens, letting more
    /// prompts share a pass at the same per-pass cost).
    pub max_prefill_batch_tokens: u64,
    /// Front-end routing policy over the prefill pool.
    /// [`RouterPolicy::PrefixAffinity`] steers requests to the prefill
    /// instance caching the longest prefix of their prompt;
    /// [`RouterPolicy::RoundRobin`] rotates; every other policy routes by
    /// the pool's load signal (queued plus held prompt tokens). All exact
    /// ties break with a rotating cursor.
    pub router: RouterPolicy,
    /// Queue discipline of the prefill instances (default FIFO).
    pub prefill_order: PrefillOrder,
    /// Cross-pool repurposing delay: when set, decode scale-ups claim
    /// draining prefill instances, which flip into the decode pool this
    /// long after finishing their drain — much shorter than a full
    /// warm-up, since the weights are already resident. `None` (default)
    /// disables repurposing.
    pub repurpose: Option<SimDuration>,
    /// GPU type per prefill provisioning slot (empty = reference type).
    pub prefill_slots: Vec<GpuType>,
    /// GPU type per decode provisioning slot (empty = reference type).
    pub decode_slots: Vec<GpuType>,
}

impl DisaggConfig {
    /// Wraps a replica configuration with NVLink transfer defaults and an
    /// 8k-token prefill batch budget.
    pub fn new(base: SimConfig) -> Self {
        DisaggConfig {
            base,
            transfer: KvTransferSpec::nvlink(),
            max_prefill_batch_tokens: 8_192,
            router: RouterPolicy::LeastEstimatedLoad,
            prefill_order: PrefillOrder::Fifo,
            repurpose: None,
            prefill_slots: Vec::new(),
            decode_slots: Vec::new(),
        }
    }

    /// Sets the KV-transfer link.
    pub fn transfer(mut self, transfer: KvTransferSpec) -> Self {
        self.transfer = transfer;
        self
    }

    /// Sets the prefill batch budget in prompt tokens.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is zero.
    pub fn prefill_batch_tokens(mut self, tokens: u64) -> Self {
        assert!(tokens > 0, "prefill batch budget must be positive");
        self.max_prefill_batch_tokens = tokens;
        self
    }

    /// Sets the prefill-pool routing policy.
    pub fn router(mut self, router: RouterPolicy) -> Self {
        self.router = router;
        self
    }

    /// Sets the prefill queue discipline.
    pub fn prefill_order(mut self, order: PrefillOrder) -> Self {
        self.prefill_order = order;
        self
    }

    /// Enables cross-pool repurposing with the given flip delay (see
    /// [`DisaggConfig::repurpose`]).
    pub fn repurpose(mut self, delay: SimDuration) -> Self {
        self.repurpose = Some(delay);
        self
    }

    /// Declares heterogeneous pools: provisioning slot `k` of each pool
    /// runs on the `k`-th entry of its slot list (slots past the end
    /// repeat the last entry; an empty list is the homogeneous reference
    /// fleet, bit-identical to the single-type behavior).
    pub fn fleet(mut self, prefill_slots: Vec<GpuType>, decode_slots: Vec<GpuType>) -> Self {
        self.prefill_slots = prefill_slots;
        self.decode_slots = decode_slots;
        self
    }
}

/// A disaggregated cluster with *fixed* pool sizes.
#[derive(Debug)]
pub struct DisaggCluster {
    config: DisaggConfig,
    prefill_instances: usize,
    decode_instances: usize,
}

impl DisaggCluster {
    /// Creates a cluster with `prefill_instances` + `decode_instances`
    /// fixed replicas.
    ///
    /// # Panics
    ///
    /// Panics if either pool is empty.
    pub fn new(config: DisaggConfig, prefill_instances: usize, decode_instances: usize) -> Self {
        assert!(prefill_instances > 0, "prefill pool needs an instance");
        assert!(decode_instances > 0, "decode pool needs an instance");
        DisaggCluster {
            config,
            prefill_instances,
            decode_instances,
        }
    }

    /// Runs the cluster against a timed arrival stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when a request cannot fit either pool.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != arrival_times.len()` or the times are
    /// not sorted.
    pub fn run(
        self,
        requests: Vec<RequestSpec>,
        arrival_times: Vec<SimTime>,
    ) -> Result<DisaggReport, SimError> {
        self.run_traced(requests, arrival_times, None)
    }

    /// [`DisaggCluster::run`] with an optional [`TraceSink`] receiving
    /// every lifecycle event, including the KV-transfer handoffs. With
    /// `None` this is exactly `run`: bit-identical reports, no allocation
    /// on the emission paths.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when a request cannot fit either pool.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != arrival_times.len()` or the times are
    /// not sorted.
    pub fn run_traced(
        self,
        requests: Vec<RequestSpec>,
        arrival_times: Vec<SimTime>,
        sink: Option<&mut dyn TraceSink>,
    ) -> Result<DisaggReport, SimError> {
        Run::start(
            self.config,
            self.prefill_instances,
            self.decode_instances,
            None,
            requests,
            arrival_times,
            sink,
        )?
        .drive()
    }
}

/// A disaggregated cluster whose pools are independently autoscaled — the
/// prefill pool against TTFT, the decode pool against TPOT (see module
/// docs).
#[derive(Debug)]
pub struct ElasticDisaggCluster {
    config: DisaggConfig,
    prefill_autoscale: AutoscaleConfig,
    decode_autoscale: AutoscaleConfig,
    initial_prefill: usize,
    initial_decode: usize,
}

impl ElasticDisaggCluster {
    /// Creates an elastic disaggregated cluster.
    ///
    /// # Panics
    ///
    /// Panics if either initial count is zero or outside its pool's
    /// `[min, max]` bounds, or if the two pools disagree on the adjustment
    /// interval (planning rounds drive both pools on one cadence).
    pub fn new(
        config: DisaggConfig,
        prefill_autoscale: AutoscaleConfig,
        decode_autoscale: AutoscaleConfig,
        initial_prefill: usize,
        initial_decode: usize,
    ) -> Self {
        assert_eq!(
            prefill_autoscale.interval, decode_autoscale.interval,
            "pools must share one adjustment interval"
        );
        for (label, autoscale, initial) in [
            ("prefill", &prefill_autoscale, initial_prefill),
            ("decode", &decode_autoscale, initial_decode),
        ] {
            assert!(initial > 0, "{label} pool needs an instance");
            assert!(
                (autoscale.policy.min_replicas..=autoscale.policy.max_replicas).contains(&initial),
                "initial {label} replicas {} outside policy bounds [{}, {}]",
                initial,
                autoscale.policy.min_replicas,
                autoscale.policy.max_replicas
            );
        }
        ElasticDisaggCluster {
            config,
            prefill_autoscale,
            decode_autoscale,
            initial_prefill,
            initial_decode,
        }
    }

    /// Runs the elastic cluster against a timed arrival stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when a request cannot fit either pool.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != arrival_times.len()` or the times are
    /// not sorted.
    pub fn run(
        self,
        requests: Vec<RequestSpec>,
        arrival_times: Vec<SimTime>,
    ) -> Result<DisaggReport, SimError> {
        self.run_traced(requests, arrival_times, None)
    }

    /// [`ElasticDisaggCluster::run`] with an optional [`TraceSink`]
    /// receiving every lifecycle event, including per-pool scaling and
    /// cross-pool repurposing. With `None` this is exactly `run`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when a request cannot fit either pool.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != arrival_times.len()` or the times are
    /// not sorted.
    pub fn run_traced(
        self,
        requests: Vec<RequestSpec>,
        arrival_times: Vec<SimTime>,
        sink: Option<&mut dyn TraceSink>,
    ) -> Result<DisaggReport, SimError> {
        let model = PoolModel {
            perf: self.config.base.perf_model(),
            capacity_tokens: self.config.base.capacity_tokens(),
        };
        let sla = self.config.base.sla;
        let interval = self.prefill_autoscale.interval;
        let pool_planner = |autoscale: AutoscaleConfig, role, slots: &[GpuType]| {
            let max = autoscale.policy.max_replicas;
            let warmup = autoscale.warmup;
            let mut planner = AutoscalePlanner::with_role(autoscale, sla, model, role);
            if !slots.is_empty() {
                planner = planner.with_slot_perf_scales(
                    (0..max).map(|k| slot_gpu(slots, k).perf_scale).collect(),
                );
            }
            PoolPlanner { planner, warmup }
        };
        let planning = Planning {
            prefill: pool_planner(
                self.prefill_autoscale,
                PoolRole::Prefill,
                &self.config.prefill_slots,
            ),
            decode: pool_planner(
                self.decode_autoscale,
                PoolRole::Decode,
                &self.config.decode_slots,
            ),
            interval,
            next_plan: SimTime::ZERO + interval,
        };
        Run::start(
            self.config,
            self.initial_prefill,
            self.initial_decode,
            Some(planning),
            requests,
            arrival_times,
            sink,
        )?
        .drive()
    }
}

/// Step-latency oracle for one reference replica (either pool): the
/// roofline [`PerfModel`] with the deployment's KV capacity. Heterogeneous
/// slots scale this model through the planner's per-slot perf scales.
#[derive(Debug, Clone, Copy)]
struct PoolModel {
    perf: PerfModel,
    capacity_tokens: u64,
}

impl StepLatency for PoolModel {
    fn prefill_secs(&self, prompt_tokens: u64) -> f64 {
        self.perf.prefill_step(prompt_tokens).as_secs_f64()
    }

    fn decode_secs(&self, batch_size: u64, kv_tokens: u64) -> f64 {
        self.perf.decode_step(batch_size, kv_tokens).as_secs_f64()
    }

    fn kv_capacity_tokens(&self) -> u64 {
        self.capacity_tokens
    }
}

/// One request travelling through the pipeline.
#[derive(Debug, Clone)]
struct Job {
    spec: RequestSpec,
    timing: RequestTiming,
    generated: u32,
    /// Prompt tokens served from the prefill instance's prefix cache
    /// (assigned when the job enters a prefill batch; shrinks the pass).
    cached_prefix: u64,
    /// Link stream carrying this job's KV (layer-streamed mode only;
    /// assigned when its prefill pass starts).
    stream: Option<usize>,
}

impl Job {
    fn new(spec: RequestSpec, arrived: SimTime) -> Self {
        Job {
            spec,
            timing: RequestTiming::new(arrived),
            generated: 0,
            cached_prefix: 0,
            stream: None,
        }
    }

    /// KV tokens a prefill instance holds for this job: the prompt plus
    /// the first generated token.
    fn prefill_tokens(&self) -> u64 {
        u64::from(self.spec.input_len) + 1
    }

    /// Worst-case KV footprint at completion (routing signal for pending
    /// handoffs whose admission point is not yet known).
    fn final_footprint(&self) -> u64 {
        u64::from(self.spec.input_len) + u64::from(self.spec.true_output_len)
    }

    /// KV tokens currently resident while decoding.
    fn kv_tokens(&self) -> u64 {
        u64::from(self.spec.input_len) + u64::from(self.generated)
    }

    /// Future-memory entry (Eq. 2–4 of the paper, on ground truth): what
    /// this request holds now and how much it will still grow.
    fn batch_entry(&self) -> BatchEntry {
        debug_assert!(
            self.spec.true_output_len >= self.generated,
            "request {} generated {} past its true output length {}",
            self.spec.id.raw(),
            self.generated,
            self.spec.true_output_len
        );
        BatchEntry {
            committed: self.kv_tokens(),
            remaining: u64::from(self.spec.true_output_len.saturating_sub(self.generated)),
        }
    }
}

/// The prefill pool's prefix-reuse store: the legacy whole-prefix-id LRU
/// or — under [`DisaggKvIndex::Exact`] — the block-granular chained-hash
/// store, whose [`KvEvent`]s the run publishes into the exact router
/// index (mirroring the colocated engine's store selection).
#[derive(Debug)]
enum PrefillStore {
    Whole(PrefixCache),
    Blocks(BlockPrefixCache),
}

impl PrefillStore {
    fn used_tokens(&self) -> u64 {
        match self {
            PrefillStore::Whole(cache) => cache.used_tokens(),
            PrefillStore::Blocks(store) => store.used_tokens(),
        }
    }

    fn evict_down_to(&mut self, target_tokens: u64) {
        match self {
            PrefillStore::Whole(cache) => {
                cache.evict_down_to(target_tokens);
            }
            PrefillStore::Blocks(store) => {
                store.evict_down_to(target_tokens);
            }
        }
    }

    fn stats(&self) -> PrefixCacheStats {
        match self {
            PrefillStore::Whole(cache) => cache.stats(),
            PrefillStore::Blocks(store) => store.stats(),
        }
    }

    /// Cached overlap a request would enjoy right now, *without* touching
    /// recency or statistics (router probe, slack-purge feasibility).
    fn peek_match(&self, spec: &RequestSpec) -> u64 {
        match self {
            PrefillStore::Whole(cache) => match spec.prefix_id {
                Some(id) => cache
                    .peek(id.raw())
                    .map_or(0, |cached| cached.min(u64::from(spec.prefix_len))),
                None => 0,
            },
            PrefillStore::Blocks(store) => {
                store.peek_run(spec.matchable_blocks(store.block_tokens() as u32))
            }
        }
    }

    /// Consumes an admission-time hit: the cached overlap in tokens,
    /// refreshing recency and counting lookup/hit statistics.
    fn lookup_match(&mut self, spec: &RequestSpec) -> u64 {
        match self {
            PrefillStore::Whole(cache) => match spec.prefix_id {
                Some(id) => cache.lookup(id.raw(), u64::from(spec.prefix_len)),
                None => 0,
            },
            PrefillStore::Blocks(store) => {
                let block_tokens = store.block_tokens() as u32;
                store.lookup_run(spec.matchable_blocks(block_tokens))
            }
        }
    }
}

/// Run-side state of one layer-streamed transfer (a parallel array to the
/// link scheduler's stream ids).
#[derive(Debug)]
struct StreamSlot {
    /// Source prefill member (pool index).
    from: usize,
    /// KV tokens held on the source until the stream completes.
    tokens: u64,
    /// Stream payload in bytes.
    bytes: u64,
    /// First-chunk eligibility instant (µs) — the traced transfer start.
    start_us: u64,
    /// When the producing prefill pass ends (µs); transfer time beyond
    /// this is the un-hidden tail.
    produce_end_us: u64,
    /// The job, parked here by its prefill completion until the stream
    /// lands.
    job: Option<Job>,
}

#[derive(Debug)]
struct PrefillMember {
    core: MemberCore,
    /// Id stamped into emitted trace events (dense over both pools'
    /// spawn order; a repurposed member gets a fresh decode-side id).
    instance: u32,
    /// Prompts routed here, waiting for a prefill pass.
    queue: VecDeque<Job>,
    /// Prompt tokens waiting in `queue` (routing signal).
    queued_tokens: u64,
    /// The batch currently in the prefill pass (empty when idle).
    batch: Vec<Job>,
    /// KV tokens resident: the in-flight batch plus completed prefills
    /// whose transfer has not finished yet.
    held_tokens: u64,
    /// Instance-local prefix store (None when disabled). Its occupancy
    /// shares the instance's KV capacity with `held_tokens` and is
    /// reclaimed first when a batch needs the room.
    prefix: Option<PrefillStore>,
    busy: bool,
    completed: usize,
    /// Claimed by a decode scale-up: flips into the decode pool (after
    /// the repurpose delay) the moment its drain completes.
    repurpose_claimed: bool,
}

#[derive(Debug)]
struct DecodeMember {
    core: MemberCore,
    /// Id stamped into emitted trace events (see [`PrefillMember::instance`]).
    instance: u32,
    /// Transferred requests waiting for admission into the decode batch.
    pending: VecDeque<Job>,
    /// Final footprints of `pending` (routing signal).
    pending_reserved: u64,
    running: Vec<Job>,
    /// O(log n) Eq. 2–4 probe state over `running`, maintained exactly:
    /// admissions insert at the probe's Eq. 2 position
    /// ([`AdmissionIndex::admit`]), completions retire the sorted tail
    /// ([`AdmissionIndex::retire_due`] — finishing jobs are precisely the
    /// minimum-remaining entries), and synchronized decode steps between
    /// membership changes only advance `index_steps` (every completion
    /// term is step-invariant). The batch is never cloned or re-sorted on
    /// the decode path.
    admit_index: AdmissionIndex,
    index_steps: u64,
    /// KV tokens resident across `running`, maintained incrementally
    /// (`Σ kv_tokens`, the decode-step and routing load signal).
    running_kv: u64,
    busy: bool,
    completed: usize,
    /// Claimed by a prefill scale-up: flips into the prefill pool (after
    /// the repurpose delay) the moment its drain completes.
    repurpose_claimed: bool,
}

impl PrefillMember {
    fn load_signal(&self) -> u64 {
        self.queued_tokens + self.held_tokens
    }

    /// Prefix-cache occupancy in tokens (0 when disabled).
    fn prefix_used(&self) -> u64 {
        self.prefix.as_ref().map_or(0, PrefillStore::used_tokens)
    }

    /// Deadline-slack pressure of this instance's prompt queue: the sum
    /// over queued jobs with an effective deadline of
    /// `1 / (1 + slack_secs)` (the same urgency signal the colocated
    /// engines expose to routers). Zero for deadline-free queues.
    fn slack_pressure(&self, now: SimTime, default_deadline: Option<SimDuration>) -> f64 {
        self.queue
            .iter()
            .filter_map(|job| {
                let deadline = job.spec.deadline.or(default_deadline)?;
                Some(fleet::slack_urgency(now, job.timing.arrival(), deadline))
            })
            .sum()
    }

    /// Cached overlap this instance would serve `spec` from, without
    /// touching the cache (router probe).
    fn cached_match(&self, spec: &RequestSpec) -> u64 {
        self.prefix
            .as_ref()
            .map_or(0, |store| store.peek_match(spec))
    }
}

impl DecodeMember {
    fn load_signal(&self) -> u64 {
        debug_assert_eq!(
            self.running_kv,
            self.running.iter().map(Job::kv_tokens).sum::<u64>()
        );
        self.running_kv + self.pending_reserved
    }
}

impl FleetMember for PrefillMember {
    fn core(&self) -> &MemberCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut MemberCore {
        &mut self.core
    }

    fn load_signal(&self) -> u64 {
        PrefillMember::load_signal(self)
    }
}

impl FleetMember for DecodeMember {
    fn core(&self) -> &MemberCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut MemberCore {
        &mut self.core
    }

    fn load_signal(&self) -> u64 {
        DecodeMember::load_signal(self)
    }
}

/// Which pool an event addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PoolKind {
    Prefill,
    Decode,
}

#[derive(Debug)]
enum Ev {
    /// A request reaches the cluster front end.
    Arrival(RequestSpec),
    /// A prefill instance finishes its current batch.
    PrefillDone(usize),
    /// A KV transfer lands on the decode side.
    TransferDone { from: usize, tokens: u64, job: Job },
    /// A decode instance finishes one decode step.
    DecodeDone(usize),
    /// A warming instance becomes live.
    Ready { pool: PoolKind, member: usize },
    /// An autoscale planning round (elastic runs only).
    Plan,
    /// The shared streamed link reaches its next projected completion
    /// (dropped unprocessed when `generation` is stale — a stream joined
    /// or drained since, rescheduling the wake).
    LinkWake { generation: u64 },
    /// A layer-streamed KV transfer fully lands (tail chunks plus the
    /// per-stream overhead).
    StreamDone { id: usize },
}

/// Heap entry: earliest `(at, seq)` first; `seq` makes ties deterministic.
#[derive(Debug)]
struct Scheduled {
    at_us: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the max-heap pops the earliest event.
        (other.at_us, other.seq).cmp(&(self.at_us, self.seq))
    }
}

struct PoolPlanner {
    planner: AutoscalePlanner<PoolModel>,
    warmup: SimDuration,
}

struct Planning {
    prefill: PoolPlanner,
    decode: PoolPlanner,
    interval: SimDuration,
    next_plan: SimTime,
}

/// Direction of a cross-pool repurposing flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepurposeDirection {
    /// A drained prefill member flipped into the decode pool.
    PrefillToDecode,
    /// A drained decode member flipped into the prefill pool.
    DecodeToPrefill,
}

/// One cross-pool repurposing flip, for reports and property tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepurposeEvent {
    /// When the drained member flipped (its old-pool life ends and its
    /// new-pool life begins at exactly this instant).
    pub at: SimTime,
    /// Which way the member flipped.
    pub direction: RepurposeDirection,
    /// Index into [`DisaggReport::prefill`]'s instances: the drained
    /// member for [`RepurposeDirection::PrefillToDecode`], the freshly
    /// spawned one for [`RepurposeDirection::DecodeToPrefill`].
    pub prefill_member: usize,
    /// Index into [`DisaggReport::decode`]'s instances (the counterpart
    /// of `prefill_member`, per the direction).
    pub decode_member: usize,
}

/// Mutable state of one disaggregated run.
struct Run<'s> {
    perf: PerfModel,
    capacity: u64,
    sla: SlaSpec,
    transfer: KvTransferSpec,
    kv_bytes_per_token: u64,
    max_prefill_batch_tokens: u64,
    record: bool,
    router: RouterPolicy,
    prefill_order: PrefillOrder,
    repurpose_delay: Option<SimDuration>,
    prefill_slots: Vec<GpuType>,
    decode_slots: Vec<GpuType>,
    prefix_cache: Option<PrefixCacheConfig>,
    default_deadline: Option<SimDuration>,
    queue_order: QueueOrder,
    /// Jobs carrying their *own* deadline currently waiting in a prefill
    /// queue — the per-pass purge runs only while this is non-zero or a
    /// deployment-wide default exists, so a trace with one deadlined
    /// request pays the scan only while that request is pending.
    queued_deadlines: usize,
    /// Rotating tie-break cursors of the two pools' routing decisions.
    route_cursor: usize,
    decode_cursor: usize,
    /// Routing tunables (copied out of the base config at start).
    router_cfg: RouterConfig,
    /// Approximate (TTL) KV index for [`RouterPolicy::KvOverlap`]: the
    /// router *observes* each chain it routes instead of consuming member
    /// events (prefill members keep whole-prefix caches and emit no
    /// removals), so entries expire rather than being invalidated.
    approx_index: ApproxKvIndexer,
    /// Dedicated softmax stream (never the workload's generators).
    route_rng: RouteRng,
    /// Reusable chained-hash buffer of the routed request.
    chain_scratch: Vec<u64>,
    /// Block size used for chain hashing/observation (falls back to 64
    /// when the base config has no block store — the index is router-side
    /// bookkeeping only).
    block_tokens: u32,

    prefill: Vec<PrefillMember>,
    decode: Vec<DecodeMember>,
    prefill_scaling: Vec<ScalingEvent>,
    decode_scaling: Vec<ScalingEvent>,
    repurposes: Vec<RepurposeEvent>,
    planning: Option<Planning>,

    heap: BinaryHeap<Scheduled>,
    seq: u64,
    /// Free times of the `max_inflight` transfer slots, in microseconds
    /// (atomic mode; unused when `link` is set).
    link_free: BinaryHeap<Reverse<u64>>,
    /// Shared-link fluid scheduler (`Some` iff the transfer mode is
    /// [`TransferMode::LayerStreamed`]).
    link: Option<LinkScheduler>,
    /// Per-stream run state, indexed by link stream id.
    stream_slots: Vec<StreamSlot>,
    /// Reusable completion buffer of [`Run::on_link_wake`].
    stream_done_buf: Vec<StreamDone>,
    /// Layer chunks per stream (the spec override or the model's count).
    num_layers: u32,
    /// Exact event-driven KV router index (`Some` iff
    /// [`RouterConfig::disagg_kv_index`] selects [`DisaggKvIndex::Exact`]).
    exact_index: Option<KvIndexer>,
    /// Reusable KV-event drain buffer of [`Run::flush_kv_events`].
    kv_event_scratch: Vec<KvEvent>,

    remaining: usize,
    timed_out: usize,
    outcomes: Vec<RequestOutcome>,
    clock: SimTime,
    series: SeriesGroup,
    last_series_at: SimTime,
    stats: TransferStats,
    /// `(start, done)` per transfer, recorded when the base config has
    /// series recording on (tests use it to check the in-flight bound).
    transfer_intervals: Vec<(SimTime, SimTime)>,
    /// Next trace-event instance id (dense over both pools' spawn order).
    next_instance: u32,
    /// Optional trace sink; `None` costs one branch per emission site.
    sink: Option<&'s mut dyn TraceSink>,
    /// Reusable completion scratch of [`Run::on_decode_done`].
    scratch_finished: Vec<Job>,
    /// Reusable per-arrival candidate buffer of [`Run::route_prefill`].
    scratch_route: Vec<RouteCandidate>,
}

impl<'s> Run<'s> {
    #[allow(clippy::too_many_lines)]
    fn start(
        config: DisaggConfig,
        initial_prefill: usize,
        initial_decode: usize,
        planning: Option<Planning>,
        requests: Vec<RequestSpec>,
        arrival_times: Vec<SimTime>,
        sink: Option<&'s mut dyn TraceSink>,
    ) -> Result<Run<'s>, SimError> {
        assert_eq!(
            requests.len(),
            arrival_times.len(),
            "one arrival time per request"
        );
        assert!(
            arrival_times.windows(2).all(|w| w[0] <= w[1]),
            "arrival times must be sorted"
        );
        let perf = config.base.perf_model();
        let capacity = config.base.capacity_tokens();
        if capacity == 0 {
            return Err(SimError::NoKvCapacity { capacity });
        }
        let max_batch = config.max_prefill_batch_tokens;
        for spec in &requests {
            let prefill_need = u64::from(spec.input_len) + 1;
            if prefill_need > capacity {
                return Err(SimError::RequestTooLarge {
                    id: spec.id.raw(),
                    needed: prefill_need,
                    capacity,
                });
            }
            if u64::from(spec.input_len) > max_batch {
                return Err(SimError::RequestTooLarge {
                    id: spec.id.raw(),
                    needed: u64::from(spec.input_len),
                    capacity: max_batch,
                });
            }
            let decode_need = u64::from(spec.input_len) + u64::from(spec.true_output_len);
            if decode_need > capacity {
                return Err(SimError::RequestTooLarge {
                    id: spec.id.raw(),
                    needed: decode_need,
                    capacity,
                });
            }
        }
        let mut run = Run {
            perf,
            capacity,
            sla: config.base.sla,
            transfer: config.transfer,
            kv_bytes_per_token: config.base.model.kv_bytes_per_token(),
            max_prefill_batch_tokens: max_batch,
            record: config.base.record_series,
            router: config.router,
            prefill_order: config.prefill_order,
            repurpose_delay: config.repurpose,
            prefill_slots: config.prefill_slots,
            decode_slots: config.decode_slots,
            prefix_cache: config.base.prefix_cache,
            default_deadline: config.base.request_deadline,
            queue_order: config.base.queue_order,
            queued_deadlines: 0,
            route_cursor: 0,
            decode_cursor: 0,
            router_cfg: config.base.router,
            approx_index: ApproxKvIndexer::new(
                config.base.router.approx_index_ttl.as_micros().max(1),
            ),
            route_rng: RouteRng::new(pf_workload::rng::derive_seed(
                config.base.seed,
                ROUTE_RNG_STREAM,
            )),
            chain_scratch: Vec::new(),
            block_tokens: config
                .base
                .prefix_cache
                .and_then(|p| p.block_tokens)
                .unwrap_or(64),
            prefill: Vec::new(),
            decode: Vec::new(),
            prefill_scaling: Vec::new(),
            decode_scaling: Vec::new(),
            repurposes: Vec::new(),
            planning,
            heap: BinaryHeap::new(),
            seq: 0,
            link_free: (0..config.transfer.max_inflight)
                .map(|_| Reverse(0))
                .collect(),
            link: match config.transfer.mode {
                TransferMode::Atomic => None,
                TransferMode::LayerStreamed => Some(LinkScheduler::new(
                    config.transfer.link_gbps,
                    config.transfer.per_hop_overhead.as_micros(),
                )),
            },
            stream_slots: Vec::new(),
            stream_done_buf: Vec::new(),
            num_layers: if config.transfer.num_layers > 0 {
                config.transfer.num_layers
            } else {
                config.base.model.n_layers
            },
            exact_index: match config.base.router.disagg_kv_index {
                DisaggKvIndex::Approx => None,
                DisaggKvIndex::Exact => Some(KvIndexer::new(
                    config.base.router.kv_event_delay.as_micros(),
                )),
            },
            kv_event_scratch: Vec::new(),
            remaining: requests.len(),
            timed_out: 0,
            outcomes: Vec::with_capacity(requests.len()),
            clock: SimTime::ZERO,
            series: SeriesGroup::new(),
            last_series_at: SimTime::ZERO,
            stats: TransferStats::default(),
            transfer_intervals: Vec::new(),
            next_instance: 0,
            sink,
            scratch_finished: Vec::new(),
            scratch_route: Vec::new(),
        };
        for _ in 0..initial_prefill {
            let gpu = slot_gpu(&run.prefill_slots, fleet::provisioned_count(&run.prefill));
            run.spawn_prefill(SimTime::ZERO, SimDuration::ZERO, gpu);
        }
        for _ in 0..initial_decode {
            let gpu = slot_gpu(&run.decode_slots, fleet::provisioned_count(&run.decode));
            run.spawn_decode(SimTime::ZERO, SimDuration::ZERO, gpu);
        }
        for (at, spec) in arrival_times.into_iter().zip(requests) {
            run.schedule(at, Ev::Arrival(spec));
        }
        let first_plan = run.planning.as_ref().map(|p| p.next_plan);
        if let Some(at) = first_plan {
            if run.remaining > 0 {
                run.schedule(at, Ev::Plan);
            }
        }
        run.record_fleet(SimTime::ZERO);
        Ok(run)
    }

    fn schedule(&mut self, at: SimTime, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            at_us: at.as_micros(),
            seq,
            ev,
        });
    }

    fn spawn_prefill(&mut self, now: SimTime, warmup: SimDuration, gpu: GpuType) {
        let instance = self.next_instance;
        self.next_instance += 1;
        self.prefill.push(PrefillMember {
            core: MemberCore::spawn(now, warmup, gpu),
            instance,
            queue: VecDeque::new(),
            queued_tokens: 0,
            batch: Vec::new(),
            held_tokens: 0,
            prefix: self.prefix_cache.map(|spec| {
                let budget = spec.budget_tokens(self.capacity);
                if self.exact_index.is_some() {
                    PrefillStore::Blocks(BlockPrefixCache::new(budget, self.block_tokens))
                } else {
                    PrefillStore::Whole(PrefixCache::new(budget))
                }
            }),
            busy: false,
            completed: 0,
            repurpose_claimed: false,
        });
        if !warmup.is_zero() {
            let member = self.prefill.len() - 1;
            self.schedule(
                now + warmup,
                Ev::Ready {
                    pool: PoolKind::Prefill,
                    member,
                },
            );
        }
    }

    fn spawn_decode(&mut self, now: SimTime, warmup: SimDuration, gpu: GpuType) {
        let instance = self.next_instance;
        self.next_instance += 1;
        self.decode.push(DecodeMember {
            core: MemberCore::spawn(now, warmup, gpu),
            instance,
            pending: VecDeque::new(),
            pending_reserved: 0,
            running: Vec::new(),
            admit_index: AdmissionIndex::default(),
            index_steps: 0,
            running_kv: 0,
            busy: false,
            completed: 0,
            repurpose_claimed: false,
        });
        if !warmup.is_zero() {
            let member = self.decode.len() - 1;
            self.schedule(
                now + warmup,
                Ev::Ready {
                    pool: PoolKind::Decode,
                    member,
                },
            );
        }
    }

    fn record_fleet(&mut self, at: SimTime) {
        let at = at.max(self.last_series_at);
        self.last_series_at = at;
        let (p_live, _) = fleet::pool_counts(&self.prefill);
        let (d_live, _) = fleet::pool_counts(&self.decode);
        self.series.record("prefill-live", at, p_live as f64);
        self.series.record(
            "prefill-provisioned",
            at,
            fleet::provisioned_count(&self.prefill) as f64,
        );
        self.series.record("decode-live", at, d_live as f64);
        self.series.record(
            "decode-provisioned",
            at,
            fleet::provisioned_count(&self.decode) as f64,
        );
    }

    fn drive(mut self) -> Result<DisaggReport, SimError> {
        while let Some(Scheduled { at_us, ev, .. }) = self.heap.pop() {
            let now = SimTime::from_micros(at_us);
            self.clock = self.clock.max(now);
            match ev {
                Ev::Arrival(spec) => self.on_arrival(now, spec),
                Ev::PrefillDone(i) => self.on_prefill_done(now, i),
                Ev::TransferDone { from, tokens, job } => {
                    self.on_transfer_done(now, from, tokens, job);
                }
                Ev::DecodeDone(j) => self.on_decode_done(now, j),
                Ev::Ready { pool, member } => self.on_ready(now, pool, member),
                Ev::Plan => self.on_plan(now),
                Ev::LinkWake { generation } => self.on_link_wake(now, generation),
                Ev::StreamDone { id } => self.on_stream_done(now, id),
            }
        }
        Ok(self.finish())
    }

    /// Routes an arrival over the live prefill members with the configured
    /// policy, delegating to the fleet kernel's shared routing dispatch
    /// ([`pick_routed`]) — the pool's load signal is queued plus held
    /// prompt tokens, divided by the member's GPU speed. Under
    /// [`RouterPolicy::PrefixAffinity`] or [`RouterPolicy::KvOverlap`]
    /// with deadlines in play, each candidate's load also carries its
    /// queue's remaining-slack pressure (weighted by
    /// [`RouterConfig::slack_pressure_weight`] of capacity), so urgent
    /// queues attract less new traffic. KvOverlap scores candidates
    /// against the pool's approximate TTL index (see
    /// [`Run::approx_index`]) and records the chosen chain afterwards.
    fn route_prefill(&mut self, now: SimTime, spec: &RequestSpec) -> usize {
        let n = self.prefill.len();
        let slack_weighted = matches!(
            self.router,
            RouterPolicy::PrefixAffinity { .. } | RouterPolicy::KvOverlap { .. }
        ) && (self.default_deadline.is_some() || self.queued_deadlines > 0);
        let default_deadline = self.default_deadline;
        let pressure_tokens = self.router_cfg.slack_pressure_weight * self.capacity as f64;
        if let RouterPolicy::KvOverlap {
            overlap_weight,
            temperature,
        } = self.router
        {
            self.chain_scratch.clear();
            let mut parent = KV_ROOT_HASH;
            for content in spec.matchable_blocks(self.block_tokens) {
                parent = block_hash(parent, content);
                self.chain_scratch.push(parent);
            }
            let now_us = now.as_micros();
            if let Some(index) = self.exact_index.as_mut() {
                index.advance(now_us);
            }
            let chain = &self.chain_scratch;
            let exact = self.exact_index.as_ref();
            let approx = &self.approx_index;
            let block_tokens = u64::from(self.block_tokens);
            let candidates = &mut self.scratch_route;
            candidates.clear();
            candidates.extend(
                self.prefill
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.core.is_live())
                    .map(|(i, m)| {
                        let mut load = m.load_signal() as f64;
                        if slack_weighted {
                            load += pressure_tokens * m.slack_pressure(now, default_deadline);
                        }
                        RouteCandidate {
                            index: i,
                            load: load / m.core.gpu.perf_scale,
                            cached_match: match exact {
                                Some(index) => index.overlap(i as u32, chain),
                                None => {
                                    approx.overlap_blocks(i as u32, chain, now_us) * block_tokens
                                }
                            },
                        }
                    }),
            );
            let prompt = f64::from(spec.input_len.max(1));
            let target = pick_cost_logit(
                candidates,
                |c| c.load - overlap_weight * (c.cached_match as f64 / prompt),
                temperature,
                &mut self.route_cursor,
                n,
                &mut self.route_rng,
            )
            .expect("at least one live prefill instance");
            if self.exact_index.is_none() {
                self.approx_index
                    .observe(target as u32, &self.chain_scratch, now_us);
            }
            return target;
        }
        // Disjoint borrows: candidates are rebuilt into the reusable
        // buffer from the prefill pool (routing runs per arrival).
        let candidates = &mut self.scratch_route;
        candidates.clear();
        candidates.extend(
            self.prefill
                .iter()
                .enumerate()
                .filter(|(_, m)| m.core.is_live())
                .map(|(i, m)| {
                    let mut load = m.load_signal() as f64;
                    if slack_weighted {
                        load += pressure_tokens * m.slack_pressure(now, default_deadline);
                    }
                    RouteCandidate {
                        index: i,
                        load: load / m.core.gpu.perf_scale,
                        cached_match: m.cached_match(spec),
                    }
                }),
        );
        pick_routed(
            self.router,
            candidates,
            self.router_cfg.prefix_match_min_tokens,
            &mut self.route_cursor,
            n,
        )
        .expect("at least one live prefill instance")
    }

    fn on_arrival(&mut self, now: SimTime, spec: RequestSpec) {
        if let Some(planning) = self.planning.as_mut() {
            planning
                .prefill
                .planner
                .on_request_arrival(now, spec.input_len);
        }
        if spec.deadline.is_some() {
            self.queued_deadlines += 1;
        }
        let target = self.route_prefill(now, &spec);
        let member = &mut self.prefill[target];
        member.core.routed += 1;
        member.queued_tokens += u64::from(spec.input_len);
        fleet::emit(
            &mut self.sink,
            TraceEvent::Enqueued {
                at: now,
                instance: member.instance,
                request: spec.id.raw(),
            },
        );
        member.queue.push_back(Job::new(spec, now));
        self.try_start_prefill(target, now);
    }

    /// Cancels queued prompts on member `i` whose deadline expired before
    /// their prefill started: the request leaves the queue (it holds no
    /// KV yet) and counts as timed out. Under
    /// [`QueueOrder::LeastSlackFirst`] prompts whose remaining slack is
    /// below their minimum feasible prefill time (on this member's GPU,
    /// accounting for its current prefix-cache overlap) are dropped early
    /// — a pass spent on them is a pass stolen from prompts that can
    /// still make it. Skipped entirely while no pending request can time
    /// out.
    fn purge_timed_out_prefill(&mut self, i: usize, now: SimTime) {
        if self.default_deadline.is_none() && self.queued_deadlines == 0 {
            return;
        }
        let default_deadline = self.default_deadline;
        let slack_aware = self.queue_order.is_slack_aware();
        let perf = self.perf;
        let sink = &mut self.sink;
        let member = &mut self.prefill[i];
        let instance = member.instance;
        let gpu = member.core.gpu;
        let prefix = &member.prefix;
        let mut expired = 0usize;
        let mut expired_own_deadline = 0usize;
        member.queue.retain(|job| {
            let Some(deadline) = job.spec.deadline.or(default_deadline) else {
                return true;
            };
            let waited = now.saturating_since(job.timing.arrival());
            let min_feasible = if slack_aware {
                let prompt = u64::from(job.spec.input_len);
                let cached = prefix
                    .as_ref()
                    .map_or(0, |store| store.peek_match(&job.spec));
                gpu.scale_step(perf.prefill_step(prompt.saturating_sub(cached).max(1)))
            } else {
                SimDuration::ZERO
            };
            if waited + min_feasible >= deadline {
                expired += 1;
                if job.spec.deadline.is_some() {
                    expired_own_deadline += 1;
                }
                // Past the deadline outright = guillotine timeout; still
                // inside it = slack-aware early drop.
                fleet::emit(
                    sink,
                    if waited >= deadline {
                        TraceEvent::TimedOut {
                            at: now,
                            instance,
                            request: job.spec.id.raw(),
                        }
                    } else {
                        TraceEvent::SlackDropped {
                            at: now,
                            instance,
                            request: job.spec.id.raw(),
                        }
                    },
                );
                false
            } else {
                true
            }
        });
        if expired > 0 {
            member.queued_tokens = member
                .queue
                .iter()
                .map(|j| u64::from(j.spec.input_len))
                .sum();
            self.timed_out += expired;
            self.remaining -= expired;
            self.queued_deadlines -= expired_own_deadline;
        }
    }

    /// The queue position the prefill order serves next. Queue order is
    /// arrival order, so the front is always the oldest entry — the aging
    /// caps only need to inspect it. [`QueueOrder::LeastSlackFirst`]
    /// overrides the [`PrefillOrder`]: the prompt with the least
    /// remaining deadline slack joins the pass next (deadline-less
    /// prompts rank last, oldest first).
    fn next_prefill_index(
        queue: &VecDeque<Job>,
        now: SimTime,
        order: PrefillOrder,
        queue_order: QueueOrder,
        default_deadline: Option<SimDuration>,
    ) -> Option<usize> {
        let front = queue.front()?;
        if let QueueOrder::LeastSlackFirst { aging_cap } = queue_order {
            return queue
                .iter()
                .enumerate()
                .min_by_key(|(pos, job)| {
                    let key = fleet::slack_rank_key(
                        now,
                        job.timing.arrival(),
                        job.spec.deadline.or(default_deadline),
                        aging_cap,
                    );
                    (key, *pos)
                })
                .map(|(pos, _)| pos);
        }
        match order {
            PrefillOrder::Fifo => Some(0),
            PrefillOrder::ShortestPromptFirst { aging_cap } => {
                if now.saturating_since(front.timing.arrival()) >= aging_cap {
                    return Some(0);
                }
                queue
                    .iter()
                    .enumerate()
                    .min_by_key(|(pos, job)| (job.spec.input_len, *pos))
                    .map(|(pos, _)| pos)
            }
        }
    }

    /// Starts a prefill pass on member `i` if it is idle and a batch fits
    /// the token budget and the instance's free KV. The configured
    /// [`PrefillOrder`] picks which queued prompt joins next; prefix-cache
    /// hits shrink each job's contribution to the pass, and cached
    /// prefixes are evicted (LRU first) when the batch needs their slots.
    fn try_start_prefill(&mut self, i: usize, now: SimTime) {
        self.purge_timed_out_prefill(i, now);
        let capacity = self.capacity;
        let max_batch = self.max_prefill_batch_tokens;
        let order = self.prefill_order;
        let queue_order = self.queue_order;
        let default_deadline = self.default_deadline;
        let perf = self.perf;
        let sink = &mut self.sink;
        let member = &mut self.prefill[i];
        if member.busy || !member.core.is_active() {
            return;
        }
        let instance = member.instance;
        let mut batch_computed_tokens = 0u64;
        let mut batched_own_deadlines = 0usize;
        while let Some(pos) =
            Self::next_prefill_index(&member.queue, now, order, queue_order, default_deadline)
        {
            let spec = member.queue[pos].spec;
            let prompt = u64::from(spec.input_len);
            // The prompt plus the first generated token (see
            // [`Job::prefill_tokens`]).
            let tokens = prompt + 1;
            if member.held_tokens + tokens > capacity {
                break;
            }
            // The batch budget bounds *computed* tokens — what the pass
            // actually costs — so prefix hits make room for more prompts.
            // Decide the break on a pre-eviction probe: eviction can only
            // shrink the match (grow the cost), so a probe that already
            // busts the budget certainly busts it afterwards — and a job
            // that breaks here must not have evicted cache entries first.
            let computed_probe = prompt.saturating_sub(member.cached_match(&spec)).max(1);
            if !member.batch.is_empty() && batch_computed_tokens + computed_probe > max_batch {
                break;
            }
            // The request's KV outranks cached prefixes: reclaim cache
            // slots so the batch entry fits alongside the cache.
            if member.held_tokens + member.prefix_used() + tokens > capacity {
                let room = capacity - member.held_tokens - tokens;
                member
                    .prefix
                    .as_mut()
                    .expect("non-zero prefix occupancy implies a cache")
                    .evict_down_to(room);
            }
            let mut job = member.queue.remove(pos).expect("selected within bounds");
            if job.spec.deadline.is_some() {
                batched_own_deadlines += 1;
            }
            // Consume the prefix hit: the pass skips the cached tokens
            // (at least the final prompt position is always computed;
            // the reclaim above may have shrunk the probed match).
            if let Some(store) = member.prefix.as_mut() {
                job.cached_prefix = store.lookup_match(&job.spec);
            }
            member.queued_tokens -= prompt;
            member.held_tokens += tokens;
            batch_computed_tokens += prompt.saturating_sub(job.cached_prefix).max(1);
            let request = job.spec.id.raw();
            fleet::emit(
                sink,
                TraceEvent::Admitted {
                    at: now,
                    instance,
                    request,
                },
            );
            fleet::emit(
                sink,
                TraceEvent::PrefillStart {
                    at: now,
                    instance,
                    request,
                },
            );
            member.batch.push(job);
        }
        self.queued_deadlines -= batched_own_deadlines;
        self.flush_kv_events(i, now);
        let member = &mut self.prefill[i];
        if member.batch.is_empty() {
            return;
        }
        member.busy = true;
        let duration = member
            .core
            .gpu
            .scale_step(perf.prefill_step(batch_computed_tokens));
        // The pass completion is scheduled before any stream events so
        // that, at equal timestamps, `PrefillDone` always pops first: a
        // stream's last chunk turns eligible exactly at the pass end, so
        // its `StreamDone` can never land before the job is parked.
        self.schedule(now + duration, Ev::PrefillDone(i));
        if self.link.is_some() {
            self.start_streams(i, now, duration);
        }
    }

    /// Opens one link stream per multi-token job in member `i`'s freshly
    /// started pass: chunk `l` of `num_layers` becomes eligible as the
    /// pass proportionally produces layer `l`, so the transfer overlaps
    /// the remaining prefill compute.
    fn start_streams(&mut self, i: usize, now: SimTime, duration: SimDuration) {
        let now_us = now.as_micros();
        let end_us = now_us + duration.as_micros();
        let chunks = self.num_layers.max(1);
        let first_at = now_us + (end_us - now_us).div_ceil(u64::from(chunks));
        let aging_cap = match self.queue_order {
            QueueOrder::LeastSlackFirst { aging_cap } => aging_cap,
            _ => SimDuration::from_secs(30),
        };
        let default_deadline = self.default_deadline;
        let kv_bytes = self.kv_bytes_per_token;
        let instance = self.prefill[i].instance;
        for idx in 0..self.prefill[i].batch.len() {
            let job = &self.prefill[i].batch[idx];
            if job.generated + 1 >= job.spec.true_output_len {
                continue; // Finishes at prefill; never crosses the link.
            }
            let tokens = job.prefill_tokens();
            let bytes = tokens * kv_bytes;
            let weight = fleet::slack_share_weight(
                now,
                job.timing.arrival(),
                job.spec.deadline.or(default_deadline),
                aging_cap,
            );
            let request = job.spec.id.raw();
            let link = self
                .link
                .as_mut()
                .expect("start_streams runs in streamed mode only");
            let id = link.start_stream(
                now_us,
                StreamSpec {
                    bytes,
                    produce_start_us: now_us,
                    produce_end_us: end_us,
                    chunks,
                    weight,
                },
            );
            debug_assert_eq!(id, self.stream_slots.len());
            self.stream_slots.push(StreamSlot {
                from: i,
                tokens,
                bytes,
                start_us: first_at,
                produce_end_us: end_us,
                job: None,
            });
            self.prefill[i].batch[idx].stream = Some(id);
            // Future-stamped at the first chunk's eligibility, mirroring
            // the atomic path's slot-granted start stamp.
            fleet::emit(
                &mut self.sink,
                TraceEvent::KvTransferStart {
                    at: SimTime::from_micros(first_at),
                    instance,
                    request,
                },
            );
        }
        self.schedule_link_wake(now);
        self.emit_link_utilization(now);
    }

    /// Retains a prefilled prompt's KV in the instance's prefix cache:
    /// the session's next turn routed here skips recomputing it. Keeps
    /// the instance invariant `held + cache ≤ capacity`.
    fn cache_prefill_prefix(member: &mut PrefillMember, capacity: u64, job: &Job) {
        let held = member.held_tokens;
        let Some(store) = member.prefix.as_mut() else {
            return;
        };
        match store {
            PrefillStore::Whole(cache) => {
                let Some(id) = job.spec.prefix_id else {
                    return;
                };
                cache.insert(id.raw(), u64::from(job.spec.input_len) + 1);
            }
            PrefillStore::Blocks(blocks) => {
                if job.spec.prefix_id.is_none() && job.spec.system_prompt_id.is_none() {
                    return;
                }
                let block_tokens = blocks.block_tokens() as u32;
                blocks.insert_chain(job.spec.storable_blocks(block_tokens, job.generated));
            }
        }
        if held + store.used_tokens() > capacity {
            store.evict_down_to(capacity.saturating_sub(held));
        }
    }

    fn on_prefill_done(&mut self, now: SimTime, i: usize) {
        self.prefill[i].busy = false;
        let batch = std::mem::take(&mut self.prefill[i].batch);
        self.prefill[i].completed += batch.len();
        let capacity = self.capacity;
        let instance = self.prefill[i].instance;
        for mut job in batch {
            job.generated += 1;
            job.timing.record_token(now);
            // Prefill emits every request's first token, exactly once.
            let request = job.spec.id.raw();
            fleet::emit(
                &mut self.sink,
                TraceEvent::PrefillEnd {
                    at: now,
                    instance,
                    request,
                },
            );
            fleet::emit(
                &mut self.sink,
                TraceEvent::FirstToken {
                    at: now,
                    instance,
                    request,
                },
            );
            Self::cache_prefill_prefix(&mut self.prefill[i], capacity, &job);
            if let Some(planning) = self.planning.as_mut() {
                let ttft = job.timing.ttft().expect("first token just recorded");
                planning
                    .prefill
                    .planner
                    .on_request_finished(now, 1, ttft, SimDuration::ZERO);
            }
            if job.generated >= job.spec.true_output_len {
                // Single-token requests finish at prefill; nothing to hand
                // over.
                self.prefill[i].held_tokens -= job.prefill_tokens();
                self.finish_job(now, instance, job);
            } else if let Some(stream) = job.stream {
                // Layer-streamed: the transfer has been in flight since
                // the pass started; park the job for its `StreamDone`.
                self.stream_slots[stream].job = Some(job);
            } else {
                self.push_transfer(now, i, job);
            }
        }
        self.flush_kv_events(i, now);
        if let Some(s) = self.sink.as_deref_mut() {
            let member = &self.prefill[i];
            s.gauge(
                now,
                instance,
                GaugeKind::QueueDepth,
                member.queue.len() as f64,
            );
            s.gauge(
                now,
                instance,
                GaugeKind::KvOccupancy,
                member.held_tokens as f64 / capacity as f64,
            );
        }
        self.try_start_prefill(i, now);
        self.maybe_stop_prefill(i, now);
    }

    /// Enqueues one KV handoff on the bounded transfer link.
    fn push_transfer(&mut self, now: SimTime, from: usize, job: Job) {
        let tokens = job.prefill_tokens();
        let bytes = tokens * self.kv_bytes_per_token;
        let latency = self.transfer.latency(bytes);
        let Reverse(free_us) = self.link_free.pop().expect("fixed slot count");
        let start_us = free_us.max(now.as_micros());
        let done_us = start_us + latency.as_micros();
        self.link_free.push(Reverse(done_us));
        let wait_secs = (start_us - now.as_micros()) as f64 / 1e6;
        self.stats.transfers += 1;
        self.stats.total_bytes += bytes;
        self.stats.total_link_secs += latency.as_secs_f64();
        self.stats.total_wait_secs += wait_secs;
        self.stats.max_wait_secs = self.stats.max_wait_secs.max(wait_secs);
        if self.record {
            self.transfer_intervals.push((
                SimTime::from_micros(start_us),
                SimTime::from_micros(done_us),
            ));
        }
        // Stamped at the slot-granted start time (possibly later than
        // `now`): the span between queueing and start is decode stall.
        fleet::emit(
            &mut self.sink,
            TraceEvent::KvTransferStart {
                at: SimTime::from_micros(start_us),
                instance: self.prefill[from].instance,
                request: job.spec.id.raw(),
            },
        );
        self.schedule(
            SimTime::from_micros(done_us),
            Ev::TransferDone { from, tokens, job },
        );
    }

    fn on_transfer_done(&mut self, now: SimTime, from: usize, tokens: u64, job: Job) {
        self.prefill[from].held_tokens -= tokens;
        self.try_start_prefill(from, now);
        self.maybe_stop_prefill(from, now);
        self.handoff_to_decode(now, job);
    }

    /// Schedules a wake at the link's next projected completion, tagged
    /// with the current generation; a join in the meantime bumps the
    /// generation, so the stale wake is dropped unprocessed and a fresh
    /// projection replaces it.
    fn schedule_link_wake(&mut self, now: SimTime) {
        let Some(link) = self.link.as_ref() else {
            return;
        };
        let Some(at_us) = link.next_event_us() else {
            return;
        };
        let generation = link.generation();
        self.schedule(
            SimTime::from_micros(at_us.max(now.as_micros())),
            Ev::LinkWake { generation },
        );
    }

    fn on_link_wake(&mut self, now: SimTime, generation: u64) {
        let Some(link) = self.link.as_mut() else {
            return;
        };
        if generation != link.generation() {
            return; // Superseded by a join since this wake was scheduled.
        }
        let mut completions = std::mem::take(&mut self.stream_done_buf);
        completions.clear();
        link.advance(now.as_micros(), &mut completions);
        for done in completions.drain(..) {
            self.schedule(
                SimTime::from_micros(done.done_us.max(now.as_micros())),
                Ev::StreamDone { id: done.id },
            );
        }
        self.stream_done_buf = completions;
        self.schedule_link_wake(now);
    }

    /// A layer-streamed transfer fully lands: the source releases the
    /// held KV, the stats charge the wire time plus one *per-stream*
    /// overhead, and the job hands off to the decode pool exactly like an
    /// atomic transfer end.
    fn on_stream_done(&mut self, now: SimTime, id: usize) {
        let slot = &mut self.stream_slots[id];
        let from = slot.from;
        let tokens = slot.tokens;
        let bytes = slot.bytes;
        let start_us = slot.start_us;
        let produce_end_us = slot.produce_end_us;
        let job = slot
            .job
            .take()
            .expect("a stream completes only after its prefill pass parked the job");
        let wire_secs = bytes as f64 / (self.transfer.link_gbps * 1e9);
        self.stats.transfers += 1;
        self.stats.streamed += 1;
        self.stats.total_bytes += bytes;
        self.stats.total_link_secs += wire_secs + self.transfer.per_hop_overhead.as_secs_f64();
        self.stats.total_tail_secs += now.as_micros().saturating_sub(produce_end_us) as f64 / 1e6;
        if self.record {
            self.transfer_intervals
                .push((SimTime::from_micros(start_us), now));
        }
        self.prefill[from].held_tokens -= tokens;
        self.try_start_prefill(from, now);
        self.maybe_stop_prefill(from, now);
        self.emit_link_utilization(now);
        self.handoff_to_decode(now, job);
    }

    /// Emits the shared-link utilization gauge (streamed mode only).
    /// The link is a pool-wide resource, so the gauge carries the
    /// pseudo-instance `u32::MAX` rather than any member's id.
    fn emit_link_utilization(&mut self, now: SimTime) {
        let Some(link) = self.link.as_ref() else {
            return;
        };
        let utilization = link.utilization();
        if let Some(s) = self.sink.as_deref_mut() {
            s.gauge(now, u32::MAX, GaugeKind::LinkUtilization, utilization);
        }
    }

    /// Drains member `i`'s block-store KV events (exact-index mode only):
    /// each is mirrored to the trace sink and published into the exact
    /// router index. No-op for whole-prefix stores.
    fn flush_kv_events(&mut self, i: usize, now: SimTime) {
        let Run {
            prefill,
            kv_event_scratch,
            exact_index,
            sink,
            ..
        } = self;
        let member = &mut prefill[i];
        let Some(PrefillStore::Blocks(store)) = member.prefix.as_mut() else {
            return;
        };
        if store.pending_events() == 0 {
            return;
        }
        kv_event_scratch.clear();
        store.drain_events(kv_event_scratch);
        let instance = member.instance;
        for &ev in kv_event_scratch.iter() {
            fleet::emit(
                sink,
                match ev {
                    KvEvent::Stored { block, .. } => TraceEvent::KvStored {
                        at: now,
                        instance,
                        block,
                    },
                    KvEvent::Removed { block } => TraceEvent::KvRemoved {
                        at: now,
                        instance,
                        block,
                    },
                },
            );
        }
        if let Some(index) = exact_index.as_mut() {
            let now_us = now.as_micros();
            for &ev in kv_event_scratch.iter() {
                index.publish(i as u32, ev, now_us);
            }
        }
    }

    /// Routes a landed KV handoff onto the decode pool — shared by the
    /// atomic and streamed paths, so both modes admit to decode through
    /// byte-identical logic.
    fn handoff_to_decode(&mut self, now: SimTime, job: Job) {
        if let Some(planning) = self.planning.as_mut() {
            planning
                .decode
                .planner
                .on_request_arrival(now, job.spec.input_len);
        }
        let n = self.decode.len();
        let target = pick_rotating_min(
            self.decode
                .iter()
                .enumerate()
                .filter(|(_, m)| m.core.is_live())
                .map(|(j, m)| (j, m.load_signal() as f64 / m.core.gpu.perf_scale)),
            &mut self.decode_cursor,
            n,
        )
        .expect("at least one live decode instance");
        let member = &mut self.decode[target];
        member.core.routed += 1;
        member.pending_reserved += job.final_footprint();
        // The transfer end carries the *receiving decode* instance: the
        // request's decode phase runs there from this point on.
        fleet::emit(
            &mut self.sink,
            TraceEvent::KvTransferEnd {
                at: now,
                instance: member.instance,
                request: job.spec.id.raw(),
            },
        );
        member.pending.push_back(job);
        self.try_start_decode(target, now);
    }

    /// Orders a decode member's pending handoffs least-slack-first
    /// against the end-to-end deadline. A handoff lands here only after
    /// its prefill finished *and* its KV transfer completed, so `waited`
    /// — and therefore the slack ranking — already charges the transfer
    /// latency. The grouping is the shared [`fleet::slack_rank_key`]:
    /// aged jobs oldest first, then ascending slack, then deadline-less
    /// jobs oldest first (stable, hence deterministic). A handoff whose
    /// end-to-end deadline has already passed saturates to zero slack and
    /// ranks *most* urgent — deliberately: it streamed its first token at
    /// prefill, so cancellation is off the table (the client is
    /// mid-response), and the most overdue client resumes soonest —
    /// mirroring the engine queue's preempted-work-first group.
    fn rank_pending_by_slack(
        pending: &mut VecDeque<Job>,
        now: SimTime,
        aging_cap: SimDuration,
        default_deadline: Option<SimDuration>,
    ) {
        if pending.len() < 2 {
            return;
        }
        pending.make_contiguous().sort_by_key(|job| {
            fleet::slack_rank_key(
                now,
                job.timing.arrival(),
                job.spec.deadline.or(default_deadline),
                aging_cap,
            )
        });
    }

    /// Admits pending handoffs and starts one decode step on member `j` if
    /// it is idle with a non-empty batch.
    ///
    /// Admission uses the paper's future-required-memory estimate (Eq.
    /// 2–4) on ground-truth remaining lengths: a handoff joins the batch
    /// only when the batch's *peak* future footprint — not its worst-case
    /// sum — stays within capacity. Exact lengths make the estimate an
    /// oracle, so admitted requests are never evicted, while packing the
    /// batch far denser than a conservative full-reservation rule. Under
    /// [`QueueOrder::LeastSlackFirst`] the pending handoffs are ranked by
    /// remaining end-to-end slack before admission, so the most urgent
    /// request joins the batch (and resumes token emission) first.
    fn try_start_decode(&mut self, j: usize, now: SimTime) {
        let capacity = self.capacity;
        let perf = self.perf;
        let queue_order = self.queue_order;
        let default_deadline = self.default_deadline;
        let member = &mut self.decode[j];
        if member.busy || !member.core.is_active() {
            return;
        }
        if let QueueOrder::LeastSlackFirst { aging_cap } = queue_order {
            Self::rank_pending_by_slack(&mut member.pending, now, aging_cap, default_deadline);
        }
        // Probe each pending handoff through the member's admission
        // index: every probe is one binary search returning exactly the
        // Eq. 2–4 peak a fresh clone-and-sort would (`M*` is invariant to
        // how equal-`remaining` entries tie-break — the later of two tied
        // positions always dominates — so the index's insertion position
        // is as good as any sort's). An accepted candidate folds into the
        // index at that same position, so the batch is never re-sorted.
        while let Some(front) = member.pending.front() {
            let candidate = front.batch_entry();
            if member.admit_index.peak_with(candidate, member.index_steps) > capacity {
                break;
            }
            let job = member.pending.pop_front().expect("peeked");
            member.pending_reserved -= job.final_footprint();
            member.running_kv += job.kv_tokens();
            member.admit_index.admit(candidate, member.index_steps);
            member.index_steps = 0;
            member.running.push(job);
        }
        if member.running.is_empty() {
            return;
        }
        let batch = member.running.len() as u64;
        debug_assert_eq!(
            member.running_kv,
            member.running.iter().map(Job::kv_tokens).sum::<u64>()
        );
        let kv_tokens = member.running_kv;
        member.busy = true;
        let duration = member
            .core
            .gpu
            .scale_step(perf.decode_step(batch, kv_tokens));
        self.schedule(now + duration, Ev::DecodeDone(j));
    }

    fn on_decode_done(&mut self, now: SimTime, j: usize) {
        self.decode[j].busy = false;
        let instance = self.decode[j].instance;
        let mut finished = std::mem::take(&mut self.scratch_finished);
        finished.clear();
        {
            let member = &mut self.decode[j];
            // One coalesced decode event per batch tick (every running job
            // grew by one token this step).
            let emitters = member.running.len() as u32;
            if emitters > 0 {
                fleet::emit(
                    &mut self.sink,
                    TraceEvent::DecodeStep {
                        at: now,
                        instance,
                        batch: emitters,
                    },
                );
            }
            // Every running job grew by one KV token this step; finished
            // jobs then take their (post-step) residency with them.
            member.running_kv += member.running.len() as u64;
            let mut k = 0;
            while k < member.running.len() {
                let job = &mut member.running[k];
                job.generated += 1;
                job.timing.record_token(now);
                if job.generated >= job.spec.true_output_len {
                    let job = member.running.remove(k);
                    member.running_kv -= job.kv_tokens();
                    finished.push(job);
                } else {
                    k += 1;
                }
            }
            member.completed += finished.len();
            if finished.is_empty() {
                // Membership unchanged: the admission index stays valid,
                // one synchronized step further along.
                member.index_steps += 1;
            } else {
                // Jobs finishing this step are exactly the index entries
                // whose remaining length hits zero at `index_steps + 1` —
                // the tail of the Eq. 2 order. Retiring them in place
                // keeps the index exact without re-sorting the batch.
                let retired = member.admit_index.retire_due(member.index_steps + 1);
                debug_assert_eq!(retired, finished.len());
                member.index_steps = 0;
            }
        }
        if let Some(s) = self.sink.as_deref_mut() {
            let member = &self.decode[j];
            let kv_tokens = member.running_kv;
            s.gauge(
                now,
                instance,
                GaugeKind::BatchSize,
                member.running.len() as f64,
            );
            s.gauge(
                now,
                instance,
                GaugeKind::KvOccupancy,
                kv_tokens as f64 / self.capacity as f64,
            );
        }
        for job in finished.drain(..) {
            if let Some(planning) = self.planning.as_mut() {
                let ttft = job.timing.ttft().expect("completed with tokens");
                planning.decode.planner.on_request_finished(
                    now,
                    job.generated,
                    ttft,
                    job.timing.avg_tpot(),
                );
            }
            self.finish_job(now, instance, job);
        }
        self.scratch_finished = finished;
        self.try_start_decode(j, now);
        self.maybe_stop_decode(j, now);
    }

    fn on_ready(&mut self, now: SimTime, pool: PoolKind, member: usize) {
        let core = match pool {
            PoolKind::Prefill => &mut self.prefill[member].core,
            PoolKind::Decode => &mut self.decode[member].core,
        };
        if matches!(core.state, MemberState::Warming { .. }) {
            core.state = MemberState::Live;
            self.record_fleet(now);
        }
    }

    /// Pending repurpose claims: draining prefill members the decode pool
    /// owns but which have not flipped yet. The decode planner counts
    /// them as capacity already ordered.
    fn claimed_repurposes(&self) -> usize {
        self.prefill
            .iter()
            .filter(|m| m.repurpose_claimed && m.core.stopped_at.is_none())
            .count()
    }

    /// Pending reverse claims: draining decode members the prefill pool
    /// owns but which have not flipped yet (the mirror of
    /// [`Run::claimed_repurposes`]).
    fn claimed_decode_repurposes(&self) -> usize {
        self.decode
            .iter()
            .filter(|m| m.repurpose_claimed && m.core.stopped_at.is_none())
            .count()
    }

    fn maybe_stop_prefill(&mut self, i: usize, now: SimTime) {
        let member = &mut self.prefill[i];
        if !(member.core.state == MemberState::Draining
            && !member.busy
            && member.queue.is_empty()
            && member.batch.is_empty()
            && member.held_tokens == 0)
        {
            return;
        }
        let gpu = member.core.gpu;
        let claimed = std::mem::take(&mut member.repurpose_claimed);
        member.core.stop(now);
        // A stopping member's cached blocks vanish with it: publish the
        // removals so the exact router index stops crediting the ghost.
        if let Some(store) = self.prefill[i].prefix.as_mut() {
            store.evict_down_to(0);
        }
        self.flush_kv_events(i, now);
        if claimed {
            // The flip: the member leaves the prefill ledger and re-spawns
            // in the decode pool at the same instant, with its KV pool
            // reset and only the short repurpose delay before it serves
            // (the weights are already resident). The decode planner sees
            // it as ordinary warming capacity.
            let delay = self
                .repurpose_delay
                .expect("claims only exist with repurposing enabled");
            let from_instance = self.prefill[i].instance;
            let decode_member = self.decode.len();
            self.spawn_decode(now, delay, gpu);
            // The flipped member serves a new role on a new track: it gets
            // a fresh decode-side instance id, linked by this event.
            fleet::emit(
                &mut self.sink,
                TraceEvent::Repurposed {
                    at: now,
                    from_instance,
                    to_instance: self.decode[decode_member].instance,
                },
            );
            self.repurposes.push(RepurposeEvent {
                at: now,
                direction: RepurposeDirection::PrefillToDecode,
                prefill_member: i,
                decode_member,
            });
        }
        self.record_fleet(now);
    }

    fn maybe_stop_decode(&mut self, j: usize, now: SimTime) {
        let member = &mut self.decode[j];
        if !(member.core.state == MemberState::Draining
            && !member.busy
            && member.running.is_empty()
            && member.pending.is_empty())
        {
            return;
        }
        let gpu = member.core.gpu;
        let claimed = std::mem::take(&mut member.repurpose_claimed);
        member.core.stop(now);
        if claimed {
            // The reverse flip: a drained decode member re-spawns in the
            // prefill pool after the short repurpose delay — the mirror of
            // the prefill→decode flip in [`Run::maybe_stop_prefill`], so
            // pools rebalance through both phases of a diurnal day.
            let delay = self
                .repurpose_delay
                .expect("claims only exist with repurposing enabled");
            let from_instance = self.decode[j].instance;
            let prefill_member = self.prefill.len();
            self.spawn_prefill(now, delay, gpu);
            fleet::emit(
                &mut self.sink,
                TraceEvent::Repurposed {
                    at: now,
                    from_instance,
                    to_instance: self.prefill[prefill_member].instance,
                },
            );
            self.repurposes.push(RepurposeEvent {
                at: now,
                direction: RepurposeDirection::DecodeToPrefill,
                prefill_member,
                decode_member: j,
            });
        }
        self.record_fleet(now);
    }

    fn finish_job(&mut self, now: SimTime, instance: u32, job: Job) {
        if self.sink.is_some() {
            let sla_ok = self.sla.evaluate(&job.timing).is_satisfied();
            fleet::emit(
                &mut self.sink,
                TraceEvent::Finished {
                    at: now,
                    instance,
                    request: job.spec.id.raw(),
                    sla_ok,
                },
            );
        }
        self.remaining -= 1;
        self.outcomes.push(RequestOutcome {
            id: job.spec.id.raw(),
            input_len: job.spec.input_len,
            output_len: job.generated,
            timing: job.timing,
            evictions: 0,
        });
    }

    /// One planning round: each pool's planner decides independently. The
    /// prefill decision runs first so a decode scale-up in the same round
    /// can claim its freshly draining victims; the prefill victims'
    /// idle-stop check is deferred until after the decode decision, so an
    /// already-idle victim flips immediately instead of stopping cold.
    fn on_plan(&mut self, now: SimTime) {
        let Some(mut planning) = self.planning.take() else {
            return;
        };
        planning.next_plan = now + planning.interval;
        let prefill_drained = self.plan_pool(PoolKind::Prefill, now, &mut planning);
        let decode_drained = self.plan_pool(PoolKind::Decode, now, &mut planning);
        for victim in decode_drained {
            self.maybe_stop_decode(victim, now);
        }
        for victim in prefill_drained {
            self.maybe_stop_prefill(victim, now);
        }
        self.record_fleet(now);
        if self.remaining > 0 {
            let at = planning.next_plan;
            self.planning = Some(planning);
            self.schedule(at, Ev::Plan);
        } else {
            self.planning = Some(planning);
        }
    }

    /// Runs one pool's planner and applies its decision, returning the
    /// members newly marked draining (their idle-stop check is the
    /// caller's, after both pools have decided).
    fn plan_pool(&mut self, pool: PoolKind, now: SimTime, planning: &mut Planning) -> Vec<usize> {
        let (live, mut warming) = match pool {
            PoolKind::Prefill => fleet::pool_counts(&self.prefill),
            PoolKind::Decode => fleet::pool_counts(&self.decode),
        };
        // Claimed-but-not-flipped repurposes are capacity the pool has
        // already ordered (in either direction).
        warming += match pool {
            PoolKind::Decode => self.claimed_repurposes(),
            PoolKind::Prefill => self.claimed_decode_repurposes(),
        };
        let effective = live + warming;
        if effective == 0 {
            return Vec::new();
        }
        let pool_planner = match pool {
            PoolKind::Prefill => &mut planning.prefill,
            PoolKind::Decode => &mut planning.decode,
        };
        // Refresh the planner's candidate-fleet scales from the members
        // each size would actually keep (drains remove the costliest
        // first; claimed repurposes are approximated by the slot types
        // they would otherwise have spawned into).
        let slots = match pool {
            PoolKind::Prefill => &self.prefill_slots,
            PoolKind::Decode => &self.decode_slots,
        };
        if !slots.is_empty() {
            let max = pool_planner.planner.config().policy.max_replicas;
            let scales = match pool {
                PoolKind::Prefill => fleet::candidate_perf_scales(&self.prefill, slots, max),
                PoolKind::Decode => fleet::candidate_perf_scales(&self.decode, slots, max),
            };
            pool_planner.planner.update_slot_perf_scales(scales);
        }
        let outcome = pool_planner.planner.plan(now, live, warming);
        let warmup = pool_planner.warmup;
        let target = outcome.decision.target_or(effective);
        let drained = self.apply_decision(pool, now, outcome.decision, warmup);
        if target != effective {
            let obs_pool = match pool {
                PoolKind::Prefill => Pool::Prefill,
                PoolKind::Decode => Pool::Decode,
            };
            fleet::emit_scale(&mut self.sink, now, obs_pool, effective, target);
            let events = match pool {
                PoolKind::Prefill => &mut self.prefill_scaling,
                PoolKind::Decode => &mut self.decode_scaling,
            };
            events.push(ScalingEvent {
                at: now,
                from: effective,
                to: target,
            });
        }
        drained
    }

    /// Applies one pool's scaling decision: scale-ups spawn warming
    /// instances (a decode scale-up claims draining prefill members first
    /// when repurposing is enabled), scale-downs run the fleet kernel's
    /// cancel-then-drain pass ([`fleet::shrink_pool`]). Returns the
    /// members newly marked draining.
    fn apply_decision(
        &mut self,
        pool: PoolKind,
        now: SimTime,
        decision: ScalingDecision,
        warmup: SimDuration,
    ) -> Vec<usize> {
        let (live, mut warming) = match pool {
            PoolKind::Prefill => fleet::pool_counts(&self.prefill),
            PoolKind::Decode => fleet::pool_counts(&self.decode),
        };
        warming += match pool {
            PoolKind::Decode => self.claimed_repurposes(),
            PoolKind::Prefill => self.claimed_decode_repurposes(),
        };
        let effective = live + warming;
        match decision {
            ScalingDecision::ScaleUp { target } if target > effective => {
                let mut need = target - effective;
                if self.repurpose_delay.is_some() {
                    need -= match pool {
                        PoolKind::Decode => self.claim_repurposes(need),
                        PoolKind::Prefill => self.claim_decode_repurposes(need),
                    };
                }
                for _ in 0..need {
                    match pool {
                        PoolKind::Prefill => {
                            let gpu = slot_gpu(
                                &self.prefill_slots,
                                fleet::provisioned_count(&self.prefill),
                            );
                            self.spawn_prefill(now, warmup, gpu);
                        }
                        PoolKind::Decode => {
                            let gpu = slot_gpu(
                                &self.decode_slots,
                                fleet::provisioned_count(&self.decode),
                            );
                            self.spawn_decode(now, warmup, gpu);
                        }
                    }
                }
                Vec::new()
            }
            ScalingDecision::ScaleDown { target } if target < effective => {
                let mut excess = effective - target;
                // Un-claim pending repurposes first: they have not
                // started costing this pool anything yet.
                match pool {
                    PoolKind::Decode => {
                        for i in (0..self.prefill.len()).rev() {
                            if excess == 0 {
                                break;
                            }
                            if self.prefill[i].repurpose_claimed
                                && self.prefill[i].core.stopped_at.is_none()
                            {
                                self.prefill[i].repurpose_claimed = false;
                                excess -= 1;
                            }
                        }
                    }
                    PoolKind::Prefill => {
                        for j in (0..self.decode.len()).rev() {
                            if excess == 0 {
                                break;
                            }
                            if self.decode[j].repurpose_claimed
                                && self.decode[j].core.stopped_at.is_none()
                            {
                                self.decode[j].repurpose_claimed = false;
                                excess -= 1;
                            }
                        }
                    }
                }
                if excess == 0 {
                    return Vec::new();
                }
                // Claims reduced `excess` above; re-express the target
                // over the pool's actual members only.
                match pool {
                    PoolKind::Prefill => {
                        let (p_live, p_warming) = fleet::pool_counts(&self.prefill);
                        let member_target = (p_live + p_warming).saturating_sub(excess);
                        fleet::shrink_pool(&mut self.prefill, member_target, now)
                    }
                    PoolKind::Decode => {
                        let (d_live, d_warming) = fleet::pool_counts(&self.decode);
                        let member_target = (d_live + d_warming).saturating_sub(excess);
                        fleet::shrink_pool(&mut self.decode, member_target, now)
                    }
                }
            }
            _ => Vec::new(),
        }
    }

    /// Claims up to `need` draining, unclaimed prefill members for the
    /// decode pool (least-loaded first: they flip soonest). Returns how
    /// many were claimed.
    fn claim_repurposes(&mut self, need: usize) -> usize {
        let mut candidates: Vec<(u64, usize)> = self
            .prefill
            .iter()
            .enumerate()
            .filter(|(_, m)| m.core.state == MemberState::Draining && !m.repurpose_claimed)
            .map(|(i, m)| (m.load_signal(), i))
            .collect();
        candidates.sort_unstable();
        let claimed = candidates.len().min(need);
        for &(_, i) in candidates.iter().take(claimed) {
            self.prefill[i].repurpose_claimed = true;
        }
        claimed
    }

    /// Claims up to `need` draining, unclaimed decode members for the
    /// prefill pool (least-loaded first: they flip soonest). Returns how
    /// many were claimed.
    fn claim_decode_repurposes(&mut self, need: usize) -> usize {
        let mut candidates: Vec<(u64, usize)> = self
            .decode
            .iter()
            .enumerate()
            .filter(|(_, m)| m.core.state == MemberState::Draining && !m.repurpose_claimed)
            .map(|(j, m)| (m.load_signal(), j))
            .collect();
        candidates.sort_unstable();
        let claimed = candidates.len().min(need);
        for &(_, j) in candidates.iter().take(claimed) {
            self.decode[j].repurpose_claimed = true;
        }
        claimed
    }

    fn finish(mut self) -> DisaggReport {
        let end = self.clock;
        self.record_fleet(end);
        let instance_report = |core: &MemberCore, completed: usize| PoolInstanceReport {
            spawned_at: core.spawned_at,
            stopped_at: core.stopped_at.unwrap_or(end),
            gpu: core.gpu,
            routed: core.routed,
            completed,
        };
        let prefill = PoolReport {
            instances: self
                .prefill
                .iter()
                .map(|m| instance_report(&m.core, m.completed))
                .collect(),
            events: self.prefill_scaling,
        };
        let decode = PoolReport {
            instances: self
                .decode
                .iter()
                .map(|m| instance_report(&m.core, m.completed))
                .collect(),
            events: self.decode_scaling,
        };
        let makespan = end.saturating_since(SimTime::ZERO);
        let requests: Vec<(RequestTiming, u64)> = self
            .outcomes
            .iter()
            .map(|o| (o.timing, u64::from(o.output_len)))
            .collect();
        let goodput =
            GoodputReport::compute_with_timeouts(&self.sla, &requests, makespan, self.timed_out);
        let mut prefix_stats = PrefixCacheStats::default();
        for member in &self.prefill {
            if let Some(cache) = &member.prefix {
                prefix_stats.merge(&cache.stats());
            }
        }
        DisaggReport {
            goodput,
            makespan,
            unserved: self.remaining,
            timed_out: self.timed_out,
            prefill,
            decode,
            repurposes: self.repurposes,
            prefix_stats,
            transfers: self.stats,
            pool_series: self.series,
            transfer_intervals: self.transfer_intervals,
            outcomes: self.outcomes,
        }
    }
}

/// Aggregate KV-transfer statistics of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransferStats {
    /// Completed handoffs.
    pub transfers: usize,
    /// Total KV bytes moved.
    pub total_bytes: u64,
    /// Total pure link time (bandwidth + overhead), in seconds.
    pub total_link_secs: f64,
    /// Total time handoffs waited for one of the bounded in-flight slots.
    /// Always zero under [`TransferMode::LayerStreamed`] — the shared
    /// link admits every stream immediately at a proportional rate.
    pub total_wait_secs: f64,
    /// Longest single wait for a slot.
    pub max_wait_secs: f64,
    /// Transfers carried by layer streaming (a subset of `transfers`).
    #[cfg_attr(feature = "serde", serde(default))]
    pub streamed: usize,
    /// Total streamed transfer time landing *after* the producing prefill
    /// pass ended (the un-hidden tail), in seconds. Zero in atomic mode.
    #[cfg_attr(feature = "serde", serde(default))]
    pub total_tail_secs: f64,
}

impl TransferStats {
    /// Mean end-to-end handoff latency (slot wait + link), in seconds.
    pub fn mean_handoff_secs(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            (self.total_wait_secs + self.total_link_secs) / self.transfers as f64
        }
    }
}

/// One pool instance's lifetime, for reports.
#[derive(Debug, Clone, Copy)]
pub struct PoolInstanceReport {
    /// When the instance was provisioned.
    pub spawned_at: SimTime,
    /// When it stopped costing GPU time (run end for instances still up).
    pub stopped_at: SimTime,
    /// The accelerator this instance ran on.
    pub gpu: GpuType,
    /// Requests routed to it.
    pub routed: usize,
    /// Stage completions it performed (prefill passes finished / requests
    /// fully decoded).
    pub completed: usize,
}

impl PoolInstanceReport {
    /// GPU time this instance was provisioned for, in seconds.
    pub fn active_secs(&self) -> f64 {
        self.stopped_at
            .saturating_since(self.spawned_at)
            .as_secs_f64()
    }

    /// Provisioned seconds weighted by the instance's GPU cost.
    pub fn cost_weighted_secs(&self) -> f64 {
        self.active_secs() * self.gpu.cost_weight
    }
}

/// Per-pool result of a disaggregated run.
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// Per-instance lifetimes, in spawn order.
    pub instances: Vec<PoolInstanceReport>,
    /// Pool-size changes the planner made (empty for fixed pools).
    pub events: Vec<ScalingEvent>,
}

impl PoolReport {
    /// Total GPU-seconds provisioned in this pool.
    pub fn gpu_seconds(&self) -> f64 {
        self.instances
            .iter()
            .map(PoolInstanceReport::active_secs)
            .sum()
    }

    /// Total cost-weighted GPU-seconds provisioned in this pool.
    pub fn cost_weighted_gpu_seconds(&self) -> f64 {
        self.instances
            .iter()
            .map(PoolInstanceReport::cost_weighted_secs)
            .sum()
    }
}

/// Aggregate result of a disaggregated cluster run.
#[derive(Debug)]
pub struct DisaggReport {
    /// Cluster-level goodput over all completed requests.
    pub goodput: GoodputReport,
    /// Run end time.
    pub makespan: SimDuration,
    /// Requests that never completed (zero unless the run was cut short).
    pub unserved: usize,
    /// Requests cancelled because their deadline expired before their
    /// prefill started.
    pub timed_out: usize,
    /// The prefill pool.
    pub prefill: PoolReport,
    /// The decode pool.
    pub decode: PoolReport,
    /// Cross-pool repurposing flips, in flip order (empty with
    /// repurposing disabled).
    pub repurposes: Vec<RepurposeEvent>,
    /// Prefix-cache statistics merged across prefill instances (all zero
    /// when caches are disabled).
    pub prefix_stats: PrefixCacheStats,
    /// KV-transfer statistics.
    pub transfers: TransferStats,
    /// Per-pool live/provisioned replica counts over time
    /// (`prefill-live`, `prefill-provisioned`, `decode-live`,
    /// `decode-provisioned`).
    pub pool_series: SeriesGroup,
    /// `(start, end)` of every transfer when the base config records
    /// series (used to verify the in-flight bound).
    pub transfer_intervals: Vec<(SimTime, SimTime)>,
    /// Per-request outcomes in completion order.
    pub outcomes: Vec<RequestOutcome>,
}

impl DisaggReport {
    /// Total completed requests.
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }

    /// Fraction of requests satisfying the full SLA (timed-out requests
    /// count as misses).
    pub fn sla_attainment(&self) -> f64 {
        self.goodput.satisfied_fraction()
    }

    /// Fraction of requests whose TTFT met the SLA (the prefill pool's
    /// objective; timed-out requests count as misses).
    pub fn ttft_attainment(&self) -> f64 {
        self.goodput.ttft_attainment()
    }

    /// SLA-satisfying output tokens per second over the makespan.
    pub fn goodput_tok_per_s(&self) -> f64 {
        self.goodput.goodput_tok_per_s
    }

    /// Total GPU-seconds provisioned across both pools.
    pub fn gpu_seconds(&self) -> f64 {
        self.prefill.gpu_seconds() + self.decode.gpu_seconds()
    }

    /// Total cost-weighted GPU-seconds across both pools — the objective
    /// heterogeneous fleets compete on (equals
    /// [`DisaggReport::gpu_seconds`] for homogeneous weight-1.0 fleets).
    pub fn cost_weighted_gpu_seconds(&self) -> f64 {
        self.prefill.cost_weighted_gpu_seconds() + self.decode.cost_weighted_gpu_seconds()
    }

    /// Largest number of simultaneously provisioned prefill replicas.
    pub fn peak_prefill_replicas(&self) -> usize {
        self.pool_series
            .get("prefill-provisioned")
            .and_then(|s| s.max_value())
            .unwrap_or(0.0) as usize
    }

    /// Largest number of simultaneously provisioned decode replicas.
    pub fn peak_decode_replicas(&self) -> usize {
        self.pool_series
            .get("decode-provisioned")
            .and_then(|s| s.max_value())
            .unwrap_or(0.0) as usize
    }
}
