//! Disaggregated prefill/decode serving: separate instance pools joined by
//! a KV-transfer link (DistServe / NVIDIA-Dynamo-style).
//!
//! A colocated engine runs prefill and decode on the same GPU, so the two
//! stages interfere: prompt passes stall token emission (MTPOT), and the
//! decode batch's KV residency starves prompt admission (TTFT). This module
//! splits them. **Prefill instances** serve a FIFO queue of prompts in
//! batched whole-prompt passes and emit each request's *first* token;
//! **decode instances** run continuous-batching token generation for
//! requests whose KV cache has been handed over, admitting handoffs by the
//! paper's future-required-memory estimate (Eq. 2–4 on ground-truth
//! lengths — an oracle, so the decode batch packs densely yet never
//! evicts). The pools scale (and in the elastic variant autoscale)
//! independently, each against the SLA term its stage controls: prefill
//! against TTFT, decode against TPOT.
//!
//! # The KV-transfer cost model
//!
//! Moving a request between pools means moving its KV cache. The cost
//! model ([`KvTransferSpec`]) charges, per handoff,
//!
//! ```text
//! bytes   = (input_len + 1) × kv_bytes_per_token(model)
//!         = (input_len + 1) × 2 · layers · kv_heads · head_dim · 2
//! latency = bytes / (link_gbps × 1e9)  +  per_hop_overhead
//! ```
//!
//! where `input_len + 1` counts the prompt plus the first generated token,
//! `link_gbps` is the prefill→decode interconnect bandwidth (NVLink ≈ 200
//! GB/s, PCIe 4.0 x16 ≈ 25 GB/s) and `per_hop_overhead` models connection
//! setup, layer-wise descriptor exchange and scheduler hops. The latency
//! is charged **between prefill completion and the first decode step**: it
//! widens the gap between a request's first and second tokens (an MTPOT
//! term), never its TTFT.
//!
//! Transfers share a handoff queue with at most
//! [`KvTransferSpec::max_inflight`] transfers in flight; excess handoffs
//! wait for a slot in FIFO order. A prefill instance keeps the request's
//! KV resident (and charged against its capacity) until the transfer
//! completes, so a saturated link backpressures prompt admission exactly
//! as it would in a real deployment.
//!
//! # Elastic variant
//!
//! [`ElasticDisaggCluster`] reuses the warm-up/drain lifecycle of
//! [`crate::elastic`]: scale-ups provision instances that serve only after
//! a warm-up delay, scale-downs cancel warming instances first and then
//! drain live ones (they finish their work, transfer everything out and
//! stop costing GPU-seconds). One [`AutoscalePlanner`] per pool — built
//! with [`pf_autoscale::PoolRole::Prefill`] / [`PoolRole::Decode`] — sizes
//! the pools independently.
//!
//! The run is fully deterministic: one global event heap orders arrivals,
//! step completions, transfers and planning rounds, with a monotone
//! sequence number breaking timestamp ties.
//!
//! # Example
//!
//! ```
//! use pf_core::SchedulerConfig;
//! use pf_metrics::SimTime;
//! use pf_sim::disagg::{DisaggCluster, DisaggConfig};
//! use pf_sim::{GpuSpec, ModelSpec, SimConfig};
//! use pf_workload::{datasets, LengthSampler};
//!
//! let base = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
//!     .capacity_override(12_000)
//!     .build();
//! let input = LengthSampler::uniform(256, 1024);
//! let output = LengthSampler::uniform(8, 64);
//! let requests = datasets::from_samplers(40, 1, &input, &output, 64);
//! let arrivals = (0..40).map(|i| SimTime::from_millis(250 * i)).collect();
//! let report = DisaggCluster::new(DisaggConfig::new(base), 1, 1)
//!     .run(requests, arrivals)?;
//! assert_eq!(report.completed(), 40);
//! assert!(report.transfers.transfers > 0);
//! # Ok::<(), pf_sim::SimError>(())
//! ```

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};

use pf_autoscale::{AutoscaleConfig, AutoscalePlanner, PoolRole, ScalingDecision, StepLatency};
use pf_core::{BatchEntry, FutureMemoryEstimator};
use pf_kvcache::{PrefixCache, PrefixCacheStats};
use pf_metrics::{GoodputReport, RequestTiming, SeriesGroup, SimDuration, SimTime, SlaSpec};
use pf_workload::RequestSpec;

use crate::cluster::{pick_rotating_min, pick_routed, RouteCandidate, RouterPolicy};
use crate::config::{PrefixCacheConfig, SimConfig};
use crate::elastic::{MemberState, ScalingEvent};
use crate::error::SimError;
use crate::perf::PerfModel;
use crate::report::RequestOutcome;

/// The KV-transfer cost model between the prefill and decode pools (see
/// the module docs for the formula).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KvTransferSpec {
    /// Effective prefill→decode link bandwidth in GB/s.
    pub link_gbps: f64,
    /// Fixed per-transfer overhead (connection setup, descriptor hops).
    pub per_hop_overhead: SimDuration,
    /// Maximum simultaneously in-flight transfers; excess handoffs queue
    /// FIFO for a slot.
    pub max_inflight: usize,
}

impl KvTransferSpec {
    /// Creates a transfer spec, validating the parameters.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not finite and positive or
    /// `max_inflight` is zero.
    pub fn new(link_gbps: f64, per_hop_overhead: SimDuration, max_inflight: usize) -> Self {
        assert!(
            link_gbps.is_finite() && link_gbps > 0.0,
            "invalid link bandwidth {link_gbps}"
        );
        assert!(max_inflight > 0, "need at least one in-flight transfer");
        KvTransferSpec {
            link_gbps,
            per_hop_overhead,
            max_inflight,
        }
    }

    /// NVLink-class interconnect (≈200 GB/s, 50 µs overhead, 8 slots).
    pub fn nvlink() -> Self {
        KvTransferSpec::new(200.0, SimDuration::from_micros(50), 8)
    }

    /// PCIe 4.0 x16 interconnect (≈25 GB/s, 200 µs overhead, 4 slots).
    pub fn pcie4() -> Self {
        KvTransferSpec::new(25.0, SimDuration::from_micros(200), 4)
    }

    /// Pure link latency for one transfer of `bytes` (excluding slot
    /// queueing).
    pub fn latency(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / (self.link_gbps * 1e9)) + self.per_hop_overhead
    }
}

/// Configuration of a disaggregated deployment: one replica type (model,
/// GPU, capacity, SLA — all from the embedded [`SimConfig`]) split into
/// two pools joined by a [`KvTransferSpec`] link.
#[derive(Debug, Clone)]
pub struct DisaggConfig {
    /// Replica description shared by both pools (scheduler settings are
    /// unused — the pools run stage-specific loops; a
    /// [`SimConfig::prefix_cache`] setting is honoured on the prefill
    /// pool, where hits shrink prefill passes directly).
    pub base: SimConfig,
    /// The prefill→decode KV-transfer link.
    pub transfer: KvTransferSpec,
    /// *Computed* prompt tokens batched into one prefill pass at most
    /// (prefix-cache hits shrink a prompt's computed tokens, letting more
    /// prompts share a pass at the same per-pass cost).
    pub max_prefill_batch_tokens: u64,
    /// Front-end routing policy over the prefill pool.
    /// [`RouterPolicy::PrefixAffinity`] steers requests to the prefill
    /// instance caching the longest prefix of their prompt;
    /// [`RouterPolicy::RoundRobin`] rotates; every other policy routes by
    /// the pool's load signal (queued plus held prompt tokens). All exact
    /// ties break with a rotating cursor.
    pub router: RouterPolicy,
}

impl DisaggConfig {
    /// Wraps a replica configuration with NVLink transfer defaults and an
    /// 8k-token prefill batch budget.
    pub fn new(base: SimConfig) -> Self {
        DisaggConfig {
            base,
            transfer: KvTransferSpec::nvlink(),
            max_prefill_batch_tokens: 8_192,
            router: RouterPolicy::LeastEstimatedLoad,
        }
    }

    /// Sets the KV-transfer link.
    pub fn transfer(mut self, transfer: KvTransferSpec) -> Self {
        self.transfer = transfer;
        self
    }

    /// Sets the prefill batch budget in prompt tokens.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is zero.
    pub fn prefill_batch_tokens(mut self, tokens: u64) -> Self {
        assert!(tokens > 0, "prefill batch budget must be positive");
        self.max_prefill_batch_tokens = tokens;
        self
    }

    /// Sets the prefill-pool routing policy.
    pub fn router(mut self, router: RouterPolicy) -> Self {
        self.router = router;
        self
    }
}

/// A disaggregated cluster with *fixed* pool sizes.
#[derive(Debug)]
pub struct DisaggCluster {
    config: DisaggConfig,
    prefill_instances: usize,
    decode_instances: usize,
}

impl DisaggCluster {
    /// Creates a cluster with `prefill_instances` + `decode_instances`
    /// fixed replicas.
    ///
    /// # Panics
    ///
    /// Panics if either pool is empty.
    pub fn new(config: DisaggConfig, prefill_instances: usize, decode_instances: usize) -> Self {
        assert!(prefill_instances > 0, "prefill pool needs an instance");
        assert!(decode_instances > 0, "decode pool needs an instance");
        DisaggCluster {
            config,
            prefill_instances,
            decode_instances,
        }
    }

    /// Runs the cluster against a timed arrival stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when a request cannot fit either pool.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != arrival_times.len()` or the times are
    /// not sorted.
    pub fn run(
        self,
        requests: Vec<RequestSpec>,
        arrival_times: Vec<SimTime>,
    ) -> Result<DisaggReport, SimError> {
        Run::start(
            self.config,
            self.prefill_instances,
            self.decode_instances,
            None,
            requests,
            arrival_times,
        )?
        .drive()
    }
}

/// A disaggregated cluster whose pools are independently autoscaled — the
/// prefill pool against TTFT, the decode pool against TPOT (see module
/// docs).
#[derive(Debug)]
pub struct ElasticDisaggCluster {
    config: DisaggConfig,
    prefill_autoscale: AutoscaleConfig,
    decode_autoscale: AutoscaleConfig,
    initial_prefill: usize,
    initial_decode: usize,
}

impl ElasticDisaggCluster {
    /// Creates an elastic disaggregated cluster.
    ///
    /// # Panics
    ///
    /// Panics if either initial count is zero or outside its pool's
    /// `[min, max]` bounds, or if the two pools disagree on the adjustment
    /// interval (planning rounds drive both pools on one cadence).
    pub fn new(
        config: DisaggConfig,
        prefill_autoscale: AutoscaleConfig,
        decode_autoscale: AutoscaleConfig,
        initial_prefill: usize,
        initial_decode: usize,
    ) -> Self {
        assert_eq!(
            prefill_autoscale.interval, decode_autoscale.interval,
            "pools must share one adjustment interval"
        );
        for (label, autoscale, initial) in [
            ("prefill", &prefill_autoscale, initial_prefill),
            ("decode", &decode_autoscale, initial_decode),
        ] {
            assert!(initial > 0, "{label} pool needs an instance");
            assert!(
                (autoscale.policy.min_replicas..=autoscale.policy.max_replicas).contains(&initial),
                "initial {label} replicas {} outside policy bounds [{}, {}]",
                initial,
                autoscale.policy.min_replicas,
                autoscale.policy.max_replicas
            );
        }
        ElasticDisaggCluster {
            config,
            prefill_autoscale,
            decode_autoscale,
            initial_prefill,
            initial_decode,
        }
    }

    /// Runs the elastic cluster against a timed arrival stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when a request cannot fit either pool.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != arrival_times.len()` or the times are
    /// not sorted.
    pub fn run(
        self,
        requests: Vec<RequestSpec>,
        arrival_times: Vec<SimTime>,
    ) -> Result<DisaggReport, SimError> {
        let model = PoolModel {
            perf: self.config.base.perf_model(),
            capacity_tokens: self.config.base.capacity_tokens(),
        };
        let sla = self.config.base.sla;
        let interval = self.prefill_autoscale.interval;
        let planning = Planning {
            prefill: PoolPlanner {
                warmup: self.prefill_autoscale.warmup,
                planner: AutoscalePlanner::with_role(
                    self.prefill_autoscale,
                    sla,
                    model,
                    PoolRole::Prefill,
                ),
            },
            decode: PoolPlanner {
                warmup: self.decode_autoscale.warmup,
                planner: AutoscalePlanner::with_role(
                    self.decode_autoscale,
                    sla,
                    model,
                    PoolRole::Decode,
                ),
            },
            interval,
            next_plan: SimTime::ZERO + interval,
        };
        Run::start(
            self.config,
            self.initial_prefill,
            self.initial_decode,
            Some(planning),
            requests,
            arrival_times,
        )?
        .drive()
    }
}

/// Step-latency oracle for one replica (either pool — the hardware is
/// homogeneous): the roofline [`PerfModel`] with the deployment's KV
/// capacity.
#[derive(Debug, Clone, Copy)]
struct PoolModel {
    perf: PerfModel,
    capacity_tokens: u64,
}

impl StepLatency for PoolModel {
    fn prefill_secs(&self, prompt_tokens: u64) -> f64 {
        self.perf.prefill_step(prompt_tokens).as_secs_f64()
    }

    fn decode_secs(&self, batch_size: u64, kv_tokens: u64) -> f64 {
        self.perf.decode_step(batch_size, kv_tokens).as_secs_f64()
    }

    fn kv_capacity_tokens(&self) -> u64 {
        self.capacity_tokens
    }
}

/// One request travelling through the pipeline.
#[derive(Debug, Clone)]
struct Job {
    spec: RequestSpec,
    timing: RequestTiming,
    generated: u32,
    /// Prompt tokens served from the prefill instance's prefix cache
    /// (assigned when the job enters a prefill batch; shrinks the pass).
    cached_prefix: u64,
}

impl Job {
    fn new(spec: RequestSpec, arrived: SimTime) -> Self {
        Job {
            spec,
            timing: RequestTiming::new(arrived),
            generated: 0,
            cached_prefix: 0,
        }
    }

    /// KV tokens a prefill instance holds for this job: the prompt plus
    /// the first generated token.
    fn prefill_tokens(&self) -> u64 {
        u64::from(self.spec.input_len) + 1
    }

    /// Worst-case KV footprint at completion (routing signal for pending
    /// handoffs whose admission point is not yet known).
    fn final_footprint(&self) -> u64 {
        u64::from(self.spec.input_len) + u64::from(self.spec.true_output_len)
    }

    /// KV tokens currently resident while decoding.
    fn kv_tokens(&self) -> u64 {
        u64::from(self.spec.input_len) + u64::from(self.generated)
    }

    /// Future-memory entry (Eq. 2–4 of the paper, on ground truth): what
    /// this request holds now and how much it will still grow.
    fn batch_entry(&self) -> BatchEntry {
        BatchEntry {
            committed: self.kv_tokens(),
            remaining: u64::from(self.spec.true_output_len - self.generated),
        }
    }
}

#[derive(Debug)]
struct PrefillMember {
    state: MemberState,
    spawned_at: SimTime,
    stopped_at: Option<SimTime>,
    /// Prompts routed here, waiting for a prefill pass.
    queue: VecDeque<Job>,
    /// Prompt tokens waiting in `queue` (routing signal).
    queued_tokens: u64,
    /// The batch currently in the prefill pass (empty when idle).
    batch: Vec<Job>,
    /// KV tokens resident: the in-flight batch plus completed prefills
    /// whose transfer has not finished yet.
    held_tokens: u64,
    /// Instance-local prefix cache (None when disabled). Its occupancy
    /// shares the instance's KV capacity with `held_tokens` and is
    /// reclaimed first when a batch needs the room.
    prefix: Option<PrefixCache>,
    busy: bool,
    routed: usize,
    completed: usize,
}

#[derive(Debug)]
struct DecodeMember {
    state: MemberState,
    spawned_at: SimTime,
    stopped_at: Option<SimTime>,
    /// Transferred requests waiting for admission into the decode batch.
    pending: VecDeque<Job>,
    /// Final footprints of `pending` (routing signal).
    pending_reserved: u64,
    running: Vec<Job>,
    busy: bool,
    routed: usize,
    completed: usize,
}

impl PrefillMember {
    fn is_live(&self) -> bool {
        self.state == MemberState::Live
    }

    fn is_active(&self) -> bool {
        matches!(self.state, MemberState::Live | MemberState::Draining)
    }

    fn load_signal(&self) -> u64 {
        self.queued_tokens + self.held_tokens
    }

    /// Prefix-cache occupancy in tokens (0 when disabled).
    fn prefix_used(&self) -> u64 {
        self.prefix.as_ref().map_or(0, PrefixCache::used_tokens)
    }

    /// Cached overlap this instance would serve `spec` from, without
    /// touching the cache (router probe).
    fn cached_match(&self, spec: &RequestSpec) -> u64 {
        match (&self.prefix, spec.prefix_id) {
            (Some(cache), Some(id)) => cache
                .peek(id.raw())
                .map_or(0, |cached| cached.min(u64::from(spec.prefix_len))),
            _ => 0,
        }
    }
}

impl DecodeMember {
    fn is_live(&self) -> bool {
        self.state == MemberState::Live
    }

    fn is_active(&self) -> bool {
        matches!(self.state, MemberState::Live | MemberState::Draining)
    }

    fn load_signal(&self) -> u64 {
        self.running.iter().map(Job::kv_tokens).sum::<u64>() + self.pending_reserved
    }
}

/// The lifecycle surface both member types share, so the warm-up/drain
/// machinery exists once (mirroring `elastic.rs`) instead of per pool.
trait PoolMember {
    fn state(&self) -> MemberState;
    fn set_state(&mut self, state: MemberState);
    fn stop(&mut self, at: SimTime);
    /// Relative load for drain-victim selection (lower drains first).
    fn load_signal(&self) -> u64;
}

impl PoolMember for PrefillMember {
    fn state(&self) -> MemberState {
        self.state
    }

    fn set_state(&mut self, state: MemberState) {
        self.state = state;
    }

    fn stop(&mut self, at: SimTime) {
        self.state = MemberState::Stopped;
        self.stopped_at = Some(at);
    }

    fn load_signal(&self) -> u64 {
        PrefillMember::load_signal(self)
    }
}

impl PoolMember for DecodeMember {
    fn state(&self) -> MemberState {
        self.state
    }

    fn set_state(&mut self, state: MemberState) {
        self.state = state;
    }

    fn stop(&mut self, at: SimTime) {
        self.state = MemberState::Stopped;
        self.stopped_at = Some(at);
    }

    fn load_signal(&self) -> u64 {
        DecodeMember::load_signal(self)
    }
}

/// `(live, warming)` counts of one pool.
fn pool_counts<T: PoolMember>(members: &[T]) -> (usize, usize) {
    let live = members
        .iter()
        .filter(|m| m.state() == MemberState::Live)
        .count();
    let warming = members
        .iter()
        .filter(|m| matches!(m.state(), MemberState::Warming { .. }))
        .count();
    (live, warming)
}

/// Shrinks one pool toward `target`: cancels the newest warming instances
/// first (they have served nothing), then marks the least-loaded live
/// instances as draining — never taking the pool below one live member,
/// so the router always has a target. Returns the indices newly marked
/// draining; the caller runs its pool-specific idle-stop check on them.
fn scale_down_pool<T: PoolMember>(members: &mut [T], target: usize, now: SimTime) -> Vec<usize> {
    let (live, warming) = pool_counts(members);
    let mut excess = (live + warming).saturating_sub(target);
    for i in (0..members.len()).rev() {
        if excess == 0 {
            break;
        }
        if matches!(members[i].state(), MemberState::Warming { .. }) {
            members[i].stop(now);
            excess -= 1;
        }
    }
    let mut drained = Vec::new();
    while excess > 0 {
        let live_count = members
            .iter()
            .filter(|m| m.state() == MemberState::Live)
            .count();
        if live_count <= 1 {
            break; // never leave the router without a target
        }
        let Some(victim) = members
            .iter()
            .enumerate()
            .filter(|(_, m)| m.state() == MemberState::Live)
            .min_by_key(|(i, m)| (m.load_signal(), *i))
            .map(|(i, _)| i)
        else {
            break;
        };
        members[victim].set_state(MemberState::Draining);
        drained.push(victim);
        excess -= 1;
    }
    drained
}

/// Which pool an event addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PoolKind {
    Prefill,
    Decode,
}

#[derive(Debug)]
enum Ev {
    /// A request reaches the cluster front end.
    Arrival(RequestSpec),
    /// A prefill instance finishes its current batch.
    PrefillDone(usize),
    /// A KV transfer lands on the decode side.
    TransferDone { from: usize, tokens: u64, job: Job },
    /// A decode instance finishes one decode step.
    DecodeDone(usize),
    /// A warming instance becomes live.
    Ready { pool: PoolKind, member: usize },
    /// An autoscale planning round (elastic runs only).
    Plan,
}

/// Heap entry: earliest `(at, seq)` first; `seq` makes ties deterministic.
#[derive(Debug)]
struct Scheduled {
    at_us: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the max-heap pops the earliest event.
        (other.at_us, other.seq).cmp(&(self.at_us, self.seq))
    }
}

struct PoolPlanner {
    planner: AutoscalePlanner<PoolModel>,
    warmup: SimDuration,
}

struct Planning {
    prefill: PoolPlanner,
    decode: PoolPlanner,
    interval: SimDuration,
    next_plan: SimTime,
}

/// Mutable state of one disaggregated run.
struct Run {
    perf: PerfModel,
    capacity: u64,
    sla: SlaSpec,
    transfer: KvTransferSpec,
    kv_bytes_per_token: u64,
    max_prefill_batch_tokens: u64,
    record: bool,
    router: RouterPolicy,
    prefix_cache: Option<PrefixCacheConfig>,
    /// Rotating tie-break cursors of the two pools' routing decisions.
    route_cursor: usize,
    decode_cursor: usize,

    prefill: Vec<PrefillMember>,
    decode: Vec<DecodeMember>,
    prefill_scaling: Vec<ScalingEvent>,
    decode_scaling: Vec<ScalingEvent>,
    planning: Option<Planning>,

    heap: BinaryHeap<Scheduled>,
    seq: u64,
    /// Free times of the `max_inflight` transfer slots, in microseconds.
    link_free: BinaryHeap<Reverse<u64>>,

    remaining: usize,
    outcomes: Vec<RequestOutcome>,
    clock: SimTime,
    series: SeriesGroup,
    last_series_at: SimTime,
    stats: TransferStats,
    /// `(start, done)` per transfer, recorded when the base config has
    /// series recording on (tests use it to check the in-flight bound).
    transfer_intervals: Vec<(SimTime, SimTime)>,
}

impl Run {
    #[allow(clippy::too_many_lines)]
    fn start(
        config: DisaggConfig,
        initial_prefill: usize,
        initial_decode: usize,
        planning: Option<Planning>,
        requests: Vec<RequestSpec>,
        arrival_times: Vec<SimTime>,
    ) -> Result<Run, SimError> {
        assert_eq!(
            requests.len(),
            arrival_times.len(),
            "one arrival time per request"
        );
        assert!(
            arrival_times.windows(2).all(|w| w[0] <= w[1]),
            "arrival times must be sorted"
        );
        let perf = config.base.perf_model();
        let capacity = config.base.capacity_tokens();
        if capacity == 0 {
            return Err(SimError::NoKvCapacity { capacity });
        }
        let max_batch = config.max_prefill_batch_tokens;
        for spec in &requests {
            let prefill_need = u64::from(spec.input_len) + 1;
            if prefill_need > capacity {
                return Err(SimError::RequestTooLarge {
                    id: spec.id.raw(),
                    needed: prefill_need,
                    capacity,
                });
            }
            if u64::from(spec.input_len) > max_batch {
                return Err(SimError::RequestTooLarge {
                    id: spec.id.raw(),
                    needed: u64::from(spec.input_len),
                    capacity: max_batch,
                });
            }
            let decode_need = u64::from(spec.input_len) + u64::from(spec.true_output_len);
            if decode_need > capacity {
                return Err(SimError::RequestTooLarge {
                    id: spec.id.raw(),
                    needed: decode_need,
                    capacity,
                });
            }
        }
        let mut run = Run {
            perf,
            capacity,
            sla: config.base.sla,
            transfer: config.transfer,
            kv_bytes_per_token: config.base.model.kv_bytes_per_token(),
            max_prefill_batch_tokens: max_batch,
            record: config.base.record_series,
            router: config.router,
            prefix_cache: config.base.prefix_cache,
            route_cursor: 0,
            decode_cursor: 0,
            prefill: Vec::new(),
            decode: Vec::new(),
            prefill_scaling: Vec::new(),
            decode_scaling: Vec::new(),
            planning,
            heap: BinaryHeap::new(),
            seq: 0,
            link_free: (0..config.transfer.max_inflight)
                .map(|_| Reverse(0))
                .collect(),
            remaining: requests.len(),
            outcomes: Vec::with_capacity(requests.len()),
            clock: SimTime::ZERO,
            series: SeriesGroup::new(),
            last_series_at: SimTime::ZERO,
            stats: TransferStats::default(),
            transfer_intervals: Vec::new(),
        };
        for _ in 0..initial_prefill {
            run.spawn_prefill(SimTime::ZERO, SimDuration::ZERO);
        }
        for _ in 0..initial_decode {
            run.spawn_decode(SimTime::ZERO, SimDuration::ZERO);
        }
        for (at, spec) in arrival_times.into_iter().zip(requests) {
            run.schedule(at, Ev::Arrival(spec));
        }
        let first_plan = run.planning.as_ref().map(|p| p.next_plan);
        if let Some(at) = first_plan {
            if run.remaining > 0 {
                run.schedule(at, Ev::Plan);
            }
        }
        run.record_fleet(SimTime::ZERO);
        Ok(run)
    }

    fn schedule(&mut self, at: SimTime, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            at_us: at.as_micros(),
            seq,
            ev,
        });
    }

    fn spawn_prefill(&mut self, now: SimTime, warmup: SimDuration) {
        let state = if warmup.is_zero() {
            MemberState::Live
        } else {
            MemberState::Warming {
                ready_at: now + warmup,
            }
        };
        self.prefill.push(PrefillMember {
            state,
            spawned_at: now,
            stopped_at: None,
            queue: VecDeque::new(),
            queued_tokens: 0,
            batch: Vec::new(),
            held_tokens: 0,
            prefix: self
                .prefix_cache
                .map(|spec| PrefixCache::new(spec.budget_tokens(self.capacity))),
            busy: false,
            routed: 0,
            completed: 0,
        });
        if !warmup.is_zero() {
            let member = self.prefill.len() - 1;
            self.schedule(
                now + warmup,
                Ev::Ready {
                    pool: PoolKind::Prefill,
                    member,
                },
            );
        }
    }

    fn spawn_decode(&mut self, now: SimTime, warmup: SimDuration) {
        let state = if warmup.is_zero() {
            MemberState::Live
        } else {
            MemberState::Warming {
                ready_at: now + warmup,
            }
        };
        self.decode.push(DecodeMember {
            state,
            spawned_at: now,
            stopped_at: None,
            pending: VecDeque::new(),
            pending_reserved: 0,
            running: Vec::new(),
            busy: false,
            routed: 0,
            completed: 0,
        });
        if !warmup.is_zero() {
            let member = self.decode.len() - 1;
            self.schedule(
                now + warmup,
                Ev::Ready {
                    pool: PoolKind::Decode,
                    member,
                },
            );
        }
    }

    fn record_fleet(&mut self, at: SimTime) {
        let at = at.max(self.last_series_at);
        self.last_series_at = at;
        let live = |m: &PrefillMember| m.is_live();
        let up = |m: &PrefillMember| m.stopped_at.is_none();
        let p_live = self.prefill.iter().filter(|m| live(m)).count() as f64;
        let p_up = self.prefill.iter().filter(|m| up(m)).count() as f64;
        let d_live = self.decode.iter().filter(|m| m.is_live()).count() as f64;
        let d_up = self
            .decode
            .iter()
            .filter(|m| m.stopped_at.is_none())
            .count() as f64;
        self.series.record("prefill-live", at, p_live);
        self.series.record("prefill-provisioned", at, p_up);
        self.series.record("decode-live", at, d_live);
        self.series.record("decode-provisioned", at, d_up);
    }

    fn drive(mut self) -> Result<DisaggReport, SimError> {
        while let Some(Scheduled { at_us, ev, .. }) = self.heap.pop() {
            let now = SimTime::from_micros(at_us);
            self.clock = self.clock.max(now);
            match ev {
                Ev::Arrival(spec) => self.on_arrival(now, spec),
                Ev::PrefillDone(i) => self.on_prefill_done(now, i),
                Ev::TransferDone { from, tokens, job } => {
                    self.on_transfer_done(now, from, tokens, job);
                }
                Ev::DecodeDone(j) => self.on_decode_done(now, j),
                Ev::Ready { pool, member } => self.on_ready(now, pool, member),
                Ev::Plan => self.on_plan(now),
            }
        }
        Ok(self.finish())
    }

    /// Routes an arrival over the live prefill members with the configured
    /// policy, delegating to the cluster's shared routing dispatch
    /// ([`pick_routed`]) — the pool's load signal is queued plus held
    /// prompt tokens.
    fn route_prefill(&mut self, spec: &RequestSpec) -> usize {
        let n = self.prefill.len();
        let candidates: Vec<RouteCandidate> = self
            .prefill
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_live())
            .map(|(i, m)| RouteCandidate {
                index: i,
                load: m.load_signal() as f64,
                cached_match: m.cached_match(spec),
            })
            .collect();
        pick_routed(self.router, &candidates, &mut self.route_cursor, n)
            .expect("at least one live prefill instance")
    }

    fn on_arrival(&mut self, now: SimTime, spec: RequestSpec) {
        if let Some(planning) = self.planning.as_mut() {
            planning
                .prefill
                .planner
                .on_request_arrival(now, spec.input_len);
        }
        let target = self.route_prefill(&spec);
        let member = &mut self.prefill[target];
        member.routed += 1;
        member.queued_tokens += u64::from(spec.input_len);
        member.queue.push_back(Job::new(spec, now));
        self.try_start_prefill(target, now);
    }

    /// Starts a prefill pass on member `i` if it is idle and a batch fits
    /// the token budget and the instance's free KV. Prefix-cache hits
    /// shrink each job's contribution to the pass; cached prefixes are
    /// evicted (LRU first) when the batch needs their slots.
    fn try_start_prefill(&mut self, i: usize, now: SimTime) {
        let capacity = self.capacity;
        let max_batch = self.max_prefill_batch_tokens;
        let perf = self.perf;
        let member = &mut self.prefill[i];
        if member.busy || !member.is_active() {
            return;
        }
        let mut batch_computed_tokens = 0u64;
        while let Some(front) = member.queue.front() {
            let spec = front.spec;
            let prompt = u64::from(spec.input_len);
            // The prompt plus the first generated token (see
            // [`Job::prefill_tokens`]).
            let tokens = prompt + 1;
            if member.held_tokens + tokens > capacity {
                break;
            }
            // The batch budget bounds *computed* tokens — what the pass
            // actually costs — so prefix hits make room for more prompts.
            // Decide the break on a pre-eviction probe: eviction can only
            // shrink the match (grow the cost), so a probe that already
            // busts the budget certainly busts it afterwards — and a job
            // that breaks here must not have evicted cache entries first.
            let computed_probe = prompt.saturating_sub(member.cached_match(&spec)).max(1);
            if !member.batch.is_empty() && batch_computed_tokens + computed_probe > max_batch {
                break;
            }
            // The request's KV outranks cached prefixes: reclaim cache
            // slots so the batch entry fits alongside the cache.
            if member.held_tokens + member.prefix_used() + tokens > capacity {
                let room = capacity - member.held_tokens - tokens;
                member
                    .prefix
                    .as_mut()
                    .expect("non-zero prefix occupancy implies a cache")
                    .evict_down_to(room);
            }
            let mut job = member.queue.pop_front().expect("peeked");
            // Consume the prefix hit: the pass skips the cached tokens
            // (at least the final prompt position is always computed;
            // the reclaim above may have shrunk the probed match).
            if let (Some(cache), Some(id)) = (member.prefix.as_mut(), job.spec.prefix_id) {
                job.cached_prefix = cache.lookup(id.raw(), u64::from(job.spec.prefix_len));
            }
            member.queued_tokens -= prompt;
            member.held_tokens += tokens;
            batch_computed_tokens += prompt.saturating_sub(job.cached_prefix).max(1);
            member.batch.push(job);
        }
        if member.batch.is_empty() {
            return;
        }
        member.busy = true;
        let duration = perf.prefill_step(batch_computed_tokens);
        self.schedule(now + duration, Ev::PrefillDone(i));
    }

    /// Retains a prefilled prompt's KV in the instance's prefix cache:
    /// the session's next turn routed here skips recomputing it. Keeps
    /// the instance invariant `held + cache ≤ capacity`.
    fn cache_prefill_prefix(member: &mut PrefillMember, capacity: u64, job: &Job) {
        let Some(cache) = member.prefix.as_mut() else {
            return;
        };
        let Some(id) = job.spec.prefix_id else {
            return;
        };
        cache.insert(id.raw(), u64::from(job.spec.input_len) + 1);
        if member.held_tokens + cache.used_tokens() > capacity {
            cache.evict_down_to(capacity.saturating_sub(member.held_tokens));
        }
    }

    fn on_prefill_done(&mut self, now: SimTime, i: usize) {
        self.prefill[i].busy = false;
        let batch = std::mem::take(&mut self.prefill[i].batch);
        self.prefill[i].completed += batch.len();
        let capacity = self.capacity;
        for mut job in batch {
            job.generated += 1;
            job.timing.record_token(now);
            Self::cache_prefill_prefix(&mut self.prefill[i], capacity, &job);
            if let Some(planning) = self.planning.as_mut() {
                let ttft = job.timing.ttft().expect("first token just recorded");
                planning
                    .prefill
                    .planner
                    .on_request_finished(now, 1, ttft, SimDuration::ZERO);
            }
            if job.generated >= job.spec.true_output_len {
                // Single-token requests finish at prefill; nothing to hand
                // over.
                self.prefill[i].held_tokens -= job.prefill_tokens();
                self.finish_job(job);
            } else {
                self.push_transfer(now, i, job);
            }
        }
        self.try_start_prefill(i, now);
        self.maybe_stop_prefill(i, now);
    }

    /// Enqueues one KV handoff on the bounded transfer link.
    fn push_transfer(&mut self, now: SimTime, from: usize, job: Job) {
        let tokens = job.prefill_tokens();
        let bytes = tokens * self.kv_bytes_per_token;
        let latency = self.transfer.latency(bytes);
        let Reverse(free_us) = self.link_free.pop().expect("fixed slot count");
        let start_us = free_us.max(now.as_micros());
        let done_us = start_us + latency.as_micros();
        self.link_free.push(Reverse(done_us));
        let wait_secs = (start_us - now.as_micros()) as f64 / 1e6;
        self.stats.transfers += 1;
        self.stats.total_bytes += bytes;
        self.stats.total_link_secs += latency.as_secs_f64();
        self.stats.total_wait_secs += wait_secs;
        self.stats.max_wait_secs = self.stats.max_wait_secs.max(wait_secs);
        if self.record {
            self.transfer_intervals.push((
                SimTime::from_micros(start_us),
                SimTime::from_micros(done_us),
            ));
        }
        self.schedule(
            SimTime::from_micros(done_us),
            Ev::TransferDone { from, tokens, job },
        );
    }

    fn on_transfer_done(&mut self, now: SimTime, from: usize, tokens: u64, job: Job) {
        self.prefill[from].held_tokens -= tokens;
        self.try_start_prefill(from, now);
        self.maybe_stop_prefill(from, now);
        if let Some(planning) = self.planning.as_mut() {
            planning
                .decode
                .planner
                .on_request_arrival(now, job.spec.input_len);
        }
        let n = self.decode.len();
        let target = pick_rotating_min(
            self.decode
                .iter()
                .enumerate()
                .filter(|(_, m)| m.is_live())
                .map(|(j, m)| (j, m.load_signal() as f64)),
            &mut self.decode_cursor,
            n,
        )
        .expect("at least one live decode instance");
        let member = &mut self.decode[target];
        member.routed += 1;
        member.pending_reserved += job.final_footprint();
        member.pending.push_back(job);
        self.try_start_decode(target, now);
    }

    /// Admits pending handoffs and starts one decode step on member `j` if
    /// it is idle with a non-empty batch.
    ///
    /// Admission uses the paper's future-required-memory estimate (Eq.
    /// 2–4) on ground-truth remaining lengths: a handoff joins the batch
    /// only when the batch's *peak* future footprint — not its worst-case
    /// sum — stays within capacity. Exact lengths make the estimate an
    /// oracle, so admitted requests are never evicted, while packing the
    /// batch far denser than a conservative full-reservation rule.
    fn try_start_decode(&mut self, j: usize, now: SimTime) {
        let capacity = self.capacity;
        let perf = self.perf;
        let member = &mut self.decode[j];
        if member.busy || !member.is_active() {
            return;
        }
        while let Some(front) = member.pending.front() {
            let mut entries: Vec<BatchEntry> =
                member.running.iter().map(Job::batch_entry).collect();
            entries.push(front.batch_entry());
            if FutureMemoryEstimator::peak_memory(&entries) > capacity {
                break;
            }
            let job = member.pending.pop_front().expect("peeked");
            member.pending_reserved -= job.final_footprint();
            member.running.push(job);
        }
        if member.running.is_empty() {
            return;
        }
        let batch = member.running.len() as u64;
        let kv_tokens: u64 = member.running.iter().map(Job::kv_tokens).sum();
        member.busy = true;
        let duration = perf.decode_step(batch, kv_tokens);
        self.schedule(now + duration, Ev::DecodeDone(j));
    }

    fn on_decode_done(&mut self, now: SimTime, j: usize) {
        self.decode[j].busy = false;
        let mut finished = Vec::new();
        {
            let member = &mut self.decode[j];
            let mut k = 0;
            while k < member.running.len() {
                let job = &mut member.running[k];
                job.generated += 1;
                job.timing.record_token(now);
                if job.generated >= job.spec.true_output_len {
                    finished.push(member.running.remove(k));
                } else {
                    k += 1;
                }
            }
            member.completed += finished.len();
        }
        for job in finished {
            if let Some(planning) = self.planning.as_mut() {
                let ttft = job.timing.ttft().expect("completed with tokens");
                planning.decode.planner.on_request_finished(
                    now,
                    job.generated,
                    ttft,
                    job.timing.avg_tpot(),
                );
            }
            self.finish_job(job);
        }
        self.try_start_decode(j, now);
        self.maybe_stop_decode(j, now);
    }

    fn on_ready(&mut self, now: SimTime, pool: PoolKind, member: usize) {
        let promoted = match pool {
            PoolKind::Prefill => {
                let m = &mut self.prefill[member];
                if matches!(m.state, MemberState::Warming { .. }) {
                    m.state = MemberState::Live;
                    true
                } else {
                    false
                }
            }
            PoolKind::Decode => {
                let m = &mut self.decode[member];
                if matches!(m.state, MemberState::Warming { .. }) {
                    m.state = MemberState::Live;
                    true
                } else {
                    false
                }
            }
        };
        if promoted {
            self.record_fleet(now);
        }
    }

    fn maybe_stop_prefill(&mut self, i: usize, now: SimTime) {
        let member = &mut self.prefill[i];
        if member.state == MemberState::Draining
            && !member.busy
            && member.queue.is_empty()
            && member.batch.is_empty()
            && member.held_tokens == 0
        {
            member.state = MemberState::Stopped;
            member.stopped_at = Some(now);
            self.record_fleet(now);
        }
    }

    fn maybe_stop_decode(&mut self, j: usize, now: SimTime) {
        let member = &mut self.decode[j];
        if member.state == MemberState::Draining
            && !member.busy
            && member.running.is_empty()
            && member.pending.is_empty()
        {
            member.state = MemberState::Stopped;
            member.stopped_at = Some(now);
            self.record_fleet(now);
        }
    }

    fn finish_job(&mut self, job: Job) {
        self.remaining -= 1;
        self.outcomes.push(RequestOutcome {
            id: job.spec.id.raw(),
            input_len: job.spec.input_len,
            output_len: job.generated,
            timing: job.timing,
            evictions: 0,
        });
    }

    /// One planning round: each pool's planner decides independently.
    fn on_plan(&mut self, now: SimTime) {
        let Some(mut planning) = self.planning.take() else {
            return;
        };
        planning.next_plan = now + planning.interval;
        for pool in [PoolKind::Prefill, PoolKind::Decode] {
            let (live, warming) = match pool {
                PoolKind::Prefill => pool_counts(&self.prefill),
                PoolKind::Decode => pool_counts(&self.decode),
            };
            let effective = live + warming;
            if effective == 0 {
                continue;
            }
            let pool_planner = match pool {
                PoolKind::Prefill => &mut planning.prefill,
                PoolKind::Decode => &mut planning.decode,
            };
            let outcome = pool_planner.planner.plan(now, live, warming);
            let warmup = pool_planner.warmup;
            let target = outcome.decision.target_or(effective);
            self.apply_decision(pool, now, outcome.decision, warmup);
            if target != effective {
                let events = match pool {
                    PoolKind::Prefill => &mut self.prefill_scaling,
                    PoolKind::Decode => &mut self.decode_scaling,
                };
                events.push(ScalingEvent {
                    at: now,
                    from: effective,
                    to: target,
                });
            }
        }
        self.record_fleet(now);
        if self.remaining > 0 {
            let at = planning.next_plan;
            self.planning = Some(planning);
            self.schedule(at, Ev::Plan);
        } else {
            self.planning = Some(planning);
        }
    }

    /// Applies one pool's scaling decision: scale-ups spawn warming
    /// instances, scale-downs run the shared cancel-then-drain pass
    /// ([`scale_down_pool`]) followed by the pool-specific idle-stop
    /// check.
    fn apply_decision(
        &mut self,
        pool: PoolKind,
        now: SimTime,
        decision: ScalingDecision,
        warmup: SimDuration,
    ) {
        let (live, warming) = match pool {
            PoolKind::Prefill => pool_counts(&self.prefill),
            PoolKind::Decode => pool_counts(&self.decode),
        };
        let effective = live + warming;
        match decision {
            ScalingDecision::ScaleUp { target } if target > effective => {
                for _ in effective..target {
                    match pool {
                        PoolKind::Prefill => self.spawn_prefill(now, warmup),
                        PoolKind::Decode => self.spawn_decode(now, warmup),
                    }
                }
            }
            ScalingDecision::ScaleDown { target } if target < effective => {
                let drained = match pool {
                    PoolKind::Prefill => scale_down_pool(&mut self.prefill, target, now),
                    PoolKind::Decode => scale_down_pool(&mut self.decode, target, now),
                };
                for victim in drained {
                    match pool {
                        PoolKind::Prefill => self.maybe_stop_prefill(victim, now),
                        PoolKind::Decode => self.maybe_stop_decode(victim, now),
                    }
                }
            }
            _ => {}
        }
    }

    fn finish(mut self) -> DisaggReport {
        let end = self.clock;
        self.record_fleet(end);
        let prefill = PoolReport {
            instances: self
                .prefill
                .iter()
                .map(|m| PoolInstanceReport {
                    spawned_at: m.spawned_at,
                    stopped_at: m.stopped_at.unwrap_or(end),
                    routed: m.routed,
                    completed: m.completed,
                })
                .collect(),
            events: self.prefill_scaling,
        };
        let decode = PoolReport {
            instances: self
                .decode
                .iter()
                .map(|m| PoolInstanceReport {
                    spawned_at: m.spawned_at,
                    stopped_at: m.stopped_at.unwrap_or(end),
                    routed: m.routed,
                    completed: m.completed,
                })
                .collect(),
            events: self.decode_scaling,
        };
        let makespan = end.saturating_since(SimTime::ZERO);
        let requests: Vec<(RequestTiming, u64)> = self
            .outcomes
            .iter()
            .map(|o| (o.timing, u64::from(o.output_len)))
            .collect();
        let goodput = GoodputReport::compute(&self.sla, &requests, makespan);
        let mut prefix_stats = PrefixCacheStats::default();
        for member in &self.prefill {
            if let Some(cache) = &member.prefix {
                prefix_stats.merge(&cache.stats());
            }
        }
        DisaggReport {
            goodput,
            makespan,
            unserved: self.remaining,
            prefill,
            decode,
            prefix_stats,
            transfers: self.stats,
            pool_series: self.series,
            transfer_intervals: self.transfer_intervals,
            outcomes: self.outcomes,
        }
    }
}

/// Aggregate KV-transfer statistics of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransferStats {
    /// Completed handoffs.
    pub transfers: usize,
    /// Total KV bytes moved.
    pub total_bytes: u64,
    /// Total pure link time (bandwidth + overhead), in seconds.
    pub total_link_secs: f64,
    /// Total time handoffs waited for one of the bounded in-flight slots.
    pub total_wait_secs: f64,
    /// Longest single wait for a slot.
    pub max_wait_secs: f64,
}

impl TransferStats {
    /// Mean end-to-end handoff latency (slot wait + link), in seconds.
    pub fn mean_handoff_secs(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            (self.total_wait_secs + self.total_link_secs) / self.transfers as f64
        }
    }
}

/// One pool instance's lifetime, for reports.
#[derive(Debug, Clone, Copy)]
pub struct PoolInstanceReport {
    /// When the instance was provisioned.
    pub spawned_at: SimTime,
    /// When it stopped costing GPU time (run end for instances still up).
    pub stopped_at: SimTime,
    /// Requests routed to it.
    pub routed: usize,
    /// Stage completions it performed (prefill passes finished / requests
    /// fully decoded).
    pub completed: usize,
}

impl PoolInstanceReport {
    /// GPU time this instance was provisioned for, in seconds.
    pub fn active_secs(&self) -> f64 {
        self.stopped_at
            .saturating_since(self.spawned_at)
            .as_secs_f64()
    }
}

/// Per-pool result of a disaggregated run.
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// Per-instance lifetimes, in spawn order.
    pub instances: Vec<PoolInstanceReport>,
    /// Pool-size changes the planner made (empty for fixed pools).
    pub events: Vec<ScalingEvent>,
}

impl PoolReport {
    /// Total GPU-seconds provisioned in this pool.
    pub fn gpu_seconds(&self) -> f64 {
        self.instances
            .iter()
            .map(PoolInstanceReport::active_secs)
            .sum()
    }
}

/// Aggregate result of a disaggregated cluster run.
#[derive(Debug)]
pub struct DisaggReport {
    /// Cluster-level goodput over all completed requests.
    pub goodput: GoodputReport,
    /// Run end time.
    pub makespan: SimDuration,
    /// Requests that never completed (zero unless the run was cut short).
    pub unserved: usize,
    /// The prefill pool.
    pub prefill: PoolReport,
    /// The decode pool.
    pub decode: PoolReport,
    /// Prefix-cache statistics merged across prefill instances (all zero
    /// when caches are disabled).
    pub prefix_stats: PrefixCacheStats,
    /// KV-transfer statistics.
    pub transfers: TransferStats,
    /// Per-pool live/provisioned replica counts over time
    /// (`prefill-live`, `prefill-provisioned`, `decode-live`,
    /// `decode-provisioned`).
    pub pool_series: SeriesGroup,
    /// `(start, end)` of every transfer when the base config records
    /// series (used to verify the in-flight bound).
    pub transfer_intervals: Vec<(SimTime, SimTime)>,
    /// Per-request outcomes in completion order.
    pub outcomes: Vec<RequestOutcome>,
}

impl DisaggReport {
    /// Total completed requests.
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }

    /// Fraction of completed requests satisfying the full SLA.
    pub fn sla_attainment(&self) -> f64 {
        self.goodput.satisfied_fraction()
    }

    /// Fraction of completed requests whose TTFT met the SLA (the prefill
    /// pool's objective).
    pub fn ttft_attainment(&self) -> f64 {
        self.goodput.ttft_attainment()
    }

    /// SLA-satisfying output tokens per second over the makespan.
    pub fn goodput_tok_per_s(&self) -> f64 {
        self.goodput.goodput_tok_per_s
    }

    /// Total GPU-seconds provisioned across both pools.
    pub fn gpu_seconds(&self) -> f64 {
        self.prefill.gpu_seconds() + self.decode.gpu_seconds()
    }

    /// Largest number of simultaneously provisioned prefill replicas.
    pub fn peak_prefill_replicas(&self) -> usize {
        self.pool_series
            .get("prefill-provisioned")
            .and_then(|s| s.max_value())
            .unwrap_or(0.0) as usize
    }

    /// Largest number of simultaneously provisioned decode replicas.
    pub fn peak_decode_replicas(&self) -> usize {
        self.pool_series
            .get("decode-provisioned")
            .and_then(|s| s.max_value())
            .unwrap_or(0.0) as usize
    }
}
