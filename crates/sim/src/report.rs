//! Simulation results.

use pf_kvcache::PrefixCacheStats;
use pf_metrics::{GoodputReport, RequestTiming, SimDuration, StepSeries};

/// Outcome of one request.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RequestOutcome {
    /// Request id.
    pub id: u64,
    /// Prompt length.
    pub input_len: u32,
    /// Tokens actually generated.
    pub output_len: u32,
    /// Full token timing.
    pub timing: RequestTiming,
    /// Times this request was evicted and re-queued.
    pub evictions: u32,
}

/// Aggregate result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Scheduler name as reported by the policy.
    pub scheduler_name: String,
    /// Goodput/throughput under the configured SLA.
    pub goodput: GoodputReport,
    /// Decode iterations executed (the paper's "Decoding Steps").
    pub decode_steps: u64,
    /// Dedicated prefill steps executed.
    pub prefill_steps: u64,
    /// Total evictions (can exceed the request count when requests are
    /// evicted repeatedly).
    pub evictions: u64,
    /// Requests that finished.
    pub completed: usize,
    /// Requests left unfinished at the simulation horizon.
    pub unfinished: usize,
    /// Requests cancelled because their deadline expired while queued —
    /// never started, or preempted and never readmitted (neither
    /// completed nor unfinished).
    pub timed_out: usize,
    /// End-to-end simulated duration.
    pub makespan: SimDuration,
    /// KV capacity in tokens.
    pub capacity_tokens: u64,
    /// Time-weighted mean of used/capacity ("Current Consumed Memory").
    pub avg_consumed_frac: f64,
    /// Mean of the *true* future required memory over capacity, sampled at
    /// every engine step ("Future Required Memory"; can exceed 1.0).
    pub avg_future_required_frac: f64,
    /// Peak used/capacity.
    pub peak_consumed_frac: f64,
    /// Utilization time series (used/capacity after each step), if
    /// recording was enabled.
    pub consumed_series: StepSeries,
    /// True future-required-memory series (fraction of capacity), if
    /// recording was enabled.
    pub future_required_series: StepSeries,
    /// Queue-depth time series, if recording was enabled.
    pub queue_series: StepSeries,
    /// Prefix-cache statistics (all zero when the cache is disabled).
    pub prefix_stats: PrefixCacheStats,
    /// Prefix-cache occupancy in tokens at the end of the run.
    pub prefix_cached_tokens: u64,
    /// KV-pool tokens still allocated when the run ended. With a prefix
    /// cache this equals the cache's sentinel charge
    /// ([`SimReport::prefix_cached_tokens`]); every request allocation —
    /// completed, preempted or cancelled past its deadline — must have
    /// been released by then, so a larger value means leaked KV.
    pub kv_used_tokens_end: u64,
    /// Per-request outcomes (completed requests only).
    pub outcomes: Vec<RequestOutcome>,
}

impl SimReport {
    /// Evictions relative to completed requests, as a percentage (the
    /// paper's "Evicted Reqs"; >100% means requests were evicted more than
    /// once on average).
    pub fn evicted_request_pct(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.evictions as f64 / self.completed as f64 * 100.0
        }
    }

    /// Output tokens per second counting every completed request.
    pub fn throughput(&self) -> f64 {
        self.goodput.throughput_tok_per_s
    }

    /// Output tokens per second counting only SLA-satisfying requests.
    pub fn goodput_tok_per_s(&self) -> f64 {
        self.goodput.goodput_tok_per_s
    }

    /// One-line human-readable summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{}: goodput {:.1} tok/s (throughput {:.1}), {} reqs ({} SLA-ok), \
             {} decode steps, evicted {:.1}%, mem {:.1}% (future {:.1}%)",
            self.scheduler_name,
            self.goodput.goodput_tok_per_s,
            self.goodput.throughput_tok_per_s,
            self.completed,
            self.goodput.satisfied_requests,
            self.decode_steps,
            self.evicted_request_pct(),
            self.avg_consumed_frac * 100.0,
            self.avg_future_required_frac * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_metrics::{SimTime, SlaSpec};

    fn dummy_report() -> SimReport {
        let mut timing = RequestTiming::new(SimTime::ZERO);
        timing.record_token(SimTime::from_secs(1));
        SimReport {
            scheduler_name: "test".into(),
            goodput: GoodputReport::compute(
                &SlaSpec::chat_7b(),
                &[(timing, 10)],
                SimDuration::from_secs(10),
            ),
            decode_steps: 100,
            prefill_steps: 10,
            evictions: 3,
            completed: 2,
            unfinished: 0,
            timed_out: 0,
            makespan: SimDuration::from_secs(10),
            capacity_tokens: 1000,
            avg_consumed_frac: 0.5,
            avg_future_required_frac: 0.6,
            peak_consumed_frac: 0.9,
            consumed_series: StepSeries::new(),
            future_required_series: StepSeries::new(),
            queue_series: StepSeries::new(),
            prefix_stats: PrefixCacheStats::default(),
            prefix_cached_tokens: 0,
            kv_used_tokens_end: 0,
            outcomes: Vec::new(),
        }
    }

    #[test]
    fn evicted_pct() {
        let r = dummy_report();
        assert_eq!(r.evicted_request_pct(), 150.0);
    }

    #[test]
    fn summary_line_contains_key_numbers() {
        let line = dummy_report().summary_line();
        assert!(line.contains("test"));
        assert!(line.contains("150.0%"));
        assert!(line.contains("100 decode steps"));
    }
}
