//! Roofline GPU performance model.
//!
//! Step latencies are modelled as `max(compute time, memory time) + fixed
//! overhead`:
//!
//! * **prefill** is compute-bound: `2 · params · tokens` FLOPs against the
//!   GPU's tensor throughput;
//! * **decode** is bandwidth-bound: every step must re-read the weights and
//!   the live KV cache from HBM, while the per-token GEMV math is tiny;
//! * **mixed** steps (chunked prefill / splitfuse) combine a prompt chunk
//!   with a decode batch in a single forward pass.
//!
//! Tensor parallelism divides both FLOPs and bytes across GPUs at an
//! efficiency discount. A `kernel_speedup` multiplier differentiates
//! faster/slower serving stacks (e.g. the TensorRT-LLM preset) without
//! changing the model.

use pf_metrics::SimDuration;

use crate::hardware::GpuSpec;
use crate::model::ModelSpec;

/// Utilization efficiencies and overheads of the serving stack.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PerfTuning {
    /// Fraction of peak FLOPs achieved by prefill GEMMs.
    pub prefill_flops_eff: f64,
    /// Fraction of peak FLOPs achieved by decode GEMVs.
    pub decode_flops_eff: f64,
    /// Fraction of peak memory bandwidth achieved.
    pub bw_eff: f64,
    /// Tensor-parallel scaling efficiency per extra GPU.
    pub tp_eff: f64,
    /// Fixed per-step overhead (kernel launches, scheduler, Python glue).
    pub step_overhead: SimDuration,
    /// Uniform speed multiplier for the whole stack (1.0 = LightLLM
    /// baseline; >1 = faster kernels).
    pub kernel_speedup: f64,
}

impl Default for PerfTuning {
    fn default() -> Self {
        PerfTuning {
            prefill_flops_eff: 0.55,
            decode_flops_eff: 0.35,
            bw_eff: 0.75,
            tp_eff: 0.85,
            step_overhead: SimDuration::from_micros(350),
            kernel_speedup: 1.0,
        }
    }
}

/// Step-latency model for one (model, GPU, tensor-parallel degree) triple.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PerfModel {
    model: ModelSpec,
    gpu: GpuSpec,
    tensor_parallel: u32,
    tuning: PerfTuning,
}

impl PerfModel {
    /// Builds a performance model.
    ///
    /// # Panics
    ///
    /// Panics if `tensor_parallel` is zero.
    pub fn new(model: ModelSpec, gpu: GpuSpec, tensor_parallel: u32, tuning: PerfTuning) -> Self {
        assert!(tensor_parallel > 0, "tensor_parallel must be at least 1");
        PerfModel {
            model,
            gpu,
            tensor_parallel,
            tuning,
        }
    }

    /// The model being served.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The GPU (single device of the TP group).
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Tensor-parallel degree.
    pub fn tensor_parallel(&self) -> u32 {
        self.tensor_parallel
    }

    /// KV-cache capacity in tokens: per-GPU HBM minus the weight shard and
    /// a fixed activation reserve, divided by the per-token KV footprint.
    pub fn kv_capacity_tokens(&self) -> u64 {
        let tp = u64::from(self.tensor_parallel);
        let total_hbm = self.gpu.hbm_bytes() * tp;
        // 8% of HBM reserved for activations, CUDA context and workspace.
        let usable = (total_hbm as f64 * 0.92) as u64;
        let for_kv = usable.saturating_sub(self.model.weight_bytes());
        for_kv / self.model.kv_bytes_per_token()
    }

    /// Effective FLOP/s of the TP group.
    fn effective_flops(&self, base_eff: f64) -> f64 {
        let tp = self.tensor_parallel as f64;
        let tp_scale = if self.tensor_parallel > 1 {
            tp * self.tuning.tp_eff
        } else {
            1.0
        };
        self.gpu.flops() * base_eff * tp_scale * self.tuning.kernel_speedup
    }

    /// Effective bytes/s of the TP group.
    fn effective_bw(&self) -> f64 {
        let tp = self.tensor_parallel as f64;
        let tp_scale = if self.tensor_parallel > 1 {
            tp * self.tuning.tp_eff
        } else {
            1.0
        };
        self.gpu.bw_bytes_per_s() * self.tuning.bw_eff * tp_scale * self.tuning.kernel_speedup
    }

    /// Latency of a prefill step over `prompt_tokens` total tokens.
    pub fn prefill_step(&self, prompt_tokens: u64) -> SimDuration {
        if prompt_tokens == 0 {
            return SimDuration::ZERO;
        }
        let compute = self.model.flops_per_token() * prompt_tokens as f64
            / self.effective_flops(self.tuning.prefill_flops_eff);
        let memory = self.model.weight_bytes() as f64 / self.effective_bw();
        self.finish(compute.max(memory))
    }

    /// Latency of one decode step for `batch_size` sequences with
    /// `kv_tokens` total live KV-cache tokens.
    pub fn decode_step(&self, batch_size: u64, kv_tokens: u64) -> SimDuration {
        if batch_size == 0 {
            return SimDuration::ZERO;
        }
        let compute = self.model.flops_per_token() * batch_size as f64
            / self.effective_flops(self.tuning.decode_flops_eff);
        let bytes =
            self.model.weight_bytes() as f64 + (kv_tokens * self.model.kv_bytes_per_token()) as f64;
        let memory = bytes / self.effective_bw();
        self.finish(compute.max(memory))
    }

    /// Latency of a mixed step (chunked prefill): `chunk_tokens` prompt
    /// tokens fused with a `batch_size`-sequence decode over `kv_tokens`.
    pub fn mixed_step(&self, chunk_tokens: u64, batch_size: u64, kv_tokens: u64) -> SimDuration {
        if chunk_tokens == 0 {
            return self.decode_step(batch_size, kv_tokens);
        }
        let compute = self.model.flops_per_token() * (chunk_tokens + batch_size) as f64
            / self.effective_flops(self.tuning.prefill_flops_eff);
        let bytes =
            self.model.weight_bytes() as f64 + (kv_tokens * self.model.kv_bytes_per_token()) as f64;
        let memory = bytes / self.effective_bw();
        self.finish(compute.max(memory))
    }

    /// Host-device transfer time for swapping `tokens` KV entries over a
    /// `pcie_gbps` link (one direction).
    pub fn swap_transfer(&self, tokens: u64, pcie_gbps: f64) -> SimDuration {
        let bytes = (tokens * self.model.kv_bytes_per_token()) as f64;
        SimDuration::from_secs_f64(bytes / (pcie_gbps * 1e9))
    }

    fn finish(&self, seconds: f64) -> SimDuration {
        SimDuration::from_secs_f64(seconds) + self.tuning.step_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100_7b() -> PerfModel {
        PerfModel::new(
            ModelSpec::llama2_7b(),
            GpuSpec::a100_80g(),
            1,
            PerfTuning::default(),
        )
    }

    #[test]
    fn capacity_in_expected_range() {
        // ~80 GiB × 0.92 − 13.5 GB weights ≈ 65 GB / 512 KiB ≈ 120k tokens.
        let cap = a100_7b().kv_capacity_tokens();
        assert!(
            (100_000..140_000).contains(&cap),
            "unexpected 7B capacity {cap}"
        );
    }

    #[test]
    fn capacity_scales_with_tensor_parallel() {
        let m70 = |tp| {
            PerfModel::new(
                ModelSpec::llama2_70b(),
                GpuSpec::a100_80g(),
                tp,
                PerfTuning::default(),
            )
            .kv_capacity_tokens()
        };
        // 70B does not even fit on one A100-80G.
        assert_eq!(m70(1), 0);
        assert!(m70(4) > 400_000, "4×A100 70B capacity {}", m70(4));
        assert!(m70(8) > 2 * m70(4) - m70(4) / 2);
    }

    #[test]
    fn decode_is_bandwidth_bound() {
        // Reading 13.5 GB of weights at ~1.5 TB/s is ≈ 9 ms even with an
        // empty KV cache; decode latency must be dominated by it.
        let pm = a100_7b();
        let empty = pm.decode_step(1, 0);
        assert!(empty.as_millis_f64() > 5.0);
        // A full KV cache adds tens of milliseconds.
        let full = pm.decode_step(32, 120_000);
        assert!(full > empty * 3);
        assert!(full.as_millis_f64() < 200.0);
    }

    #[test]
    fn prefill_scales_with_tokens() {
        let pm = a100_7b();
        let short = pm.prefill_step(128);
        let long = pm.prefill_step(4096);
        assert!(long > short * 8);
        // ~0.37 s of pure math for a 4k prefill at 55% of peak.
        let secs = long.as_secs_f64();
        assert!((0.2..1.0).contains(&secs), "4k prefill {secs}s");
    }

    #[test]
    fn kernel_speedup_accelerates_everything() {
        let base = a100_7b();
        let fast = PerfModel::new(
            ModelSpec::llama2_7b(),
            GpuSpec::a100_80g(),
            1,
            PerfTuning {
                kernel_speedup: 2.0,
                step_overhead: SimDuration::ZERO,
                ..PerfTuning::default()
            },
        );
        let slow_base = PerfModel::new(
            ModelSpec::llama2_7b(),
            GpuSpec::a100_80g(),
            1,
            PerfTuning {
                step_overhead: SimDuration::ZERO,
                ..PerfTuning::default()
            },
        );
        assert!(fast.decode_step(8, 50_000) < slow_base.decode_step(8, 50_000));
        let _ = base;
    }

    #[test]
    fn zero_work_is_free() {
        let pm = a100_7b();
        assert_eq!(pm.prefill_step(0), SimDuration::ZERO);
        assert_eq!(pm.decode_step(0, 0), SimDuration::ZERO);
    }

    #[test]
    fn mixed_step_between_decode_and_prefill() {
        let pm = a100_7b();
        let decode = pm.decode_step(16, 60_000);
        let mixed = pm.mixed_step(512, 16, 60_000);
        assert!(mixed >= decode);
        // Chunked prefill with zero chunk degenerates to decode.
        assert_eq!(pm.mixed_step(0, 16, 60_000), decode);
    }

    #[test]
    fn tp_reduces_step_time() {
        let one = PerfModel::new(
            ModelSpec::llama2_70b(),
            GpuSpec::a100_80g(),
            4,
            PerfTuning::default(),
        );
        let two = PerfModel::new(
            ModelSpec::llama2_70b(),
            GpuSpec::a100_80g(),
            8,
            PerfTuning::default(),
        );
        assert!(two.decode_step(16, 100_000) < one.decode_step(16, 100_000));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_tp_panics() {
        let _ = PerfModel::new(
            ModelSpec::llama2_7b(),
            GpuSpec::a100_80g(),
            0,
            PerfTuning::default(),
        );
    }
}
