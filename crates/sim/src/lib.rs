//! Discrete-event continuous-batching LLM serving engine with a roofline
//! GPU performance model — the LightLLM stand-in of the Past-Future
//! scheduler reproduction.
//!
//! The crate simulates a single serving deployment end to end:
//!
//! * [`ModelSpec`] / [`GpuSpec`] / [`PerfModel`] — architecture and
//!   hardware numbers turned into prefill/decode step latencies and a
//!   KV-cache token capacity;
//! * [`SimConfig`] — scheduler choice, KV layout, batching and prefill
//!   discipline, SLA, seeds;
//! * [`Simulation`] — offline, closed-loop or timed arrivals driving the
//!   engine; produces a [`SimReport`] with goodput, decode-step counts,
//!   eviction statistics and memory-utilization series — every quantity the
//!   paper's evaluation section reports.
//!
//! The engine reproduces the mechanisms the paper's analysis depends on:
//! iteration-level continuous batching, dedicated or chunked prefill,
//! recompute preemption (evicted requests re-queue at the front and pay a
//! re-prefill), and exact KV token accounting.
//!
//! # Example
//!
//! ```
//! use pf_core::SchedulerConfig;
//! use pf_sim::{GpuSpec, ModelSpec, SimConfig, Simulation};
//! use pf_workload::{datasets, ClosedLoopClients};
//!
//! let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
//!     .scheduler(SchedulerConfig::aggressive(0.95))
//!     .seed(7)
//!     .build();
//! let requests = datasets::sharegpt(48, 7);
//! let report =
//!     Simulation::closed_loop(config, requests, ClosedLoopClients::new(8)).run()?;
//! assert_eq!(report.completed, 48);
//! # Ok::<(), pf_sim::SimError>(())
//! ```

#![warn(missing_docs)]

pub mod cluster;
mod config;
pub mod disagg;
pub mod elastic;
mod engine;
mod error;
pub mod fleet;
mod hardware;
pub mod link;
mod model;
mod perf;
mod report;
mod simulation;
mod slab;

pub use config::{
    BatchingMode, EvictionMode, KvLayout, PrefillMode, PrefixCacheConfig, QueueOrder, SimConfig,
    SimConfigBuilder,
};
pub use error::SimError;
pub use fleet::{DisaggKvIndex, GpuType, RouterConfig};
pub use hardware::GpuSpec;
pub use model::ModelSpec;
pub use perf::{PerfModel, PerfTuning};
pub use report::{RequestOutcome, SimReport};
pub use simulation::Simulation;
