//! Simulation entry point.

use pf_metrics::SimTime;
use pf_obs::TraceSink;
use pf_workload::{ClosedLoopClients, RequestSpec};

use crate::config::SimConfig;
use crate::engine::{Arrivals, Engine};
use crate::error::SimError;
use crate::report::SimReport;

/// A configured simulation: a deployment ([`SimConfig`]) plus a workload
/// and an arrival discipline.
///
/// # Example
///
/// ```
/// use pf_sim::{GpuSpec, ModelSpec, SimConfig, Simulation};
/// use pf_core::SchedulerConfig;
/// use pf_workload::datasets;
///
/// let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
///     .scheduler(SchedulerConfig::past_future())
///     .seed(1)
///     .build();
/// let requests = datasets::distribution_3(32, 1);
/// let report = Simulation::offline(config, requests).run()?;
/// assert_eq!(report.completed, 32);
/// # Ok::<(), pf_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    arrivals: Arrivals,
}

impl Simulation {
    /// All requests available at time zero (the paper's ablation setting:
    /// Table 1, Figure 8).
    pub fn offline(config: SimConfig, requests: Vec<RequestSpec>) -> Self {
        Simulation {
            config,
            arrivals: Arrivals::offline(requests),
        }
    }

    /// Closed-loop clients: `clients.n_clients` requests in flight at all
    /// times until the workload drains (the paper's goodput setting:
    /// Figures 7 and 9).
    pub fn closed_loop(
        config: SimConfig,
        requests: Vec<RequestSpec>,
        clients: ClosedLoopClients,
    ) -> Self {
        Simulation {
            config,
            arrivals: Arrivals::closed_loop(requests, clients),
        }
    }

    /// Explicit arrival timestamps (one per request), e.g. a Poisson open
    /// loop.
    ///
    /// # Panics
    ///
    /// Panics if `times.len() != requests.len()`.
    pub fn with_arrivals(
        config: SimConfig,
        requests: Vec<RequestSpec>,
        times: Vec<SimTime>,
    ) -> Self {
        Simulation {
            config,
            arrivals: Arrivals::timed(requests, times),
        }
    }

    /// The configuration this simulation will run with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation to completion (or to `max_sim_time`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the deployment cannot serve the workload:
    /// no KV capacity, a request that can never fit, or a scheduler stall.
    pub fn run(self) -> Result<SimReport, SimError> {
        Engine::new(self.config, self.arrivals).run()
    }

    /// [`Simulation::run`] with an optional [`TraceSink`] receiving every
    /// request lifecycle event ([`pf_obs::TraceEvent`]). With `None` this
    /// is exactly `run`: every emission site reduces to a branch on an
    /// empty option, so the untraced path stays allocation-free and the
    /// report bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the deployment cannot serve the workload:
    /// no KV capacity, a request that can never fit, or a scheduler stall.
    ///
    /// # Example
    ///
    /// ```
    /// use pf_obs::{RecordingSink, TraceEvent};
    /// use pf_sim::{GpuSpec, ModelSpec, SimConfig, Simulation};
    /// use pf_workload::datasets;
    ///
    /// let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
    ///     .seed(1)
    ///     .build();
    /// let requests = datasets::distribution_3(8, 1);
    /// let mut sink = RecordingSink::new();
    /// let report = Simulation::offline(config, requests).run_traced(Some(&mut sink))?;
    /// let finished = sink
    ///     .events
    ///     .iter()
    ///     .filter(|ev| matches!(ev, TraceEvent::Finished { .. }))
    ///     .count();
    /// assert_eq!(finished, report.completed);
    /// # Ok::<(), pf_sim::SimError>(())
    /// ```
    pub fn run_traced(self, sink: Option<&mut dyn TraceSink>) -> Result<SimReport, SimError> {
        Engine::new(self.config, self.arrivals).run_traced(sink)
    }
}
