//! Simulation errors.

use std::error::Error;
use std::fmt;

use pf_kvcache::KvCacheError;
use pf_metrics::SimTime;

/// Errors reported by [`Simulation::run`](crate::Simulation::run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The model does not fit on the configured hardware at all.
    NoKvCapacity {
        /// Computed KV capacity in tokens.
        capacity: u64,
    },
    /// A request can never run: its final footprint exceeds total capacity.
    RequestTooLarge {
        /// Offending request id.
        id: u64,
        /// Tokens the request needs at completion.
        needed: u64,
        /// Total capacity in tokens.
        capacity: u64,
    },
    /// The engine made no progress: nothing is running, requests are queued,
    /// no arrivals are pending, and the scheduler refuses to admit anything
    /// (e.g. a conservative scheduler facing a request whose worst case
    /// exceeds its budget).
    Stalled {
        /// Requests stuck in the queue.
        queued: usize,
        /// Simulated time at the stall.
        at: SimTime,
    },
    /// The KV-cache manager rejected an operation the engine believed
    /// valid — an unknown request id (a routing/bookkeeping bug) or an
    /// extension the shortfall check should have covered. The typed error
    /// locates the bug instead of poisoning the whole simulation with a
    /// panic.
    KvCache {
        /// The underlying manager error.
        error: KvCacheError,
        /// Simulated time of the failing operation.
        at: SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoKvCapacity { capacity } => {
                write!(f, "model leaves no kv-cache capacity ({capacity} tokens)")
            }
            SimError::RequestTooLarge {
                id,
                needed,
                capacity,
            } => write!(
                f,
                "request {id} needs {needed} tokens but capacity is {capacity}"
            ),
            SimError::Stalled { queued, at } => write!(
                f,
                "scheduler stalled at {at} with {queued} queued requests and an empty batch"
            ),
            SimError::KvCache { error, at } => {
                write!(f, "kv-cache protocol error at {at}: {error}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::KvCache { error, .. } => Some(error),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::NoKvCapacity { capacity: 0 }
            .to_string()
            .contains("no kv-cache capacity"));
        assert!(SimError::RequestTooLarge {
            id: 3,
            needed: 10,
            capacity: 5
        }
        .to_string()
        .contains("request 3"));
        assert!(SimError::Stalled {
            queued: 2,
            at: SimTime::ZERO
        }
        .to_string()
        .contains("stalled"));
        let kv = SimError::KvCache {
            error: KvCacheError::UnknownRequest { req: 4 },
            at: SimTime::ZERO,
        };
        assert!(kv.to_string().contains("unknown request 4"));
        assert!(std::error::Error::source(&kv).is_some());
    }
}
