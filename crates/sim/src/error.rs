//! Simulation errors.

use std::error::Error;
use std::fmt;

use pf_metrics::SimTime;

/// Errors reported by [`Simulation::run`](crate::Simulation::run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The model does not fit on the configured hardware at all.
    NoKvCapacity {
        /// Computed KV capacity in tokens.
        capacity: u64,
    },
    /// A request can never run: its final footprint exceeds total capacity.
    RequestTooLarge {
        /// Offending request id.
        id: u64,
        /// Tokens the request needs at completion.
        needed: u64,
        /// Total capacity in tokens.
        capacity: u64,
    },
    /// The engine made no progress: nothing is running, requests are queued,
    /// no arrivals are pending, and the scheduler refuses to admit anything
    /// (e.g. a conservative scheduler facing a request whose worst case
    /// exceeds its budget).
    Stalled {
        /// Requests stuck in the queue.
        queued: usize,
        /// Simulated time at the stall.
        at: SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoKvCapacity { capacity } => {
                write!(f, "model leaves no kv-cache capacity ({capacity} tokens)")
            }
            SimError::RequestTooLarge {
                id,
                needed,
                capacity,
            } => write!(
                f,
                "request {id} needs {needed} tokens but capacity is {capacity}"
            ),
            SimError::Stalled { queued, at } => write!(
                f,
                "scheduler stalled at {at} with {queued} queued requests and an empty batch"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::NoKvCapacity { capacity: 0 }
            .to_string()
            .contains("no kv-cache capacity"));
        assert!(SimError::RequestTooLarge {
            id: 3,
            needed: 10,
            capacity: 5
        }
        .to_string()
        .contains("request 3"));
        assert!(SimError::Stalled {
            queued: 2,
            at: SimTime::ZERO
        }
        .to_string()
        .contains("stalled"));
    }
}
