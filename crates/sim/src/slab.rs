//! Dense slab storage for per-request state.
//!
//! The engines move request entries between queues, running batches and
//! event heaps constantly; carrying the full [`pf_workload::RequestSpec`]
//! through every `VecDeque` rotation and sort made each of those moves a
//! multi-cacheline memcpy. A [`Slab`] keeps the payload in one dense,
//! stable-index arena so the hot collections shuffle bare `u32` handles:
//! inserts reuse freed slots via an intrusive free list, and indices stay
//! valid until their entry is removed (entries never move).
//!
//! This is deliberately minimal — no iteration, no generation counters.
//! The engines are the only users and their handle discipline is strict:
//! every handle is owned by exactly one queue/batch entry, and the slot is
//! removed exactly when that entry retires. Indexing a vacant slot is a
//! logic error and panics.

use std::ops::{Index, IndexMut};

/// Free-list terminator.
const NIL: u32 = u32::MAX;

#[derive(Debug)]
enum Slot<T> {
    Occupied(T),
    /// Vacant slot holding the next free index (`NIL` terminates).
    Vacant(u32),
}

/// A dense arena with stable `u32` handles and O(1) insert/remove.
#[derive(Debug)]
pub(crate) struct Slab<T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
    len: usize,
}

impl<T> Slab<T> {
    pub(crate) fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// Number of occupied slots.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `value`, reusing a freed slot when one exists.
    pub(crate) fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if self.free_head == NIL {
            let idx = u32::try_from(self.slots.len()).expect("slab index fits u32");
            assert!(idx != NIL, "slab full");
            self.slots.push(Slot::Occupied(value));
            idx
        } else {
            let idx = self.free_head;
            match std::mem::replace(&mut self.slots[idx as usize], Slot::Occupied(value)) {
                Slot::Vacant(next) => self.free_head = next,
                Slot::Occupied(_) => unreachable!("free list pointed at an occupied slot"),
            }
            idx
        }
    }

    /// Removes and returns the entry at `idx`, freeing its slot.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is vacant or out of bounds (a handle-discipline
    /// bug, never a recoverable condition).
    pub(crate) fn remove(&mut self, idx: u32) -> T {
        match std::mem::replace(&mut self.slots[idx as usize], Slot::Vacant(self.free_head)) {
            Slot::Occupied(value) => {
                self.free_head = idx;
                self.len -= 1;
                value
            }
            Slot::Vacant(_) => panic!("slab slot {idx} removed twice"),
        }
    }
}

impl<T> Index<u32> for Slab<T> {
    type Output = T;

    fn index(&self, idx: u32) -> &T {
        match &self.slots[idx as usize] {
            Slot::Occupied(value) => value,
            Slot::Vacant(_) => panic!("slab slot {idx} is vacant"),
        }
    }
}

impl<T> IndexMut<u32> for Slab<T> {
    fn index_mut(&mut self, idx: u32) -> &mut T {
        match &mut self.slots[idx as usize] {
            Slot::Occupied(value) => value,
            Slot::Vacant(_) => panic!("slab slot {idx} is vacant"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut slab = Slab::new();
        assert!(slab.is_empty());
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab[a], "a");
        assert_eq!(slab[b], "b");
        assert_eq!(slab.remove(a), "a");
        assert_eq!(slab.len(), 1);
        assert_eq!(slab[b], "b");
    }

    #[test]
    fn freed_slots_are_reused_lifo() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        let c = slab.insert(3);
        slab.remove(b);
        slab.remove(a);
        // LIFO free list: the most recently freed slot comes back first,
        // and no new backing slots are grown.
        assert_eq!(slab.insert(4), a);
        assert_eq!(slab.insert(5), b);
        assert_eq!(slab.insert(6), c + 1);
        assert_eq!(slab.len(), 4);
        assert_eq!(slab[c], 3);
    }

    #[test]
    fn mutation_through_handle() {
        let mut slab = Slab::new();
        let idx = slab.insert(vec![1]);
        slab[idx].push(2);
        assert_eq!(slab.remove(idx), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "removed twice")]
    fn double_remove_panics() {
        let mut slab = Slab::new();
        let idx = slab.insert(());
        slab.remove(idx);
        slab.remove(idx);
    }

    #[test]
    #[should_panic(expected = "is vacant")]
    fn index_vacant_panics() {
        let mut slab = Slab::new();
        let idx = slab.insert(7);
        slab.remove(idx);
        let _ = slab[idx];
    }

    #[test]
    fn interleaved_churn_keeps_handles_stable() {
        let mut slab = Slab::new();
        let mut handles: Vec<(u32, usize)> = (0..64).map(|v| (slab.insert(v), v)).collect();
        // Retire every third entry, then insert a second wave.
        let mut kept = Vec::new();
        for (i, (h, v)) in handles.drain(..).enumerate() {
            if i % 3 == 0 {
                assert_eq!(slab.remove(h), v);
            } else {
                kept.push((h, v));
            }
        }
        for v in 100..120 {
            kept.push((slab.insert(v), v));
        }
        for (h, v) in kept {
            assert_eq!(slab[h], v);
        }
    }
}
