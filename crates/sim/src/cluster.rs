//! Multi-instance serving with estimate-driven request forwarding.
//!
//! The paper's future-work section (§7) proposes using the Past-Future
//! scheduler's accurate per-batch memory estimates to *forward requests to
//! under-utilized service instances*. This module implements that idea as a
//! co-simulation: several independent engines advance on one global
//! clock, and a front-end [`RouterPolicy`] assigns each arriving request to
//! an instance using the state visible at arrival time. (The engines
//! themselves are internal; the public surface is [`ClusterSimulation`].)
//!
//! Routing signals, from least to most informed:
//!
//! * [`RouterPolicy::RoundRobin`] — no state;
//! * [`RouterPolicy::LeastOutstanding`] — queue + batch length (classic
//!   join-shortest-queue);
//! * [`RouterPolicy::LeastUsedMemory`] — current KV occupancy (what an
//!   aggressive scheduler can report);
//! * [`RouterPolicy::LeastEstimatedLoad`] — the future-required-memory
//!   estimate of the running batch plus the expected footprint of the
//!   queue — the paper's proposal;
//! * [`RouterPolicy::PrefixAffinity`] — KV-aware routing (NVIDIA
//!   Dynamo-style): steer each request to the live instance holding the
//!   longest cached prefix of its prompt, falling back to
//!   least-estimated-load below a match threshold. Requires instances
//!   configured with a prefix cache
//!   ([`crate::SimConfigBuilder::prefix_cache`]) and workloads carrying
//!   prefix structure ([`pf_workload::datasets::multi_turn_chat`]);
//! * [`RouterPolicy::KvOverlap`] — block-granular overlap scoring against
//!   a *global event-fed KV index* ([`pf_kvcache::KvIndexer`]): engines
//!   publish block stored/removed events (subject to a configurable
//!   propagation delay), and the router trades estimated load against the
//!   indexed overlap through a cost logit with optional softmax
//!   temperature. Requires a block-granular prefix store
//!   ([`crate::SimConfigBuilder::prefix_cache_blocks`]).
//!
//! All load-based policies break exact ties with a deterministic rotating
//! cursor rather than by lowest index — equal-load instances (the steady
//! state right after warm-up) would otherwise pile the traffic onto
//! member 0.
//!
//! # Example
//!
//! ```
//! use pf_core::SchedulerConfig;
//! use pf_sim::cluster::{ClusterSimulation, RouterPolicy};
//! use pf_sim::{GpuSpec, ModelSpec, SimConfig};
//! use pf_workload::datasets;
//! use pf_metrics::SimTime;
//!
//! let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
//!     .scheduler(SchedulerConfig::past_future())
//!     .capacity_override(20_000)
//!     .record_series(false)
//!     .build();
//! let requests = datasets::sharegpt(48, 1);
//! let arrivals = (0..48).map(|i| SimTime::from_millis(100 * i)).collect();
//! let report = ClusterSimulation::new(config, 3, RouterPolicy::LeastEstimatedLoad)
//!     .run(requests, arrivals)?;
//! assert_eq!(report.completed(), 48);
//! # Ok::<(), pf_sim::SimError>(())
//! ```

use std::collections::VecDeque;

use pf_metrics::{SimDuration, SimTime};
use pf_obs::TraceSink;
use pf_workload::RequestSpec;

use crate::config::SimConfig;
use crate::engine::{Arrivals, Engine, Tick};
use crate::error::SimError;
pub(crate) use crate::fleet::{
    pick_cost_logit, pick_rotating_min, pick_routed, RouteCandidate, RouteRng, RouterConfig,
    ROUTE_RNG_STREAM,
};
use crate::report::SimReport;

/// Smallest cached overlap (tokens) for which [`RouterPolicy::PrefixAffinity`]
/// prefers the matching instance over the least-loaded one (re-exported
/// from the fleet kernel, which owns the routing surface).
pub use crate::fleet::PREFIX_MATCH_MIN_TOKENS;
/// Weight of queued deadline-slack pressure in
/// [`RouterPolicy::PrefixAffinity`]'s load signal (re-exported from the
/// fleet kernel, which owns the routing surface).
pub use crate::fleet::SLACK_PRESSURE_WEIGHT;

/// Request-forwarding policy of the cluster front end.
///
/// `Eq`/`Hash` are implemented manually (bitwise on the float fields of
/// [`RouterPolicy::KvOverlap`]); don't construct policies with `NaN`
/// weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RouterPolicy {
    /// Cycle through instances regardless of load.
    RoundRobin,
    /// Fewest in-flight plus queued requests.
    LeastOutstanding,
    /// Lowest current KV-cache occupancy.
    LeastUsedMemory,
    /// Lowest estimated total load: future required memory of the running
    /// batch plus expected queue footprint (the paper's §7 proposal).
    LeastEstimatedLoad,
    /// KV-aware prefix affinity: the live instance holding the longest
    /// cached prefix of the request's prompt wins, provided the overlap
    /// reaches [`PREFIX_MATCH_MIN_TOKENS`]; otherwise (and among
    /// equal-length matches) the decision falls back to load. When
    /// requests carry deadlines, each candidate's load also carries its
    /// queue's remaining-slack pressure (weighted by
    /// [`SLACK_PRESSURE_WEIGHT`]), so queues full of urgent work attract
    /// less new traffic; deadline-free runs are unaffected.
    PrefixAffinity {
        /// `true` breaks equal-match ties by least estimated load;
        /// `false` breaks them with the rotating cursor only.
        load_tiebreak: bool,
    },
    /// Block-granular overlap-scored routing over a *global* KV index
    /// (NVIDIA Dynamo-style): each live instance is scored with the cost
    /// logit
    ///
    /// ```text
    /// cost = (load_estimate + slack_weight * pressure) / perf_scale
    ///        - overlap_weight * overlap_tokens / prompt_tokens
    /// ```
    ///
    /// where `overlap_tokens` is the request's longest chained-block run
    /// held by the instance *according to the event-fed
    /// [`pf_kvcache::KvIndexer`]* (stale by the configured
    /// [`crate::fleet::RouterConfig::kv_event_delay`], unlike
    /// [`RouterPolicy::PrefixAffinity`]'s omniscient peek). With
    /// `temperature <= 0` the lowest cost wins deterministically and no
    /// randomness is consumed — `overlap_weight` 0 then replays
    /// [`RouterPolicy::LeastEstimatedLoad`] bit-for-bit on deadline-free
    /// runs; a positive temperature samples instance `i` with probability
    /// proportional to `exp(-cost_i / temperature)` from a dedicated
    /// deterministic stream.
    KvOverlap {
        /// Reward (in the load signal's token units) for a full-prompt
        /// overlap; partial overlaps scale linearly.
        overlap_weight: f64,
        /// Softmax temperature; `<= 0` degrades to argmin.
        temperature: f64,
    },
}

impl Eq for RouterPolicy {}

impl std::hash::Hash for RouterPolicy {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            RouterPolicy::PrefixAffinity { load_tiebreak } => load_tiebreak.hash(state),
            RouterPolicy::KvOverlap {
                overlap_weight,
                temperature,
            } => {
                overlap_weight.to_bits().hash(state);
                temperature.to_bits().hash(state);
            }
            _ => {}
        }
    }
}

impl RouterPolicy {
    /// All policies, for sweeps.
    pub const ALL: [RouterPolicy; 5] = [
        RouterPolicy::RoundRobin,
        RouterPolicy::LeastOutstanding,
        RouterPolicy::LeastUsedMemory,
        RouterPolicy::LeastEstimatedLoad,
        RouterPolicy::PrefixAffinity {
            load_tiebreak: true,
        },
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::LeastOutstanding => "least-outstanding",
            RouterPolicy::LeastUsedMemory => "least-used-memory",
            RouterPolicy::LeastEstimatedLoad => "least-estimated-load",
            RouterPolicy::PrefixAffinity { .. } => "prefix-affinity",
            RouterPolicy::KvOverlap { .. } => "kv-overlap",
        }
    }

    fn pick(
        self,
        engines: &[Engine],
        spec: &RequestSpec,
        router: RouterConfig,
        cursor: &mut usize,
        scratch: &mut Vec<RouteCandidate>,
        kv: Option<&mut KvRouteCtx<'_>>,
    ) -> usize {
        pick_engine(
            self,
            router,
            engines.iter().enumerate().map(|(i, e)| (i, e, 1.0)),
            spec,
            cursor,
            engines.len(),
            scratch,
            kv,
        )
        .expect("cluster has at least one instance")
    }
}

/// Borrowed state [`RouterPolicy::KvOverlap`] routes against: the global
/// event-fed index, the dedicated softmax stream, and a reusable buffer
/// for the request's chained block hashes. Candidate index `i` is looked
/// up in the indexer as instance `i as u32` — drivers publish engine
/// events under the same index they route over.
pub(crate) struct KvRouteCtx<'a> {
    pub(crate) indexer: &'a pf_kvcache::KvIndexer,
    pub(crate) rng: &'a mut RouteRng,
    /// Block size of the fleet's prefix stores; 0 when no block store is
    /// configured (every overlap is then 0).
    pub(crate) block_tokens: u32,
    pub(crate) chain: &'a mut Vec<u64>,
}

impl<'a> KvRouteCtx<'a> {
    /// Fills `chain` with the request's chained block hashes (system
    /// prompt, then conversation prefix, then prompt tail — exactly what
    /// a block store could hold for it).
    fn rehash(&mut self, spec: &RequestSpec) {
        self.chain.clear();
        if self.block_tokens == 0 {
            return;
        }
        let mut parent = pf_kvcache::KV_ROOT_HASH;
        for content in spec.matchable_blocks(self.block_tokens) {
            parent = pf_kvcache::block_hash(parent, content);
            self.chain.push(parent);
        }
    }
}

/// Applies `policy` to a candidate subset of an engine fleet (the cluster
/// routes over every instance; the elastic cluster over live members
/// only). `n` is the full fleet size — the rotating cursor is indexed
/// over it. Each candidate carries its GPU's `perf_scale`; queue-drain
/// signals divide by it, so a fast GPU looks emptier than a slow one at
/// equal queued work (1.0 everywhere reproduces the homogeneous dispatch
/// bit-for-bit). [`RouterPolicy::LeastUsedMemory`] is *not* scaled: it
/// measures KV headroom, and `GpuType` models speed and price, not
/// memory. Each policy evaluates only the signal it routes on —
/// `load_estimate` walks the whole queue, so the cheap policies must not
/// pay for it. `scratch` is the caller-owned candidate buffer
/// [`RouterPolicy::PrefixAffinity`] materializes into — routing runs per
/// arrival, so the buffer is reused rather than reallocated.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pick_engine<'a, I>(
    policy: RouterPolicy,
    router: RouterConfig,
    candidates: I,
    spec: &RequestSpec,
    cursor: &mut usize,
    n: usize,
    scratch: &mut Vec<RouteCandidate>,
    kv: Option<&mut KvRouteCtx<'_>>,
) -> Option<usize>
where
    I: Iterator<Item = (usize, &'a Engine, f64)>,
{
    match policy {
        RouterPolicy::RoundRobin => {
            pick_rotating_min(candidates.map(|(i, _, _)| (i, 0.0)), cursor, n)
        }
        RouterPolicy::LeastOutstanding => pick_rotating_min(
            candidates.map(|(i, e, s)| (i, e.outstanding() as f64 / s)),
            cursor,
            n,
        ),
        RouterPolicy::LeastUsedMemory => {
            pick_rotating_min(candidates.map(|(i, e, _)| (i, e.used_frac())), cursor, n)
        }
        RouterPolicy::LeastEstimatedLoad => pick_rotating_min(
            candidates.map(|(i, e, s)| (i, e.load_estimate() / s)),
            cursor,
            n,
        ),
        RouterPolicy::PrefixAffinity { .. } => {
            scratch.clear();
            scratch.extend(candidates.map(|(i, e, s)| RouteCandidate {
                index: i,
                // The paper's §7 signal doubles as the affinity
                // tie-break and below-threshold fallback. Queued
                // deadline-slack pressure is folded in so urgent
                // queues look fuller and get room to drain (zero — a
                // no-op — for deadline-free runs); like the base
                // load it divides by the GPU's speed — a fast member
                // drains its urgent queue proportionally faster
                // (matching the disagg router's treatment).
                load: (e.load_estimate() + router.slack_pressure_weight * e.queue_slack_pressure())
                    / s,
                cached_match: e.cached_prefix_tokens(spec),
            }));
            pick_routed(policy, scratch, router.prefix_match_min_tokens, cursor, n)
        }
        RouterPolicy::KvOverlap {
            overlap_weight,
            temperature,
        } => {
            scratch.clear();
            let prompt = f64::from(spec.input_len.max(1));
            match kv {
                Some(ctx) => {
                    ctx.rehash(spec);
                    scratch.extend(candidates.map(|(i, e, s)| RouteCandidate {
                        index: i,
                        load: (e.load_estimate()
                            + router.slack_pressure_weight * e.queue_slack_pressure())
                            / s,
                        // The *index's* view of the instance, not the
                        // instance's own cache: routing only sees blocks
                        // whose stored events have propagated.
                        cached_match: ctx.indexer.overlap(i as u32, ctx.chain),
                    }));
                    pick_cost_logit(
                        scratch,
                        |c| c.load - overlap_weight * (c.cached_match as f64 / prompt),
                        temperature,
                        cursor,
                        n,
                        ctx.rng,
                    )
                }
                // No index available (a driver that does not publish KV
                // events): every overlap is 0, so route by pure load.
                None => pick_rotating_min(
                    candidates.map(|(i, e, s)| {
                        (
                            i,
                            (e.load_estimate()
                                + router.slack_pressure_weight * e.queue_slack_pressure())
                                / s,
                        )
                    }),
                    cursor,
                    n,
                ),
            }
        }
    }
}

/// A cluster of identical serving instances behind one router.
#[derive(Debug)]
pub struct ClusterSimulation {
    configs: Vec<SimConfig>,
    policy: RouterPolicy,
}

impl ClusterSimulation {
    /// Creates a cluster of `n_instances` copies of `config` routed by
    /// `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `n_instances` is zero.
    pub fn new(config: SimConfig, n_instances: usize, policy: RouterPolicy) -> Self {
        assert!(n_instances > 0, "cluster needs at least one instance");
        let configs = (0..n_instances)
            .map(|i| {
                let mut config = config.clone();
                // Independent sampling streams per instance.
                config.seed = config.seed.wrapping_add(i as u64);
                config
            })
            .collect();
        ClusterSimulation { configs, policy }
    }

    /// Creates a cluster from per-instance configurations — a mixed fleet
    /// (different GPUs, different co-tenant memory budgets) is exactly the
    /// setting where load-aware forwarding matters.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn heterogeneous(configs: Vec<SimConfig>, policy: RouterPolicy) -> Self {
        assert!(!configs.is_empty(), "cluster needs at least one instance");
        ClusterSimulation { configs, policy }
    }

    /// Runs the cluster against a timed arrival stream (one timestamp per
    /// request, non-decreasing).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if any request cannot fit an instance or an
    /// instance stalls.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != arrival_times.len()` or the times are
    /// not sorted.
    pub fn run(
        self,
        requests: Vec<RequestSpec>,
        arrival_times: Vec<SimTime>,
    ) -> Result<ClusterReport, SimError> {
        self.run_traced(requests, arrival_times, None)
    }

    /// [`ClusterSimulation::run`] with an optional [`TraceSink`] receiving
    /// every per-instance lifecycle event (instances are numbered in
    /// construction order). With `None` this is exactly `run` — the traced
    /// path adds no work when no sink is attached.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if any request cannot fit an instance or an
    /// instance stalls.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != arrival_times.len()` or the times are
    /// not sorted.
    pub fn run_traced(
        self,
        requests: Vec<RequestSpec>,
        arrival_times: Vec<SimTime>,
        mut sink: Option<&mut dyn TraceSink>,
    ) -> Result<ClusterReport, SimError> {
        assert_eq!(
            requests.len(),
            arrival_times.len(),
            "one arrival time per request"
        );
        assert!(
            arrival_times.windows(2).all(|w| w[0] <= w[1]),
            "arrival times must be sorted"
        );
        let n_instances = self.configs.len();
        // Routing-layer state, captured before the configs move into the
        // engines. The global KV index and its softmax stream only feed
        // the KvOverlap policy; other policies never touch them.
        let router_cfg = self.configs[0].router;
        let block_tokens = self.configs[0]
            .prefix_cache
            .and_then(|p| p.block_tokens)
            .unwrap_or(0);
        let kv_routing = matches!(self.policy, RouterPolicy::KvOverlap { .. });
        let mut indexer = pf_kvcache::KvIndexer::new(router_cfg.kv_event_delay.as_micros());
        let mut route_rng = RouteRng::new(pf_workload::rng::derive_seed(
            self.configs[0].seed,
            ROUTE_RNG_STREAM,
        ));
        let mut chain_scratch: Vec<u64> = Vec::new();
        let mut kv_event_buf: Vec<(SimTime, pf_kvcache::KvEvent)> = Vec::new();
        let mut engines: Vec<Engine> = self
            .configs
            .into_iter()
            .enumerate()
            .map(|(i, config)| {
                let mut engine = Engine::new(config, Arrivals::offline(Vec::new()));
                engine.set_instance(i as u32);
                engine
            })
            .collect();
        if kv_routing {
            for engine in &mut engines {
                engine.enable_kv_event_log();
            }
        }
        for engine in &engines {
            engine.validate()?;
            for spec in &requests {
                engine.validate_spec(spec)?;
            }
        }
        let mut stream: VecDeque<(SimTime, RequestSpec)> =
            arrival_times.into_iter().zip(requests).collect();
        let mut cursor = 0usize;
        let mut routed = vec![0usize; n_instances];
        // Reused across arrivals by the affinity router (see pick_engine).
        let mut route_scratch: Vec<RouteCandidate> = Vec::new();
        // Tick-selection argmin (not a routing decision: first-index ties
        // here only order simulation work, they move no traffic).
        let lagging = |engines: &[Engine]| {
            engines
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.now().cmp(&b.now()))
                .map(|(i, _)| i)
                .expect("cluster has at least one instance")
        };

        loop {
            // Tick the engine with the smallest clock; route stream
            // arrivals once the global front passes their timestamp.
            let i_min = lagging(&engines);
            if let Some(&(at, _)) = stream.front() {
                if engines[i_min].now() >= at {
                    let (at, spec) = stream.pop_front().expect("peeked");
                    if kv_routing {
                        // The index's view of "now" is the routing-time
                        // reference clock: stored events older than the
                        // propagation delay become visible here.
                        indexer.advance(engines[i_min].now().as_micros());
                    }
                    let mut kv_ctx = KvRouteCtx {
                        indexer: &indexer,
                        rng: &mut route_rng,
                        block_tokens,
                        chain: &mut chain_scratch,
                    };
                    let target = self.policy.pick(
                        &engines,
                        &spec,
                        router_cfg,
                        &mut cursor,
                        &mut route_scratch,
                        Some(&mut kv_ctx),
                    );
                    let arrival = at.max(engines[target].now());
                    engines[target].inject(arrival, spec);
                    routed[target] += 1;
                    continue;
                }
            }
            let tick = engines[i_min].tick_traced(&mut sink)?;
            if kv_routing {
                kv_event_buf.clear();
                engines[i_min].drain_kv_events(&mut kv_event_buf);
                for &(at, ev) in &kv_event_buf {
                    indexer.publish(i_min as u32, ev, at.as_micros());
                }
            }
            match tick {
                Tick::Worked => {}
                Tick::Sleep(t) => engines[i_min].advance_to(t),
                Tick::Blocked => unreachable!("engines only queue injected work"),
                Tick::Drained | Tick::HorizonReached => {
                    if let Some(&(at, _)) = stream.front() {
                        // Idle instance: fast-forward to the next arrival so
                        // it remains the routing-time reference.
                        engines[i_min].advance_to(at);
                        continue;
                    }
                    // No more arrivals: finish the remaining engines.
                    let all_done = engines.iter_mut().all(|e| {
                        matches!(
                            e.tick_traced(&mut sink),
                            Ok(Tick::Drained) | Ok(Tick::HorizonReached)
                        )
                    });
                    if all_done {
                        break;
                    }
                }
            }
        }

        let reports: Vec<SimReport> = engines.into_iter().map(Engine::into_report).collect();
        Ok(ClusterReport {
            policy: self.policy,
            routed_per_instance: routed,
            instances: reports,
        })
    }
}

/// Aggregated result of a cluster run.
#[derive(Debug)]
pub struct ClusterReport {
    /// Routing policy used.
    pub policy: RouterPolicy,
    /// Requests routed to each instance.
    pub routed_per_instance: Vec<usize>,
    /// Per-instance simulation reports.
    pub instances: Vec<SimReport>,
}

impl ClusterReport {
    /// Total completed requests.
    pub fn completed(&self) -> usize {
        self.instances.iter().map(|r| r.completed).sum()
    }

    /// Total SLA-satisfying requests.
    pub fn satisfied(&self) -> usize {
        self.instances
            .iter()
            .map(|r| r.goodput.satisfied_requests)
            .sum()
    }

    /// Cluster makespan: the latest instance finish time.
    pub fn makespan(&self) -> SimDuration {
        self.instances
            .iter()
            .map(|r| r.makespan)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Cluster goodput: SLA-satisfying output tokens per second over the
    /// cluster makespan.
    pub fn goodput_tok_per_s(&self) -> f64 {
        let tokens: u64 = self
            .instances
            .iter()
            .map(|r| r.goodput.satisfied_output_tokens)
            .sum();
        let secs = self.makespan().as_secs_f64();
        if secs > 0.0 {
            tokens as f64 / secs
        } else {
            0.0
        }
    }

    /// Total evictions across instances.
    pub fn evictions(&self) -> u64 {
        self.instances.iter().map(|r| r.evictions).sum()
    }

    /// Fraction of completed requests whose TTFT met the SLA (1.0 when no
    /// request completed) — the headline prefix-affinity routing improves.
    pub fn ttft_attainment(&self) -> f64 {
        let total: usize = self
            .instances
            .iter()
            .map(|r| r.goodput.total_requests)
            .sum();
        if total == 0 {
            return 1.0;
        }
        let ttft_ok: usize = self
            .instances
            .iter()
            .map(|r| r.goodput.ttft_ok_count())
            .sum();
        ttft_ok as f64 / total as f64
    }

    /// Prefix-cache statistics merged across instances (all zero when
    /// caches are disabled).
    pub fn prefix_stats(&self) -> pf_kvcache::PrefixCacheStats {
        let mut stats = pf_kvcache::PrefixCacheStats::default();
        for instance in &self.instances {
            stats.merge(&instance.prefix_stats);
        }
        stats
    }

    /// Imbalance of routed requests: max/min across instances (1.0 =
    /// perfectly balanced by count).
    pub fn routing_imbalance(&self) -> f64 {
        let max = self.routed_per_instance.iter().copied().max().unwrap_or(0);
        let min = self.routed_per_instance.iter().copied().min().unwrap_or(0);
        if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuSpec, ModelSpec};
    use pf_core::SchedulerConfig;
    use pf_workload::{datasets, LengthSampler};

    fn base_config(capacity: u64) -> SimConfig {
        SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
            .scheduler(SchedulerConfig::past_future())
            .capacity_override(capacity)
            .record_series(false)
            .seed(5)
            .build()
    }

    /// Highly skewed request sizes make load-aware routing matter.
    fn skewed_requests(n: usize, seed: u64) -> Vec<RequestSpec> {
        let input = LengthSampler::uniform(16, 64);
        let output = LengthSampler::mixture(vec![
            (0.7, LengthSampler::uniform(16, 64)),
            (0.3, LengthSampler::uniform(512, 1024)),
        ]);
        datasets::from_samplers(n, seed, &input, &output, 1024)
    }

    fn burst_arrivals(n: usize, gap_ms: u64) -> Vec<SimTime> {
        (0..n)
            .map(|i| SimTime::from_millis(gap_ms * i as u64))
            .collect()
    }

    #[test]
    fn cluster_completes_everything_under_every_policy() {
        for policy in RouterPolicy::ALL {
            let report = ClusterSimulation::new(base_config(8_000), 3, policy)
                .run(skewed_requests(90, 1), burst_arrivals(90, 50))
                .unwrap_or_else(|e| panic!("{}: {e}", policy.label()));
            assert_eq!(report.completed(), 90, "{}", policy.label());
            assert_eq!(report.instances.len(), 3);
            assert_eq!(report.routed_per_instance.iter().sum::<usize>(), 90);
        }
    }

    #[test]
    fn round_robin_balances_by_count() {
        let report = ClusterSimulation::new(base_config(8_000), 3, RouterPolicy::RoundRobin)
            .run(skewed_requests(90, 2), burst_arrivals(90, 50))
            .unwrap();
        assert_eq!(report.routed_per_instance, vec![30, 30, 30]);
        assert!((report.routing_imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn load_aware_routing_beats_round_robin_on_makespan() {
        let requests = skewed_requests(120, 3);
        let arrivals = burst_arrivals(120, 20);
        let run = |policy| {
            ClusterSimulation::new(base_config(4_000), 4, policy)
                .run(requests.clone(), arrivals.clone())
                .unwrap()
        };
        let rr = run(RouterPolicy::RoundRobin);
        let load = run(RouterPolicy::LeastEstimatedLoad);
        assert!(
            load.makespan() <= rr.makespan(),
            "estimated-load routing ({}) should not lose to round-robin ({})",
            load.makespan(),
            rr.makespan()
        );
    }

    #[test]
    fn cluster_is_deterministic() {
        let run = || {
            ClusterSimulation::new(base_config(6_000), 2, RouterPolicy::LeastEstimatedLoad)
                .run(skewed_requests(60, 4), burst_arrivals(60, 100))
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan(), b.makespan());
        assert_eq!(a.routed_per_instance, b.routed_per_instance);
        assert_eq!(a.evictions(), b.evictions());
    }

    #[test]
    fn single_instance_cluster_matches_plain_simulation() {
        let requests = skewed_requests(40, 6);
        let arrivals = burst_arrivals(40, 100);
        let cluster = ClusterSimulation::new(base_config(6_000), 1, RouterPolicy::RoundRobin)
            .run(requests.clone(), arrivals.clone())
            .unwrap();
        let plain = crate::Simulation::with_arrivals(base_config(6_000), requests, arrivals)
            .run()
            .unwrap();
        assert_eq!(cluster.completed(), plain.completed);
        assert_eq!(cluster.instances[0].decode_steps, plain.decode_steps);
        assert_eq!(cluster.makespan(), plain.makespan);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn zero_instances_panics() {
        let _ = ClusterSimulation::new(base_config(1_000), 0, RouterPolicy::RoundRobin);
    }

    #[test]
    #[should_panic(expected = "must be sorted")]
    fn unsorted_arrivals_panic() {
        let _ = ClusterSimulation::new(base_config(1_000), 1, RouterPolicy::RoundRobin).run(
            skewed_requests(2, 7),
            vec![SimTime::from_secs(1), SimTime::ZERO],
        );
    }
}
