//! LLM architecture descriptions.
//!
//! Only the quantities that drive serving performance are modelled: weight
//! bytes (read once per decode step), FLOPs per token (≈ 2 × parameters for
//! dense transformers) and KV-cache bytes per token, which follows directly
//! from the attention geometry:
//!
//! ```text
//! kv_bytes/token = 2 (K and V) × layers × kv_heads × head_dim × 2 (fp16)
//! ```

/// An LLM architecture, parameterized by its attention geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ModelSpec {
    /// Model name.
    pub name: &'static str,
    /// Total parameter count.
    pub n_params: u64,
    /// Transformer layer count.
    pub n_layers: u32,
    /// Hidden dimension.
    pub hidden: u32,
    /// Attention query heads.
    pub n_heads: u32,
    /// KV heads (smaller than `n_heads` under grouped-query attention).
    pub n_kv_heads: u32,
}

impl ModelSpec {
    /// Llama-2 7B (MHA: 32 layers × 4096 hidden, 32 heads).
    pub const fn llama2_7b() -> Self {
        ModelSpec {
            name: "Llama2-7B-Chat",
            n_params: 6_738_000_000,
            n_layers: 32,
            hidden: 4096,
            n_heads: 32,
            n_kv_heads: 32,
        }
    }

    /// Llama-2 13B (MHA: 40 layers × 5120 hidden, 40 heads).
    pub const fn llama2_13b() -> Self {
        ModelSpec {
            name: "Llama2-13B-Chat",
            n_params: 13_016_000_000,
            n_layers: 40,
            hidden: 5120,
            n_heads: 40,
            n_kv_heads: 40,
        }
    }

    /// Llama-2 70B (GQA: 80 layers × 8192 hidden, 64 query / 8 KV heads).
    pub const fn llama2_70b() -> Self {
        ModelSpec {
            name: "Llama2-70B-Chat",
            n_params: 68_977_000_000,
            n_layers: 80,
            hidden: 8192,
            n_heads: 64,
            n_kv_heads: 8,
        }
    }

    /// Qwen-VL-Chat (Qwen-7B language tower; its ViT contributes 256
    /// image tokens per image, modelled on the workload side).
    pub const fn qwen_vl_chat() -> Self {
        ModelSpec {
            name: "Qwen-VL-Chat",
            n_params: 9_600_000_000,
            n_layers: 32,
            hidden: 4096,
            n_heads: 32,
            n_kv_heads: 32,
        }
    }

    /// LLaVA-1.5-7B (Vicuna-7B tower; 576 image tokens per image).
    pub const fn llava_15_7b() -> Self {
        ModelSpec {
            name: "LLaVA-1.5-7B",
            n_params: 7_060_000_000,
            n_layers: 32,
            hidden: 4096,
            n_heads: 32,
            n_kv_heads: 32,
        }
    }

    /// LLaVA-1.5-13B (Vicuna-13B tower; 576 image tokens per image).
    pub const fn llava_15_13b() -> Self {
        ModelSpec {
            name: "LLaVA-1.5-13B",
            n_params: 13_350_000_000,
            n_layers: 40,
            hidden: 5120,
            n_heads: 40,
            n_kv_heads: 40,
        }
    }

    /// Attention head dimension.
    pub fn head_dim(&self) -> u32 {
        self.hidden / self.n_heads
    }

    /// fp16 weight footprint in bytes.
    pub fn weight_bytes(&self) -> u64 {
        self.n_params * 2
    }

    /// KV-cache bytes stored per token.
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * u64::from(self.n_layers) * u64::from(self.n_kv_heads) * u64::from(self.head_dim()) * 2
    }

    /// Dense FLOPs per processed token (≈ 2 × parameters).
    pub fn flops_per_token(&self) -> f64 {
        2.0 * self.n_params as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama2_7b_kv_footprint() {
        // 2 × 32 layers × 32 heads × 128 dim × 2 bytes = 512 KiB/token.
        let m = ModelSpec::llama2_7b();
        assert_eq!(m.head_dim(), 128);
        assert_eq!(m.kv_bytes_per_token(), 524_288);
        assert_eq!(m.weight_bytes(), 13_476_000_000);
    }

    #[test]
    fn llama2_70b_gqa_shrinks_kv() {
        // GQA: 2 × 80 × 8 × 128 × 2 = 320 KiB/token — *less* than 13B
        // despite 5× the parameters.
        let m70 = ModelSpec::llama2_70b();
        let m13 = ModelSpec::llama2_13b();
        assert_eq!(m70.kv_bytes_per_token(), 327_680);
        assert!(m70.kv_bytes_per_token() < m13.kv_bytes_per_token());
    }

    #[test]
    fn llama2_13b_kv_footprint() {
        // 2 × 40 × 40 × 128 × 2 = 800 KiB/token.
        assert_eq!(ModelSpec::llama2_13b().kv_bytes_per_token(), 819_200);
    }

    #[test]
    fn flops_scale_with_params() {
        assert!(
            ModelSpec::llama2_70b().flops_per_token()
                > 9.0 * ModelSpec::llama2_7b().flops_per_token()
        );
    }

    #[test]
    fn multimodal_towers_match_text_models() {
        assert_eq!(
            ModelSpec::llava_15_7b().kv_bytes_per_token(),
            ModelSpec::llama2_7b().kv_bytes_per_token()
        );
        assert_eq!(
            ModelSpec::llava_15_13b().kv_bytes_per_token(),
            ModelSpec::llama2_13b().kv_bytes_per_token()
        );
    }
}
