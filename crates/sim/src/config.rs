//! Simulation configuration.

use pf_core::SchedulerConfig;
use pf_kvcache::{ContiguousPool, KvCacheManager, PagedPool, TokenPool};
use pf_metrics::{SimDuration, SlaSpec};

use crate::hardware::GpuSpec;
use crate::model::ModelSpec;
use crate::perf::{PerfModel, PerfTuning};

/// KV-cache memory-manager choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum KvLayout {
    /// Token-granularity pool (LightLLM TokenAttention).
    TokenPool,
    /// Fixed-size block pool (vLLM PagedAttention).
    Paged {
        /// Block size in tokens (vLLM default: 16).
        block_size: u64,
    },
    /// Contiguous max-length reservation (FasterTransformer-era systems).
    Contiguous,
}

/// Batching discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BatchingMode {
    /// Continuous batching (iteration-level scheduling).
    Continuous,
    /// Static batching: form a batch, pad, run it to full completion
    /// (pre-ORCA systems; the "original implementation" multimodal
    /// baselines in Table 2).
    Static {
        /// Maximum requests per static batch.
        max_batch: usize,
    },
}

/// What happens to a request evicted under memory pressure.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EvictionMode {
    /// Recompute preemption (vLLM/LightLLM default): the victim's KV cache
    /// is dropped; on readmission the prompt plus generated tokens are
    /// re-prefilled.
    Recompute,
    /// Swap preemption: the victim's KV cache is copied to host memory over
    /// PCIe and copied back on resume — no recompute, but the transfers
    /// stall the engine in both directions. (The swap-in cost is modelled
    /// in whole-prompt prefill steps; under [`PrefillMode::Chunked`] the
    /// restore is treated as free, a small optimism acceptable because the
    /// chunked baseline never evicts in the paper's experiments.)
    Swap {
        /// Effective host-device bandwidth in GB/s (PCIe 4.0 x16 ≈ 25).
        pcie_gbps: f64,
    },
}

impl EvictionMode {
    /// Swap preemption over PCIe 4.0 x16 (≈25 GB/s effective).
    pub const fn swap_pcie4() -> Self {
        EvictionMode::Swap { pcie_gbps: 25.0 }
    }
}

/// Prompt-processing discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PrefillMode {
    /// Admitted prompts are processed in one dedicated prefill step
    /// (LightLLM / vLLM default; decode pauses during prefill).
    WholePrompt,
    /// Chunked prefill fused with decode steps (DeepSpeed-MII "splitfuse").
    Chunked {
        /// Prompt tokens processed per step.
        chunk_tokens: u64,
    },
}

/// Order in which the engine's admission loop (and the disaggregated
/// pools' stage queues) serve waiting requests.
///
/// [`QueueOrder::LeastSlackFirst`] is the deadline-aware discipline: the
/// queue is ranked by *remaining slack* — the request's effective deadline
/// ([`pf_workload::RequestSpec::deadline`], else
/// [`SimConfig::request_deadline`]) minus the time it has already waited —
/// so a request 50 ms from missing overtakes one with 5 s to spare.
/// Requests with no effective deadline rank last, and an aging cap
/// guarantees no request (deadline-less or lax) can starve behind an
/// endless stream of tight ones. Requests whose slack has already fallen
/// below the minimum feasible prefill time are dropped early and counted
/// `timed_out` — admitting them would burn a prefill pass (and KV) on a
/// request that is guaranteed to miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum QueueOrder {
    /// Arrival order (the default; deadlines only act as the cancellation
    /// guillotine).
    #[default]
    Fifo,
    /// Least remaining deadline slack first, with early-drop of doomed
    /// requests (see the type-level docs).
    LeastSlackFirst {
        /// Once a request has waited this long it is served in arrival
        /// order ahead of any slack ranking (starvation bound for
        /// deadline-less and lax requests).
        aging_cap: SimDuration,
    },
}

impl QueueOrder {
    /// Least-slack-first with a 30-second aging cap.
    pub fn least_slack() -> Self {
        QueueOrder::LeastSlackFirst {
            aging_cap: SimDuration::from_secs(30),
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            QueueOrder::Fifo => "fifo",
            QueueOrder::LeastSlackFirst { .. } => "least-slack",
        }
    }

    /// Whether this discipline ranks by slack (and early-drops doomed
    /// requests).
    pub fn is_slack_aware(self) -> bool {
        matches!(self, QueueOrder::LeastSlackFirst { .. })
    }
}

/// Prefix-cache configuration: the instance retains finished requests'
/// conversation KV in an LRU keyed by [`pf_workload::PrefixId`], so later
/// requests declaring the same prefix skip re-prefilling the cached
/// tokens. The cache's occupancy is charged against the *same* KV pool as
/// request KV (and reclaimed first under memory pressure), bounded by
/// `budget_frac` of capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PrefixCacheConfig {
    /// Largest fraction of KV capacity the prefix cache may occupy, in
    /// `(0, 1]`.
    pub budget_frac: f64,
    /// `Some(block_tokens)` switches the store from whole-prefix-id
    /// entries to fixed-size chained-hash KV blocks
    /// ([`pf_kvcache::BlockPrefixCache`]): matches are block runs (cross
    /// conversation via shared system prompts), eviction is
    /// suffix-granular, and the engine emits
    /// [`pf_kvcache::KvEvent`]s consumable by a global
    /// [`pf_kvcache::KvIndexer`]. `None` (default) keeps the legacy
    /// whole-prefix LRU and replays bit-identically to earlier versions.
    #[cfg_attr(feature = "serde", serde(default))]
    pub block_tokens: Option<u32>,
}

impl PrefixCacheConfig {
    /// Creates a configuration with the given capacity fraction.
    ///
    /// # Panics
    ///
    /// Panics if `budget_frac` is not in `(0, 1]`.
    pub fn with_budget_frac(budget_frac: f64) -> Self {
        assert!(
            budget_frac > 0.0 && budget_frac <= 1.0,
            "prefix-cache budget fraction {budget_frac} outside (0, 1]"
        );
        PrefixCacheConfig {
            budget_frac,
            block_tokens: None,
        }
    }

    /// Switches the store to block granularity with `block_tokens`-token
    /// blocks (see [`PrefixCacheConfig::block_tokens`]).
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero.
    pub fn blocks(mut self, block_tokens: u32) -> Self {
        assert!(block_tokens > 0, "KV block size must be positive");
        self.block_tokens = Some(block_tokens);
        self
    }

    /// Cache budget in tokens for a pool of `capacity_tokens`.
    pub fn budget_tokens(&self, capacity_tokens: u64) -> u64 {
        (capacity_tokens as f64 * self.budget_frac) as u64
    }
}

impl Default for PrefixCacheConfig {
    /// A fifth of KV capacity — roughly what chat deployments reserve for
    /// system prompts and hot sessions.
    fn default() -> Self {
        PrefixCacheConfig {
            budget_frac: 0.2,
            block_tokens: None,
        }
    }
}

/// Full description of one simulated serving deployment.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Model being served.
    pub model: ModelSpec,
    /// GPU type.
    pub gpu: GpuSpec,
    /// Tensor-parallel degree (number of GPUs).
    pub tensor_parallel: u32,
    /// Admission policy.
    pub scheduler: SchedulerConfig,
    /// SLA thresholds used for goodput accounting.
    pub sla: SlaSpec,
    /// KV-cache manager.
    pub kv_layout: KvLayout,
    /// Batching discipline.
    pub batching: BatchingMode,
    /// Prompt-processing discipline.
    pub prefill: PrefillMode,
    /// Preemption mechanism for evicted requests.
    pub eviction: EvictionMode,
    /// Performance-model tuning.
    pub tuning: PerfTuning,
    /// Seed for all stochastic components (scheduler sampling).
    pub seed: u64,
    /// Overrides the computed KV capacity (tokens). Used by toy scenarios
    /// such as the paper's Figure 6 (capacity 21) and by tests.
    pub capacity_override: Option<u64>,
    /// Hard stop for the simulated clock; unfinished requests are dropped
    /// from the report.
    pub max_sim_time: Option<SimDuration>,
    /// Output lengths fed to the scheduler before the run starts, modelling
    /// a service whose history window is already warm.
    pub history_warmup: Vec<u32>,
    /// Record utilization/future-memory time series (small cost; on by
    /// default).
    pub record_series: bool,
    /// Simulated prefix cache (`None` disables prefix reuse entirely —
    /// the pre-KV-aware behavior).
    pub prefix_cache: Option<PrefixCacheConfig>,
    /// Deployment-wide request deadline applied to requests that do not
    /// carry their own [`pf_workload::RequestSpec::deadline`]: a request
    /// still queued past this — waiting for its first token, or
    /// preempted and waiting for readmission — is cancelled and counted
    /// in [`crate::SimReport::timed_out`]. `None` (default) waits
    /// forever.
    pub request_deadline: Option<SimDuration>,
    /// Queue discipline of the admission loop (default
    /// [`QueueOrder::Fifo`]; see [`QueueOrder::LeastSlackFirst`] for
    /// deadline-aware scheduling).
    pub queue_order: QueueOrder,
    /// Routing-layer tunables (prefix-affinity threshold, slack-pressure
    /// weight, KV-index staleness). Defaults reproduce the historical
    /// constants bit-for-bit.
    pub router: crate::fleet::RouterConfig,
}

impl SimConfig {
    /// Starts a builder for the given model/GPU pair.
    pub fn builder(model: ModelSpec, gpu: GpuSpec) -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig {
                model,
                gpu,
                tensor_parallel: 1,
                scheduler: SchedulerConfig::past_future(),
                sla: SlaSpec::chat_7b(),
                kv_layout: KvLayout::TokenPool,
                batching: BatchingMode::Continuous,
                prefill: PrefillMode::WholePrompt,
                eviction: EvictionMode::Recompute,
                tuning: PerfTuning::default(),
                seed: 0,
                capacity_override: None,
                max_sim_time: None,
                history_warmup: Vec::new(),
                record_series: true,
                prefix_cache: None,
                request_deadline: None,
                queue_order: QueueOrder::Fifo,
                router: crate::fleet::RouterConfig::default(),
            },
        }
    }

    /// The performance model implied by this configuration.
    pub fn perf_model(&self) -> PerfModel {
        PerfModel::new(self.model, self.gpu, self.tensor_parallel, self.tuning)
    }

    /// KV-cache capacity in tokens (respecting any override).
    pub fn capacity_tokens(&self) -> u64 {
        self.capacity_override
            .unwrap_or_else(|| self.perf_model().kv_capacity_tokens())
    }

    /// Instantiates the configured KV-cache manager.
    pub fn build_kv_manager(&self) -> Box<dyn KvCacheManager> {
        let capacity = self.capacity_tokens();
        match self.kv_layout {
            KvLayout::TokenPool => Box::new(TokenPool::new(capacity)),
            KvLayout::Paged { block_size } => Box::new(PagedPool::new(capacity, block_size)),
            KvLayout::Contiguous => Box::new(ContiguousPool::new(capacity)),
        }
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the admission policy.
    pub fn scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.config.scheduler = scheduler;
        self
    }

    /// Sets the SLA thresholds.
    pub fn sla(mut self, sla: SlaSpec) -> Self {
        self.config.sla = sla;
        self
    }

    /// Sets the tensor-parallel degree.
    pub fn tensor_parallel(mut self, tp: u32) -> Self {
        self.config.tensor_parallel = tp;
        self
    }

    /// Sets the KV-cache layout.
    pub fn kv_layout(mut self, layout: KvLayout) -> Self {
        self.config.kv_layout = layout;
        self
    }

    /// Sets the batching discipline.
    pub fn batching(mut self, batching: BatchingMode) -> Self {
        self.config.batching = batching;
        self
    }

    /// Sets the prompt-processing discipline.
    pub fn prefill(mut self, prefill: PrefillMode) -> Self {
        self.config.prefill = prefill;
        self
    }

    /// Sets the preemption mechanism.
    pub fn eviction(mut self, eviction: EvictionMode) -> Self {
        self.config.eviction = eviction;
        self
    }

    /// Sets performance tuning parameters.
    pub fn tuning(mut self, tuning: PerfTuning) -> Self {
        self.config.tuning = tuning;
        self
    }

    /// Scales the whole stack's kernel speed (1.0 = LightLLM baseline).
    pub fn kernel_speedup(mut self, speedup: f64) -> Self {
        self.config.tuning.kernel_speedup = speedup;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Overrides the KV capacity in tokens (toy scenarios / tests).
    pub fn capacity_override(mut self, tokens: u64) -> Self {
        self.config.capacity_override = Some(tokens);
        self
    }

    /// Stops the simulated clock after `limit`.
    pub fn max_sim_time(mut self, limit: SimDuration) -> Self {
        self.config.max_sim_time = Some(limit);
        self
    }

    /// Pre-warms the scheduler's output-length history.
    pub fn history_warmup(mut self, lengths: Vec<u32>) -> Self {
        self.config.history_warmup = lengths;
        self
    }

    /// Enables or disables time-series recording.
    pub fn record_series(mut self, record: bool) -> Self {
        self.config.record_series = record;
        self
    }

    /// Enables the simulated prefix cache with `budget_frac` of KV
    /// capacity (see [`PrefixCacheConfig`]).
    pub fn prefix_cache(mut self, budget_frac: f64) -> Self {
        self.config.prefix_cache = Some(PrefixCacheConfig::with_budget_frac(budget_frac));
        self
    }

    /// Sets the deployment-wide request deadline (see
    /// [`SimConfig::request_deadline`]).
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub fn request_deadline(mut self, deadline: SimDuration) -> Self {
        assert!(!deadline.is_zero(), "a zero deadline can never be met");
        self.config.request_deadline = Some(deadline);
        self
    }

    /// Sets the admission queue discipline (see [`QueueOrder`]).
    pub fn queue_order(mut self, order: QueueOrder) -> Self {
        self.config.queue_order = order;
        self
    }

    /// Enables a *block-granular* prefix store with `budget_frac` of
    /// capacity and `block_tokens`-token chained-hash blocks (see
    /// [`PrefixCacheConfig::block_tokens`]).
    pub fn prefix_cache_blocks(mut self, budget_frac: f64, block_tokens: u32) -> Self {
        self.config.prefix_cache =
            Some(PrefixCacheConfig::with_budget_frac(budget_frac).blocks(block_tokens));
        self
    }

    /// Overrides the routing-layer tunables (see
    /// [`crate::fleet::RouterConfig`]).
    pub fn router(mut self, router: crate::fleet::RouterConfig) -> Self {
        self.config.router = router;
        self
    }

    /// Selects the KV index backing KvOverlap routing over a
    /// disaggregated prefill pool (see [`crate::DisaggKvIndex`]).
    pub fn disagg_kv_index(mut self, index: crate::fleet::DisaggKvIndex) -> Self {
        self.config.router.disagg_kv_index = index;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> SimConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let c = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g()).build();
        assert_eq!(c.tensor_parallel, 1);
        assert_eq!(c.kv_layout, KvLayout::TokenPool);
        assert_eq!(c.batching, BatchingMode::Continuous);
        assert_eq!(c.prefill, PrefillMode::WholePrompt);
        assert_eq!(c.queue_order, QueueOrder::Fifo);
        assert!(c.record_series);
        assert!(c.capacity_tokens() > 100_000);
    }

    #[test]
    fn capacity_override_wins() {
        let c = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
            .capacity_override(21)
            .build();
        assert_eq!(c.capacity_tokens(), 21);
    }

    #[test]
    fn kv_manager_matches_layout() {
        let base =
            SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g()).capacity_override(1000);
        let token = base.clone().kv_layout(KvLayout::TokenPool).build();
        assert_eq!(token.build_kv_manager().capacity_tokens(), 1000);
        let paged = base
            .clone()
            .kv_layout(KvLayout::Paged { block_size: 16 })
            .build();
        // Paged rounds down to whole blocks.
        assert_eq!(paged.build_kv_manager().capacity_tokens(), 992);
        let contiguous = base.kv_layout(KvLayout::Contiguous).build();
        assert_eq!(contiguous.build_kv_manager().capacity_tokens(), 1000);
    }

    #[test]
    fn queue_order_flows_into_config() {
        let c = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
            .queue_order(QueueOrder::least_slack())
            .build();
        assert!(c.queue_order.is_slack_aware());
        assert_eq!(c.queue_order.label(), "least-slack");
        assert_eq!(QueueOrder::default().label(), "fifo");
        assert!(!QueueOrder::Fifo.is_slack_aware());
    }

    #[test]
    fn kernel_speedup_flows_into_tuning() {
        let c = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
            .kernel_speedup(1.5)
            .build();
        assert_eq!(c.tuning.kernel_speedup, 1.5);
    }
}
