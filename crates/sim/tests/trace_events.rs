//! Trace-emission tests: attaching a [`TraceSink`] must not perturb the
//! simulation (bit-identical reports vs the untraced path), and the
//! emitted stream must reconstruct into spans that exactly partition
//! every request's lifetime — across the colocated engine, the
//! disaggregated pools and the elastic fleet.

use pf_autoscale::{AutoscaleConfig, PredictorKind};
use pf_core::SchedulerConfig;
use pf_metrics::{SimDuration, SimTime};
use pf_obs::{reconstruct, RecordingSink, SpanOutcome, TraceEvent};
use pf_sim::disagg::{DisaggCluster, DisaggConfig};
use pf_sim::elastic::ElasticCluster;
use pf_sim::{GpuSpec, ModelSpec, QueueOrder, SimConfig, Simulation};
use pf_workload::{datasets, LengthSampler};

fn base_config(capacity: u64) -> SimConfig {
    SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(capacity)
        .record_series(false)
        .seed(7)
        .build()
}

fn steady_arrivals(n: usize, gap_ms: u64) -> Vec<SimTime> {
    (0..n)
        .map(|i| SimTime::from_millis(gap_ms * i as u64))
        .collect()
}

/// The tight-memory offline scenario: an aggressive scheduler over a
/// decode-heavy workload with a high generation cap, so running requests
/// outgrow memory and the stream exercises `Preempted` and re-admission.
fn preemption_scenario() -> (SimConfig, Vec<pf_workload::RequestSpec>) {
    let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::aggressive(0.99))
        .capacity_override(1_200)
        .record_series(false)
        .seed(11)
        .build();
    let input = LengthSampler::uniform(8, 32);
    let output = LengthSampler::uniform(64, 256);
    (config, datasets::from_samplers(48, 3, &input, &output, 512))
}

#[test]
fn traced_colocated_run_is_bit_identical_to_untraced() {
    let (config, requests) = preemption_scenario();
    let untraced = Simulation::offline(config.clone(), requests.clone())
        .run()
        .expect("untraced run");
    let mut sink = RecordingSink::new();
    let traced = Simulation::offline(config, requests)
        .run_traced(Some(&mut sink))
        .expect("traced run");
    assert_eq!(format!("{untraced:?}"), format!("{traced:?}"));
    assert!(!sink.events.is_empty());
    assert!(!sink.gauges.is_empty());
}

#[test]
fn colocated_stream_reconstructs_into_partitioning_spans() {
    let (config, requests) = preemption_scenario();
    let n = requests.len();
    let mut sink = RecordingSink::new();
    let report = Simulation::offline(config, requests)
        .run_traced(Some(&mut sink))
        .expect("traced run");
    assert!(report.evictions > 0, "scenario must exercise preemption");
    let spans = reconstruct(&sink.events);
    assert_eq!(spans.len(), n);
    for span in &spans {
        assert!(
            span.phases_partition_lifetime(),
            "request {} phases must partition its lifetime",
            span.request
        );
        assert!(matches!(span.outcome, SpanOutcome::Finished { .. }));
    }
}

#[test]
fn deadline_drops_emit_timeout_events() {
    let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(6_000)
        .record_series(false)
        .request_deadline(SimDuration::from_millis(400))
        .queue_order(QueueOrder::least_slack())
        .seed(13)
        .build();
    let input = LengthSampler::uniform(512, 2048);
    let output = LengthSampler::uniform(64, 256);
    let requests = datasets::from_samplers(64, 5, &input, &output, 64);
    let n = requests.len();
    let mut sink = RecordingSink::new();
    let report = Simulation::with_arrivals(config, requests, steady_arrivals(n, 10))
        .run_traced(Some(&mut sink))
        .expect("traced run");
    assert!(
        report.timed_out > 0,
        "scenario must exercise deadline drops"
    );
    let cancelled = sink
        .events
        .iter()
        .filter(|ev| {
            matches!(
                ev,
                TraceEvent::TimedOut { .. } | TraceEvent::SlackDropped { .. }
            )
        })
        .count();
    assert_eq!(cancelled, report.timed_out);
    let spans = reconstruct(&sink.events);
    let cancelled_spans = spans
        .iter()
        .filter(|s| matches!(s.outcome, SpanOutcome::TimedOut | SpanOutcome::SlackDropped))
        .count();
    assert_eq!(cancelled_spans, report.timed_out);
}

#[test]
fn traced_disagg_run_is_bit_identical_and_covers_transfers() {
    let input = LengthSampler::uniform(1024, 3072);
    let output = LengthSampler::uniform(8, 48);
    let requests = datasets::from_samplers(60, 2, &input, &output, 64);
    let arrivals = steady_arrivals(60, 120);
    let cluster = |sink| {
        DisaggCluster::new(DisaggConfig::new(base_config(12_000)), 2, 2).run_traced(
            requests.clone(),
            arrivals.clone(),
            sink,
        )
    };
    let untraced = cluster(None).expect("untraced run");
    let mut sink = RecordingSink::new();
    let traced = cluster(Some(&mut sink)).expect("traced run");
    assert_eq!(format!("{untraced:?}"), format!("{traced:?}"));
    let starts = sink
        .events
        .iter()
        .filter(|ev| matches!(ev, TraceEvent::KvTransferStart { .. }))
        .count();
    let ends = sink
        .events
        .iter()
        .filter(|ev| matches!(ev, TraceEvent::KvTransferEnd { .. }))
        .count();
    assert_eq!(starts, traced.transfers.transfers);
    assert_eq!(ends, traced.transfers.transfers);
    let spans = reconstruct(&sink.events);
    assert_eq!(spans.len(), 60);
    for span in &spans {
        assert!(span.phases_partition_lifetime());
    }
}

#[test]
fn traced_elastic_run_is_bit_identical_and_emits_scaling() {
    let base = base_config(12_000);
    let autoscale = AutoscaleConfig::bounded(1, 4)
        .interval(SimDuration::from_secs(10))
        .warmup(SimDuration::from_secs(15))
        .predictor(PredictorKind::holt())
        .initial_lengths(512.0, 64.0);
    let requests = datasets::sharegpt(150, 4);
    let arrivals = steady_arrivals(150, 40);
    let cluster = |sink| {
        ElasticCluster::new(base.clone(), autoscale, 1).run_traced(
            requests.clone(),
            arrivals.clone(),
            sink,
        )
    };
    let untraced = cluster(None).expect("untraced run");
    let mut sink = RecordingSink::new();
    let traced = cluster(Some(&mut sink)).expect("traced run");
    assert_eq!(format!("{untraced:?}"), format!("{traced:?}"));
    let scale_events = sink
        .events
        .iter()
        .filter(|ev| {
            matches!(
                ev,
                TraceEvent::ScaleUp { .. } | TraceEvent::ScaleDown { .. }
            )
        })
        .count();
    assert_eq!(scale_events, traced.events.len());
    let finished = sink
        .events
        .iter()
        .filter(|ev| matches!(ev, TraceEvent::Finished { .. }))
        .count();
    assert_eq!(finished, traced.completed());
}
