//! Property-based engine tests: conservation laws that must hold for any
//! workload, capacity and scheduler parameterization.

use proptest::prelude::*;

use pf_core::SchedulerConfig;
use pf_sim::{GpuSpec, ModelSpec, SimConfig, Simulation};
use pf_workload::{datasets, LengthSampler, RequestSpec};

fn workload(n: usize, seed: u64) -> Vec<RequestSpec> {
    let input = LengthSampler::uniform(4, 64);
    let output = LengthSampler::uniform(8, 256);
    datasets::from_samplers(n, seed, &input, &output, 320)
}

fn config(scheduler: SchedulerConfig, capacity: u64, seed: u64) -> SimConfig {
    SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(scheduler)
        .capacity_override(capacity)
        .record_series(false)
        .seed(seed)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under arbitrary eviction storms every request still completes with
    /// exactly its ground-truth output length, and token accounting
    /// balances.
    #[test]
    fn aggressive_conserves_requests_under_eviction_storms(
        seed in 0u64..500,
        capacity in 800u64..3_000,
        n in 8usize..48,
        watermark_pct in 85u32..100,
    ) {
        let requests = workload(n, seed);
        let expected_tokens: u64 =
            requests.iter().map(|r| u64::from(r.true_output_len)).sum();
        let report = Simulation::offline(
            config(
                SchedulerConfig::aggressive(watermark_pct as f64 / 100.0),
                capacity,
                seed,
            ),
            requests.clone(),
        )
        .run()
        .unwrap();
        prop_assert_eq!(report.completed, n);
        prop_assert_eq!(report.unfinished, 0);
        prop_assert_eq!(report.goodput.total_output_tokens, expected_tokens);
        let truth: std::collections::HashMap<u64, u32> = requests
            .iter()
            .map(|r| (r.id.raw(), r.true_output_len))
            .collect();
        for outcome in &report.outcomes {
            prop_assert_eq!(outcome.output_len, truth[&outcome.id]);
            prop_assert_eq!(outcome.timing.n_tokens(), u64::from(outcome.output_len));
        }
    }

    /// The oracle never evicts, for any workload and capacity that admits
    /// the largest single request.
    #[test]
    fn oracle_never_evicts_any_workload(
        seed in 0u64..500,
        capacity in 500u64..5_000,
        n in 4usize..40,
    ) {
        let requests = workload(n, seed);
        let report = Simulation::offline(
            config(SchedulerConfig::Oracle, capacity, seed),
            requests,
        )
        .run()
        .unwrap();
        prop_assert_eq!(report.evictions, 0);
        prop_assert_eq!(report.completed, n);
        prop_assert!(report.peak_consumed_frac <= 1.0 + 1e-12);
    }

    /// Past-Future completes any workload for any reserve setting, and a
    /// larger reserve never increases memory utilization.
    #[test]
    fn past_future_safe_for_any_reserve(
        seed in 0u64..200,
        reserve_pct in 0u32..40,
    ) {
        let requests = workload(32, seed);
        let warmup: Vec<u32> = workload(300, seed + 1)
            .iter()
            .map(|r| r.true_output_len)
            .collect();
        let run = |reserve: f64| {
            let mut c = config(
                SchedulerConfig::past_future_reserved(reserve),
                2_500,
                seed,
            );
            c.history_warmup = warmup.clone();
            Simulation::offline(c, requests.clone()).run().unwrap()
        };
        let report = run(reserve_pct as f64 / 100.0);
        prop_assert_eq!(report.completed, 32);
        // Makespan and decode steps are positive and sane.
        prop_assert!(report.decode_steps > 0);
        prop_assert!(report.makespan.as_secs_f64() > 0.0);
    }

    /// Closed-loop arrivals preserve every request across client counts.
    #[test]
    fn closed_loop_conserves_requests(
        seed in 0u64..200,
        clients in 1usize..24,
    ) {
        let requests = workload(24, seed);
        let report = Simulation::closed_loop(
            config(SchedulerConfig::past_future(), 4_000, seed),
            requests,
            pf_workload::ClosedLoopClients::new(clients),
        )
        .run()
        .unwrap();
        prop_assert_eq!(report.completed, 24);
        prop_assert_eq!(report.unfinished, 0);
    }

    /// Timing sanity for every completed request: first token after
    /// arrival, monotone stream, MTPOT below total latency.
    #[test]
    fn per_request_timing_invariants(
        seed in 0u64..200,
        capacity in 1_000u64..4_000,
    ) {
        let requests = workload(24, seed);
        let report = Simulation::offline(
            config(SchedulerConfig::aggressive(0.95), capacity, seed),
            requests,
        )
        .run()
        .unwrap();
        for outcome in &report.outcomes {
            let ttft = outcome.timing.ttft().expect("completed requests emitted tokens");
            prop_assert!(ttft.as_micros() > 0);
            prop_assert!(outcome.timing.mtpot() <= outcome.timing.total_latency());
            prop_assert!(outcome.timing.avg_tpot() <= outcome.timing.mtpot());
        }
    }
}
