//! Behavioral tests for the elastic cluster: scale-up under load, drain
//! correctness, policy bounds, warm-up delays and full-run determinism.

use pf_autoscale::{AutoscaleConfig, PredictorKind};
use pf_core::SchedulerConfig;
use pf_metrics::{SimDuration, SimTime};
use pf_sim::elastic::{ElasticCluster, ElasticReport};
use pf_sim::{GpuSpec, ModelSpec, SimConfig};
use pf_workload::{datasets, rng::seeded, RateProfile};

fn base_config(capacity: u64) -> SimConfig {
    SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(capacity)
        .record_series(false)
        .seed(3)
        .build()
}

fn autoscale(min: usize, max: usize) -> AutoscaleConfig {
    AutoscaleConfig::bounded(min, max)
        .interval(SimDuration::from_secs(10))
        .warmup(SimDuration::from_secs(15))
        .predictor(PredictorKind::holt())
        .initial_lengths(160.0, 220.0)
}

/// A run against a diurnal profile ramping well past one instance's
/// capacity.
fn diurnal_run(seed: u64) -> ElasticReport {
    let n = 900;
    let requests = datasets::short_chat(n, seed);
    let arrivals = RateProfile::diurnal(1.0, 12.0, SimDuration::from_secs(180))
        .assign(&mut seeded(seed + 1), n);
    ElasticCluster::new(base_config(6_000), autoscale(1, 4), 1)
        .run(requests, arrivals)
        .expect("elastic run")
}

#[test]
fn ramp_forces_scale_up_and_completes_everything() {
    let report = diurnal_run(10);
    assert_eq!(report.completed(), 900);
    assert_eq!(report.unrouted, 0);
    assert!(
        report.peak_replicas() > 1,
        "fleet never grew: events {:?}",
        report.events
    );
    assert!(!report.events.is_empty(), "planner never acted");
    let total_routed: usize = report.instances.iter().map(|i| i.routed).sum();
    assert_eq!(total_routed, 900);
}

#[test]
fn drained_instances_finish_their_work_and_receive_nothing_new() {
    // A heavy burst grows the fleet, then a long quiet tail forces the
    // planner to drain the surplus well before the run ends.
    let burst = 600usize;
    let tail = 120usize;
    let requests = datasets::short_chat(burst + tail, 11);
    let mut arrivals: Vec<SimTime> = (0..burst)
        .map(|i| SimTime::from_millis(100 * i as u64)) // 10 req/s for 60 s
        .collect();
    arrivals.extend(
        (0..tail).map(|i| SimTime::from_millis(60_000 + 2_000 * i as u64)), // 0.5 req/s
    );
    let report = ElasticCluster::new(base_config(6_000), autoscale(1, 4), 1)
        .run(requests, arrivals)
        .expect("elastic run");
    assert_eq!(report.completed(), burst + tail);
    let makespan_end = SimTime::ZERO + report.makespan;
    let mut saw_early_stop = false;
    for (idx, instance) in report.instances.iter().enumerate() {
        // Every instance, drained or not, completed all routed work.
        assert_eq!(
            instance.report.unfinished, 0,
            "instance {idx} stopped with work in flight"
        );
        assert_eq!(instance.routed, instance.report.completed);
        if instance.stopped_at < makespan_end {
            saw_early_stop = true;
            // Nothing was routed to it after it began draining: every
            // request it served arrived (and finished) before it stopped.
            for outcome in &instance.report.outcomes {
                assert!(
                    outcome.timing.last_token_at() <= instance.stopped_at,
                    "instance {idx} emitted tokens after stopping"
                );
            }
        }
    }
    assert!(
        saw_early_stop,
        "diurnal trough never drained an instance; events {:?}",
        report.events
    );
}

#[test]
fn fleet_respects_policy_bounds() {
    let report = diurnal_run(12);
    assert!(report.peak_replicas() <= 4);
    let min_live = report
        .live_series
        .points()
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::INFINITY, f64::min);
    assert!(min_live >= 1.0, "live replicas dropped to {min_live}");
}

#[test]
fn scaled_up_instances_serve_only_after_warmup() {
    let report = diurnal_run(13);
    for (idx, instance) in report.instances.iter().enumerate() {
        if instance.spawned_at == SimTime::ZERO {
            continue; // initial replica
        }
        let ready_at = instance.spawned_at + SimDuration::from_secs(15);
        for outcome in &instance.report.outcomes {
            assert!(
                outcome.timing.arrival() >= ready_at,
                "instance {idx} (spawned {}) served a request arriving {} before ready {}",
                instance.spawned_at,
                outcome.timing.arrival(),
                ready_at
            );
        }
    }
}

#[test]
fn gpu_seconds_are_below_peak_fleet_cost() {
    let report = diurnal_run(14);
    let peak_cost = report.peak_replicas() as f64 * report.makespan.as_secs_f64();
    assert!(report.gpu_seconds() > 0.0);
    assert!(
        report.gpu_seconds() < peak_cost,
        "elastic cost {} should undercut peak-static cost {}",
        report.gpu_seconds(),
        peak_cost
    );
}

#[test]
fn elastic_run_is_deterministic() {
    let a = diurnal_run(15);
    let b = diurnal_run(15);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.events, b.events);
    assert_eq!(a.gpu_seconds(), b.gpu_seconds());
    assert_eq!(
        a.instances.iter().map(|i| i.routed).collect::<Vec<_>>(),
        b.instances.iter().map(|i| i.routed).collect::<Vec<_>>()
    );
    assert_eq!(a.goodput.satisfied_requests, b.goodput.satisfied_requests);
    assert_eq!(a.evictions(), b.evictions());
}

#[test]
fn static_min_and_max_bracket_the_elastic_fleet() {
    // With scaling disabled (min == max), the elastic runner degenerates
    // to a static fleet; the adaptive fleet's provisioned cost must land
    // between the static extremes.
    let n = 600;
    let requests = datasets::short_chat(n, 16);
    let arrivals =
        RateProfile::diurnal(1.0, 10.0, SimDuration::from_secs(150)).assign(&mut seeded(17), n);
    let run = |min: usize, max: usize, start: usize| {
        ElasticCluster::new(base_config(6_000), autoscale(min, max), start)
            .run(requests.clone(), arrivals.clone())
            .expect("run")
    };
    let static_one = run(1, 1, 1);
    let static_four = run(4, 4, 4);
    let elastic = run(1, 4, 1);
    assert_eq!(static_one.peak_replicas(), 1);
    assert_eq!(static_four.peak_replicas(), 4);
    assert!(elastic.gpu_seconds() < static_four.gpu_seconds());
    assert!(
        elastic.sla_attainment() >= static_one.sla_attainment(),
        "elastic {} vs single-instance {}",
        elastic.sla_attainment(),
        static_one.sla_attainment()
    );
}

#[test]
#[should_panic(expected = "outside policy bounds")]
fn initial_replicas_outside_bounds_panics() {
    let _ = ElasticCluster::new(base_config(6_000), autoscale(1, 4), 6);
}

#[test]
fn declaring_the_reference_fleet_changes_nothing() {
    use pf_sim::GpuType;
    let n = 400;
    let requests = datasets::short_chat(n, 20);
    let arrivals =
        RateProfile::diurnal(1.0, 10.0, SimDuration::from_secs(150)).assign(&mut seeded(21), n);
    let implicit = ElasticCluster::new(base_config(6_000), autoscale(1, 4), 1)
        .run(requests.clone(), arrivals.clone())
        .expect("implicit run");
    let explicit = ElasticCluster::new(base_config(6_000), autoscale(1, 4), 1)
        .fleet(vec![GpuType::reference(); 4])
        .run(requests, arrivals)
        .expect("explicit run");
    // The homogeneous reference fleet is the identity, bit for bit.
    assert_eq!(implicit.makespan, explicit.makespan);
    assert_eq!(implicit.events, explicit.events);
    assert_eq!(implicit.gpu_seconds(), explicit.gpu_seconds());
    assert_eq!(
        implicit.gpu_seconds(),
        implicit.cost_weighted_gpu_seconds(),
        "weight-1.0 fleets bill plain GPU-seconds"
    );
}

#[test]
fn mixed_fleet_completes_and_bills_by_cost_weight() {
    use pf_sim::GpuType;
    let n = 500;
    let requests = datasets::short_chat(n, 22);
    let arrivals =
        RateProfile::diurnal(1.0, 8.0, SimDuration::from_secs(150)).assign(&mut seeded(23), n);
    let report = ElasticCluster::new(base_config(6_000), autoscale(1, 4), 2)
        .fleet(vec![
            GpuType::big(),
            GpuType::big(),
            GpuType::mid(),
            GpuType::mid(),
        ])
        .run(requests, arrivals)
        .expect("mixed run");
    assert_eq!(report.completed(), n);
    assert_eq!(report.unrouted, 0);
    // The ledger recomputes from per-instance lifetimes and weights.
    let recompute: f64 = report
        .instances
        .iter()
        .map(|i| i.active_secs() * i.gpu.cost_weight)
        .sum();
    assert!((report.cost_weighted_gpu_seconds() - recompute).abs() < 1e-9);
    // Any mid-tier instance in the fleet bills below plain seconds.
    if report.instances.iter().any(|i| i.gpu.cost_weight < 1.0) {
        assert!(report.cost_weighted_gpu_seconds() < report.gpu_seconds());
    }
    // Determinism with mixed types.
    let replay = ElasticCluster::new(base_config(6_000), autoscale(1, 4), 2)
        .fleet(vec![
            GpuType::big(),
            GpuType::big(),
            GpuType::mid(),
            GpuType::mid(),
        ])
        .run(datasets::short_chat(n, 22), {
            RateProfile::diurnal(1.0, 8.0, SimDuration::from_secs(150)).assign(&mut seeded(23), n)
        })
        .expect("replay");
    assert_eq!(replay.makespan, report.makespan);
    assert_eq!(replay.events, report.events);
    assert_eq!(
        replay.cost_weighted_gpu_seconds(),
        report.cost_weighted_gpu_seconds()
    );
}

#[test]
fn elastic_timed_out_requests_are_reported() {
    // A burst far beyond the bounded fleet's capacity with tight
    // deadlines: the elastic report surfaces the engine-level timeouts.
    let n = 500;
    let requests: Vec<pf_workload::RequestSpec> = datasets::short_chat(n, 24)
        .into_iter()
        .map(|r| r.with_deadline(SimDuration::from_secs(8)))
        .collect();
    let arrivals: Vec<SimTime> = (0..n)
        .map(|i| SimTime::from_millis(20 * i as u64)) // 50 req/s
        .collect();
    let report = ElasticCluster::new(base_config(3_000), autoscale(1, 2), 1)
        .run(requests, arrivals)
        .expect("elastic run");
    assert!(
        report.timed_out() > 0,
        "a 50 req/s burst into a 2-replica fleet must shed load"
    );
    assert_eq!(report.completed() + report.timed_out(), n);
}

#[test]
fn least_slack_first_reduces_elastic_timeouts_on_mixed_deadlines() {
    // Mixed-deadline traffic bursting past the bounded fleet: the member
    // engines inherit the base config's queue order, so slack-aware
    // admission works unchanged inside the elastic cluster.
    let n = 400;
    let requests = datasets::mixed_deadline(n, 27);
    let arrivals: Vec<SimTime> = (0..n)
        .map(|i| SimTime::from_millis(30 * i as u64))
        .collect();
    let run = |order: pf_sim::QueueOrder| {
        let mut base = base_config(6_000);
        base.queue_order = order;
        ElasticCluster::new(base, autoscale(1, 2), 1)
            .run(requests.clone(), arrivals.clone())
            .expect("elastic run")
    };
    let fifo = run(pf_sim::QueueOrder::Fifo);
    let lsf = run(pf_sim::QueueOrder::least_slack());
    assert!(
        fifo.timed_out() > 0,
        "the scenario must pressure deadlines under FIFO"
    );
    assert!(
        lsf.timed_out() < fifo.timed_out(),
        "least-slack-first timed out {} vs FIFO {}",
        lsf.timed_out(),
        fifo.timed_out()
    );
    assert_eq!(lsf.completed() + lsf.timed_out() + lsf.unrouted, n);
    // Timed-out requests weigh the cluster-level goodput denominator.
    assert_eq!(
        lsf.goodput.total_requests,
        lsf.completed() + lsf.timed_out()
    );
}
