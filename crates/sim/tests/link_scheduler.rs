//! Property tests for the shared-link fluid scheduler: chunk ordering,
//! byte conservation, capacity respect, per-stream overhead, and
//! deterministic replay.

use proptest::prelude::*;

use pf_sim::link::{LinkScheduler, StreamDone, StreamSpec};

/// Drives the scheduler the way the disagg run does: wake at the next
/// projected completion, drain, repeat until the link is idle.
fn drive(link: &mut LinkScheduler) -> Vec<StreamDone> {
    let mut out = Vec::new();
    let mut buf = Vec::new();
    while let Some(at_us) = link.next_event_us() {
        link.advance(at_us, &mut buf);
        out.append(&mut buf);
    }
    out
}

fn spec(bytes: u64, start: u64, span: u64, chunks: u32, weight: f64) -> StreamSpec {
    StreamSpec {
        bytes,
        produce_start_us: start,
        produce_end_us: start + span,
        chunks,
        weight,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary stream mixes: every chunk lands in order and never
    /// before production makes it eligible, every stream delivers exactly
    /// its bytes, the link never moves more bytes than capacity times
    /// busy time, and the whole trajectory replays bit-identically.
    #[test]
    fn fluid_link_conserves_bytes_orders_chunks_and_respects_capacity(
        gbps in 1.0f64..100.0,
        overhead_us in 0u64..500,
        streams in proptest::collection::vec(
            (1_000u64..5_000_000, 0u64..200_000, 0u64..300_000, 1u32..48, 1.0f64..2.0),
            1..10,
        ),
    ) {
        let run = |record: bool| {
            let mut link = LinkScheduler::new(gbps, overhead_us).record_chunks(record);
            let mut ids = Vec::new();
            for &(bytes, start, span, chunks, weight) in &streams {
                ids.push(link.start_stream(start, spec(bytes, start, span, chunks, weight)));
            }
            let done = drive(&mut link);
            (link, ids, done)
        };
        let (link, ids, done) = run(true);

        prop_assert_eq!(done.len(), streams.len());
        prop_assert_eq!(link.inflight(), 0);
        let capacity_bytes_per_us = gbps * 1e3;
        let mut total_bytes = 0u64;
        for (&id, &(bytes, start, span, chunks, _)) in ids.iter().zip(&streams) {
            total_bytes += bytes;
            // Delivered bytes are conserved exactly (within fluid slack).
            prop_assert!((link.delivered_bytes(id) - bytes as f64).abs() < 1e-3);
            let landings = link.chunk_landings(id);
            prop_assert_eq!(landings.len(), chunks as usize);
            let mut prev = 0u64;
            for (k, &at) in landings.iter().enumerate() {
                // Chunk k never lands before chunk k-1 ...
                prop_assert!(at >= prev, "chunk {} landed at {} before {}", k, at, prev);
                prev = at;
                // ... and never before production makes it eligible.
                let eligible = start + (span * (k as u64 + 1)).div_ceil(u64::from(chunks));
                prop_assert!(
                    at >= eligible,
                    "chunk {} landed at {} before eligibility {}",
                    k, at, eligible,
                );
            }
            let this = done.iter().find(|d| d.id == id).expect("every stream completes");
            // The overhead is charged once per stream, after the last byte.
            prop_assert_eq!(this.done_us, this.transmit_end_us + overhead_us);
            prop_assert!(this.transmit_end_us >= start + span);
            prop_assert!(this.transmit_end_us + 1 >= *landings.last().expect("chunks >= 1"));
        }
        // Aggregate rate never exceeds the link: total bytes fit in the
        // busy-time integral at full capacity (1 µs of ceil slack per
        // breakpoint is absorbed by the fluid epsilon).
        prop_assert!(
            total_bytes as f64 <= capacity_bytes_per_us * (link.busy_secs() * 1e6) + 1.0,
            "moved {} bytes in {} busy-us at {} bytes/us",
            total_bytes, link.busy_secs() * 1e6, capacity_bytes_per_us,
        );

        // Deterministic replay: identical completions and landings.
        let (link2, ids2, done2) = run(true);
        prop_assert_eq!(done, done2);
        for (&a, &b) in ids.iter().zip(&ids2) {
            prop_assert_eq!(link.chunk_landings(a), link2.chunk_landings(b));
        }
    }
}

/// Charging the overhead per stream (not per chunk) means a stream's
/// completion time is independent of how finely it is chunked when
/// production is instantaneous.
#[test]
fn overhead_is_charged_once_per_stream_regardless_of_chunking() {
    let mut done_times = Vec::new();
    for chunks in [1u32, 8, 32, 128] {
        let mut link = LinkScheduler::new(25.0, 200);
        link.start_stream(0, spec(1_000_000, 0, 0, chunks, 1.0));
        let done = drive(&mut link);
        assert_eq!(done.len(), 1);
        done_times.push(done[0].done_us);
    }
    // 1 MB at 25 GB/s = 40 µs of wire time, plus one 200 µs overhead.
    assert!(done_times.iter().all(|&t| t == 40 + 200), "{done_times:?}");
}

/// Weighted max-min fair share: a weight-2 stream drains twice as fast as
/// a weight-1 rival while both are backlogged, and the freed share
/// redistributes after it completes.
#[test]
fn fair_share_splits_bandwidth_by_weight() {
    let mut link = LinkScheduler::new(1.0, 0); // 1 GB/s = 1e3 bytes/µs
    let heavy = link.start_stream(0, spec(1_000_000, 0, 0, 1, 2.0));
    let light = link.start_stream(0, spec(1_000_000, 0, 0, 1, 1.0));
    let done = drive(&mut link);
    let end = |id: usize| done.iter().find(|d| d.id == id).unwrap().transmit_end_us;
    // Heavy drains at rate 2C/3: 1e6 / (2e3/3) = 1500 µs. Light then has
    // 0.5e6 bytes left and the full link: 1500 + 500 = 2000 µs.
    assert_eq!(end(heavy), 1500);
    assert_eq!(end(light), 2000);
    assert!((link.busy_secs() - 2000e-6).abs() < 1e-9);
    assert!((link.utilization() - 1.0).abs() < 1e-9);
}

/// A stream throttled by production (link faster than the prefill pass)
/// lands each chunk at its eligibility boundary and finishes exactly at
/// the pass end plus its overhead.
#[test]
fn production_throttled_stream_finishes_with_the_pass() {
    let mut link = LinkScheduler::new(100.0, 50).record_chunks(true);
    // 10 kB over a 10 ms pass in 10 chunks: each 1 kB chunk needs 0.01 µs
    // of wire time but arrives every 1000 µs — pure eligibility limit.
    let id = link.start_stream(0, spec(10_000, 0, 10_000, 10, 1.0));
    let done = drive(&mut link);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].transmit_end_us, 10_001); // last chunk + 1 µs ceil
    assert_eq!(done[0].done_us, 10_051);
    for (k, &at) in link.chunk_landings(id).iter().enumerate() {
        let eligible = 1000 * (k as u64 + 1);
        assert!(at >= eligible && at <= eligible + 1, "chunk {k} at {at}");
    }
}
