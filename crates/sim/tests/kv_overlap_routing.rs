//! Behavioral tests for block-granular KV routing
//! ([`RouterPolicy::KvOverlap`]) and the named router configuration:
//!
//! * `KvOverlap { overlap_weight: 0, temperature: 0 }` on deadline-free
//!   traffic is bit-identical to `LeastEstimatedLoad` — the overlap term
//!   vanishes and the zero-temperature pick consumes no randomness;
//! * an explicitly spelled-out default [`RouterConfig`] replays
//!   bit-identically against an untouched config (the promoted constants
//!   kept their values);
//! * overlap-scored routing reuses a tenant's shared system prompt
//!   across sessions — the cross-session sharing whole-prefix affinity
//!   cannot express — and beats both load-blind routing and whole-prefix
//!   affinity on that traffic;
//! * softmax routing (temperature > 0) replays bit-identically across
//!   the colocated cluster, the elastic fleet and the disagg pools;
//! * index staleness (the event-propagation delay) degrades reuse
//!   monotonically toward load-blind routing;
//! * block stores surface `kv-stored` lifecycle events to a trace sink.

use pf_autoscale::AutoscaleConfig;
use pf_core::SchedulerConfig;
use pf_metrics::SimDuration;
use pf_obs::{RecordingSink, TraceEvent};
use pf_sim::cluster::{ClusterSimulation, RouterPolicy};
use pf_sim::disagg::{DisaggCluster, DisaggConfig};
use pf_sim::elastic::ElasticCluster;
use pf_sim::{GpuSpec, ModelSpec, RouterConfig, SimConfig};
use pf_workload::datasets;

const BLOCK_TOKENS: u32 = 64;

fn base_config(capacity: u64) -> SimConfig {
    SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(capacity)
        .record_series(false)
        .seed(7)
        .build()
}

/// Block-granular prefix store: the configuration KvOverlap routing is
/// built for.
fn block_config(capacity: u64) -> SimConfig {
    let mut config = base_config(capacity);
    config.prefix_cache =
        Some(pf_sim::PrefixCacheConfig::with_budget_frac(0.4).blocks(BLOCK_TOKENS));
    config
}

/// Whole-prefix store at the same budget, for affinity comparisons.
fn whole_config(capacity: u64) -> SimConfig {
    let mut config = base_config(capacity);
    config.prefix_cache = Some(pf_sim::PrefixCacheConfig::with_budget_frac(0.4));
    config
}

fn shared_sysprompt_traffic(
    n: usize,
    seed: u64,
) -> (Vec<pf_workload::RequestSpec>, Vec<pf_metrics::SimTime>) {
    let spec = datasets::SharedSyspromptSpec::default();
    datasets::shared_sysprompt_chat_timed(n, seed, &spec, 2.0, 2.0, 3.0)
}

#[test]
fn zero_weight_zero_temperature_degrades_to_least_estimated_load() {
    // With no overlap term and an argmin pick, KvOverlap must reproduce
    // LeastEstimatedLoad decision-for-decision: same cost key, zero
    // random draws, same rotating tie-break cursor.
    let spec = datasets::MultiTurnSpec::default();
    let (requests, arrivals) = datasets::multi_turn_chat_timed(200, 31, &spec, 3.0, 2.0, 3.0);
    let run = |policy| {
        ClusterSimulation::new(block_config(30_000), 3, policy)
            .run(requests.clone(), arrivals.clone())
            .expect("cluster run")
    };
    let degraded = run(RouterPolicy::KvOverlap {
        overlap_weight: 0.0,
        temperature: 0.0,
    });
    let blind = run(RouterPolicy::LeastEstimatedLoad);
    assert_eq!(degraded.routed_per_instance, blind.routed_per_instance);
    assert_eq!(degraded.makespan(), blind.makespan());
    assert_eq!(degraded.satisfied(), blind.satisfied());
    assert_eq!(degraded.prefix_stats(), blind.prefix_stats());
}

#[test]
fn explicit_default_router_config_replays_bit_identically() {
    // The promoted constants kept their historical values…
    let defaults = RouterConfig::default();
    assert_eq!(defaults.prefix_match_min_tokens, 32);
    assert!((defaults.slack_pressure_weight - 0.05).abs() < f64::EPSILON);
    assert_eq!(defaults.kv_event_delay, SimDuration::ZERO);

    // …and spelling them out produces the exact run an untouched config
    // produces.
    let spec = datasets::MultiTurnSpec::default();
    let (requests, arrivals) = datasets::multi_turn_chat_timed(160, 29, &spec, 2.0, 2.0, 3.0);
    let affinity = RouterPolicy::PrefixAffinity {
        load_tiebreak: true,
    };
    let run = |config: SimConfig| {
        ClusterSimulation::new(config, 3, affinity)
            .run(requests.clone(), arrivals.clone())
            .expect("cluster run")
    };
    let implicit = run(whole_config(30_000));
    let mut explicit_cfg = whole_config(30_000);
    explicit_cfg.router = RouterConfig {
        prefix_match_min_tokens: 32,
        slack_pressure_weight: 0.05,
        ..RouterConfig::default()
    };
    let explicit = run(explicit_cfg);
    assert_eq!(implicit.routed_per_instance, explicit.routed_per_instance);
    assert_eq!(implicit.makespan(), explicit.makespan());
    assert_eq!(implicit.prefix_stats(), explicit.prefix_stats());
}

#[test]
fn overlap_routing_reuses_shared_system_prompts_across_sessions() {
    let (requests, arrivals) = shared_sysprompt_traffic(240, 37);
    let n = requests.len();
    let run = |policy| {
        ClusterSimulation::new(block_config(40_000), 3, policy)
            .run(requests.clone(), arrivals.clone())
            .expect("cluster run")
    };
    let overlap = run(RouterPolicy::KvOverlap {
        overlap_weight: 1.0,
        temperature: 0.0,
    });
    let blind = run(RouterPolicy::LeastEstimatedLoad);
    assert_eq!(overlap.completed(), n);
    let o = overlap.prefix_stats();
    let b = blind.prefix_stats();
    assert!(o.hits > 0, "overlap routing must produce block hits");
    assert!(
        o.hit_tokens > b.hit_tokens,
        "overlap routing must reuse more prefill than load-blind routing ({} vs {})",
        o.hit_tokens,
        b.hit_tokens
    );
}

#[test]
fn block_overlap_beats_whole_prefix_affinity_on_shared_sysprompts() {
    // Whole-prefix affinity sees nothing reusable on a session's first
    // turn — the tenant's 512-token system prompt is another session's
    // prefix. Block-granular overlap routing reuses it, so at the same
    // cache budget it must save strictly more prefill work.
    let (requests, arrivals) = shared_sysprompt_traffic(240, 41);
    let overlap = ClusterSimulation::new(
        block_config(40_000),
        3,
        RouterPolicy::KvOverlap {
            overlap_weight: 1.0,
            temperature: 0.0,
        },
    )
    .run(requests.clone(), arrivals.clone())
    .expect("block-overlap run");
    let affinity = ClusterSimulation::new(
        whole_config(40_000),
        3,
        RouterPolicy::PrefixAffinity {
            load_tiebreak: true,
        },
    )
    .run(requests, arrivals)
    .expect("whole-affinity run");
    assert!(
        overlap.prefix_stats().hit_tokens > affinity.prefix_stats().hit_tokens,
        "block overlap must out-reuse whole-prefix affinity ({} vs {})",
        overlap.prefix_stats().hit_tokens,
        affinity.prefix_stats().hit_tokens
    );
}

#[test]
fn softmax_routing_replays_bit_identically() {
    // Nonzero temperature draws from the router's own deterministic
    // stream; with a propagation delay in play the whole pipeline —
    // event publication, delayed visibility, softmax sampling — must
    // still replay exactly.
    let (requests, arrivals) = shared_sysprompt_traffic(200, 43);
    let overlap = RouterPolicy::KvOverlap {
        overlap_weight: 0.8,
        temperature: 0.35,
    };
    let config = || {
        let mut c = block_config(30_000);
        c.router.kv_event_delay = SimDuration::from_millis(250);
        c
    };

    let run_cluster = || {
        ClusterSimulation::new(config(), 3, overlap)
            .run(requests.clone(), arrivals.clone())
            .expect("cluster run")
    };
    let a = run_cluster();
    let b = run_cluster();
    assert!(a.prefix_stats().hits > 0);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));

    let run_elastic = || {
        let autoscale = AutoscaleConfig::bounded(3, 3)
            .interval(SimDuration::from_secs(1_000))
            .warmup(SimDuration::from_secs(5));
        ElasticCluster::new(config(), autoscale, 3)
            .router(overlap)
            .run(requests.clone(), arrivals.clone())
            .expect("elastic run")
    };
    let a = run_elastic();
    let b = run_elastic();
    assert_eq!(format!("{a:?}"), format!("{b:?}"));

    let run_disagg = || {
        DisaggCluster::new(DisaggConfig::new(config()).router(overlap), 2, 2)
            .run(requests.clone(), arrivals.clone())
            .expect("disagg run")
    };
    let a = run_disagg();
    let b = run_disagg();
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn index_staleness_degrades_reuse() {
    // A delay far longer than the run leaves the global index empty:
    // every overlap score reads zero and routing collapses to the load
    // term, losing the affinity that concentrates a tenant's blocks.
    let (requests, arrivals) = shared_sysprompt_traffic(240, 47);
    let run = |delay| {
        let mut config = block_config(40_000);
        config.router.kv_event_delay = delay;
        ClusterSimulation::new(
            config,
            3,
            RouterPolicy::KvOverlap {
                overlap_weight: 1.0,
                temperature: 0.0,
            },
        )
        .run(requests.clone(), arrivals.clone())
        .expect("cluster run")
    };
    let fresh = run(SimDuration::ZERO);
    let stale = run(SimDuration::from_secs(100_000));
    assert!(
        fresh.prefix_stats().hit_tokens > stale.prefix_stats().hit_tokens,
        "a fresh index must out-reuse a never-propagated one ({} vs {})",
        fresh.prefix_stats().hit_tokens,
        stale.prefix_stats().hit_tokens
    );
}

#[test]
fn block_store_emits_kv_lifecycle_trace_events() {
    let (requests, arrivals) = shared_sysprompt_traffic(120, 53);
    let autoscale = AutoscaleConfig::bounded(2, 2)
        .interval(SimDuration::from_secs(1_000))
        .warmup(SimDuration::from_secs(5));
    let mut sink = RecordingSink::new();
    let report = ElasticCluster::new(block_config(20_000), autoscale, 2)
        .router(RouterPolicy::KvOverlap {
            overlap_weight: 1.0,
            temperature: 0.0,
        })
        .run_traced(requests, arrivals, Some(&mut sink))
        .expect("traced elastic run");
    assert!(report.completed() > 0);
    let stored = sink
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::KvStored { .. }))
        .count();
    assert!(stored > 0, "block stores must surface kv-stored events");
}
