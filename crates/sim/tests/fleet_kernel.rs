//! Property and behavior tests for the shared fleet-lifecycle kernel
//! (`pf_sim::fleet`): shrink-pass invariants over arbitrary pools, and
//! cost-ledger conservation across spawn/drain/repurpose on a real
//! elastic disaggregated run.

use pf_autoscale::{AutoscaleConfig, PolicyConfig, PredictorKind};
use pf_core::SchedulerConfig;
use pf_metrics::{SimDuration, SimTime};
use pf_sim::disagg::{DisaggConfig, DisaggReport, ElasticDisaggCluster, RepurposeDirection};
use pf_sim::fleet::{
    pool_counts, provisioned_count, shrink_pool, FleetMember, GpuType, MemberCore, MemberState,
};
use pf_sim::{GpuSpec, ModelSpec, SimConfig};
use pf_workload::{datasets, LengthSampler, RequestSpec};
use proptest::prelude::*;

/// Minimal member: just the lifecycle core plus a load signal.
struct Toy {
    core: MemberCore,
    load: u64,
}

impl FleetMember for Toy {
    fn core(&self) -> &MemberCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut MemberCore {
        &mut self.core
    }

    fn load_signal(&self) -> u64 {
        self.load
    }
}

fn toy(state_kind: u8, load: u64, cost_kind: u8) -> Toy {
    let gpu = match cost_kind % 3 {
        0 => GpuType::big(),
        1 => GpuType::mid(),
        _ => GpuType::small(),
    };
    let mut core = MemberCore::spawn(SimTime::ZERO, SimDuration::ZERO, gpu);
    core.state = match state_kind % 4 {
        0 => MemberState::Live,
        1 => MemberState::Warming {
            ready_at: SimTime::from_secs(u64::from(state_kind)),
        },
        2 => MemberState::Draining,
        _ => MemberState::Stopped,
    };
    if core.state == MemberState::Stopped {
        core.stopped_at = Some(SimTime::ZERO);
    }
    Toy { core, load }
}

fn pool_strategy() -> impl Strategy<Value = Vec<Toy>> {
    proptest::collection::vec(
        (0u8..4, 0u64..1_000, 0u8..3).prop_map(|(s, load, c)| toy(s, load, c)),
        0..12,
    )
}

/// The drain pass picks victims in one fixed total order: highest GPU
/// cost, then lowest load, then lowest index.
fn drain_order(members: &[Toy]) -> Vec<usize> {
    let mut live: Vec<usize> = members
        .iter()
        .enumerate()
        .filter(|(_, m)| m.core.state == MemberState::Live)
        .map(|(i, _)| i)
        .collect();
    live.sort_by(|&a, &b| {
        members[b]
            .core
            .gpu
            .cost_weight
            .total_cmp(&members[a].core.gpu.cost_weight)
            .then_with(|| members[a].load.cmp(&members[b].load))
            .then_with(|| a.cmp(&b))
    });
    live
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The shrink pass never empties a pool that had a live member,
    /// cancels warming capacity before draining live capacity, lands on
    /// exactly the target (clamped to what exists and to the one-live
    /// floor), and picks drain victims costliest-first.
    #[test]
    fn shrink_pool_invariants(
        pool in pool_strategy(),
        target in 0usize..12,
    ) {
        let (live_before, warming_before) = {
            let (l, w) = pool_counts(&pool);
            (l, w)
        };
        let before = live_before + warming_before;
        let expected_order = drain_order(&pool);
        let mut pool = pool;
        let drained = shrink_pool(&mut pool, target, SimTime::from_secs(5));
        let (live_after, warming_after) = pool_counts(&pool);

        // Never below one live member.
        if live_before >= 1 {
            prop_assert!(live_after >= 1, "pool lost its last live member");
        }
        // Warming members are cancelled before any live member drains.
        if !drained.is_empty() {
            prop_assert_eq!(
                warming_after, 0,
                "drained a live member while warming capacity remained"
            );
        }
        // The pool lands exactly on the clamped target.
        let floor = live_before.min(1);
        let expected = target.min(before).max(floor);
        let draining = pool
            .iter()
            .filter(|m| m.core.state == MemberState::Draining)
            .count();
        // Draining members still count provisioned until they stop, but
        // live + warming is what the planner steers.
        prop_assert_eq!(
            live_after + warming_after,
            expected,
            "live {} warming {} after shrink to {} from {} live / {} warming (draining {})",
            live_after,
            warming_after,
            target,
            live_before,
            warming_before,
            draining
        );
        // Every drained member was live and is draining now.
        for &i in &drained {
            prop_assert_eq!(pool[i].core.state, MemberState::Draining);
        }
        // Victims follow the fixed cost-desc / load-asc / index-asc order.
        prop_assert_eq!(
            &drained[..],
            &expected_order[..drained.len()],
            "drain victims left the costliest-first order"
        );
        // Cancelled warming members are stamped with the shrink time.
        for m in &pool {
            if m.core.state == MemberState::Stopped {
                prop_assert!(m.core.stopped_at.is_some());
            }
        }
    }

    /// Shrinking is deterministic: the same pool shrinks the same way.
    #[test]
    fn shrink_pool_is_deterministic(
        seed_pool in proptest::collection::vec((0u8..4, 0u64..1_000, 0u8..3), 0..12),
        target in 0usize..12,
    ) {
        let build = || -> Vec<Toy> {
            seed_pool.iter().map(|&(s, l, c)| toy(s, l, c)).collect()
        };
        let mut a = build();
        let mut b = build();
        let da = shrink_pool(&mut a, target, SimTime::ZERO);
        let db = shrink_pool(&mut b, target, SimTime::ZERO);
        prop_assert_eq!(da, db);
        for (ma, mb) in a.iter().zip(&b) {
            prop_assert_eq!(ma.core.state, mb.core.state);
        }
        prop_assert_eq!(provisioned_count(&a), provisioned_count(&b));
    }
}

/// The phase-shift workload from `bench --bin hetero_fleet`, shrunk: pure
/// prefill load, then an abrupt switch to pure decode load.
fn phase_shift(seed: u64) -> (Vec<RequestSpec>, Vec<SimTime>) {
    let n_prefill = 560;
    let n_decode = 360;
    let pre_in = LengthSampler::uniform(1024, 3072);
    let pre_out = LengthSampler::uniform(4, 16);
    let mut requests = datasets::from_samplers(n_prefill, seed, &pre_in, &pre_out, 32);
    let long_in = LengthSampler::uniform(48, 160);
    let long_out = LengthSampler::uniform(192, 512);
    let tail = datasets::from_samplers(n_decode, seed + 1, &long_in, &long_out, 640);
    requests.extend(tail.into_iter().enumerate().map(|(i, mut r)| {
        r.id = ((n_prefill + i) as u64).into();
        r
    }));
    let mut arrivals: Vec<SimTime> = (0..n_prefill)
        .map(|i| SimTime::from_micros(71_429 * i as u64)) // 14 req/s
        .collect();
    let start = 71_429 * n_prefill as u64;
    arrivals.extend((1..=n_decode as u64).map(|i| SimTime::from_micros(start + 100_000 * i)));
    (requests, arrivals)
}

fn repurposing_run(seed: u64) -> DisaggReport {
    let (requests, arrivals) = phase_shift(seed);
    let pool = |max: usize, patience: u32| {
        let mut policy = PolicyConfig::bounded(1, max);
        policy.scale_down_patience = patience;
        AutoscaleConfig::bounded(1, max)
            .interval(SimDuration::from_secs(10))
            .warmup(SimDuration::from_secs(20))
            .predictor(PredictorKind::holt())
            .initial_lengths(512.0, 64.0)
            .policy(policy)
    };
    let base = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(9_000)
        .record_series(false)
        .seed(seed)
        .build();
    let config = DisaggConfig::new(base).repurpose(SimDuration::from_secs(2));
    ElasticDisaggCluster::new(config, pool(4, 1), pool(4, 3), 2, 1)
        .run(requests, arrivals)
        .expect("repurposing run")
}

#[test]
fn repurpose_flip_is_atomic_in_the_cost_ledger() {
    for seed in [72, 172] {
        let report = repurposing_run(seed);
        assert!(
            !report.repurposes.is_empty(),
            "seed {seed}: the phase shift never triggered a flip"
        );
        for event in &report.repurposes {
            let prefill = &report.prefill.instances[event.prefill_member];
            let decode = &report.decode.instances[event.decode_member];
            // Conservation: the old-pool life ends exactly where the
            // new-pool life begins — the GPU is charged once, with no gap
            // and no overlap, so cost-weighted seconds are conserved
            // across the flip (in either direction).
            let (old, new) = match event.direction {
                RepurposeDirection::PrefillToDecode => (prefill, decode),
                RepurposeDirection::DecodeToPrefill => (decode, prefill),
            };
            assert_eq!(old.stopped_at, event.at, "seed {seed}: flip gap");
            assert_eq!(new.spawned_at, event.at, "seed {seed}: flip overlap");
            // The GPU itself (and its price) travels with the flip.
            assert_eq!(prefill.gpu, decode.gpu, "seed {seed}: GPU type changed");
            // Never both roles at once: the old role is over before the
            // new role starts, and the instance had fully drained (it
            // routed work only while live in exactly one pool).
            assert!(old.spawned_at < event.at);
            assert!(new.stopped_at >= event.at);
        }
        // The ledger sums exactly what the instance lifetimes say.
        let recompute: f64 = report
            .prefill
            .instances
            .iter()
            .chain(&report.decode.instances)
            .map(|i| i.stopped_at.saturating_since(i.spawned_at).as_secs_f64() * i.gpu.cost_weight)
            .sum();
        let reported = report.cost_weighted_gpu_seconds();
        assert!(
            (recompute - reported).abs() < 1e-6,
            "seed {seed}: ledger {reported} vs instance sum {recompute}"
        );
    }
}

#[test]
fn pools_never_drop_below_one_live_member() {
    let report = repurposing_run(72);
    for series in ["prefill-live", "decode-live"] {
        let min = report
            .pool_series
            .get(series)
            .expect("series recorded")
            .points()
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min);
        assert!(min >= 1.0, "{series} dropped to {min}");
    }
}

#[test]
fn repurposing_run_is_deterministic() {
    let a = repurposing_run(72);
    let b = repurposing_run(72);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.repurposes, b.repurposes);
    assert_eq!(a.cost_weighted_gpu_seconds(), b.cost_weighted_gpu_seconds());
    assert_eq!(a.prefill.events, b.prefill.events);
    assert_eq!(a.decode.events, b.decode.events);
}
