//! Engine-level behaviour tests: scheduler dynamics, eviction semantics,
//! SLA accounting and run-mode coverage.

use pf_core::SchedulerConfig;
use pf_metrics::{SimDuration, SlaSpec};
use pf_sim::{
    BatchingMode, GpuSpec, KvLayout, ModelSpec, PrefillMode, SimConfig, SimError, Simulation,
};
use pf_workload::{datasets, ClosedLoopClients, RequestSpec};

fn small_config(scheduler: SchedulerConfig, capacity: u64) -> SimConfig {
    SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(scheduler)
        .capacity_override(capacity)
        .seed(42)
        .build()
}

/// A decode-heavy workload that stresses output-memory estimation: tiny
/// prompts, outputs far below the generation cap but variable.
fn decode_heavy(n: usize, seed: u64) -> Vec<RequestSpec> {
    let input = pf_workload::LengthSampler::uniform(8, 32);
    let output = pf_workload::LengthSampler::uniform(64, 256);
    datasets::from_samplers(n, seed, &input, &output, 512)
}

#[test]
fn oracle_completes_everything_without_evictions() {
    let report = Simulation::offline(
        small_config(SchedulerConfig::Oracle, 2_000),
        decode_heavy(64, 1),
    )
    .run()
    .unwrap();
    assert_eq!(report.completed, 64);
    assert_eq!(report.unfinished, 0);
    assert_eq!(report.evictions, 0, "the oracle must never evict");
    // Every request produced exactly its true output length.
    assert!(report.outcomes.iter().all(|o| o.evictions == 0));
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        Simulation::offline(
            small_config(SchedulerConfig::past_future(), 3_000),
            decode_heavy(48, 2),
        )
        .run()
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.decode_steps, b.decode_steps);
    assert_eq!(a.evictions, b.evictions);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.goodput.goodput_tok_per_s, b.goodput.goodput_tok_per_s);
}

#[test]
fn aggressive_evicts_under_decode_heavy_load_where_past_future_does_not() {
    // Capacity fits ~45 finished requests; the aggressive scheduler admits
    // by prompt size only (~20 tokens each) and must discover the shortage
    // mid-decode. (At paper scale — tens of concurrent requests — the
    // sampling noise of individual predictions averages out.)
    let requests = decode_heavy(256, 3);
    let aggressive = Simulation::offline(
        small_config(SchedulerConfig::aggressive(0.99), 8_000),
        requests.clone(),
    )
    .run()
    .unwrap();
    let mut warm = small_config(SchedulerConfig::past_future_reserved(0.05), 8_000);
    warm.history_warmup = decode_heavy(500, 99)
        .iter()
        .map(|r| r.true_output_len)
        .collect();
    let past_future = Simulation::offline(warm, requests).run().unwrap();
    assert!(
        aggressive.evictions > 50,
        "aggressive should evict heavily, got {}",
        aggressive.evictions
    );
    assert!(
        past_future.evictions * 10 < aggressive.evictions.max(1),
        "past-future ({}) must evict at least 10x less than aggressive ({})",
        past_future.evictions,
        aggressive.evictions
    );
    assert_eq!(past_future.completed, 256);
    assert_eq!(aggressive.completed, 256);
}

#[test]
fn evictions_inflate_decode_work_and_mtpot() {
    let requests = decode_heavy(48, 4);
    let report = Simulation::offline(
        small_config(SchedulerConfig::aggressive(0.99), 1_200),
        requests,
    )
    .run()
    .unwrap();
    assert!(report.evictions > 0);
    // Evicted requests stall; with a permissive SLA nothing violates, with
    // a 0-tolerance MTPOT the evicted ones do.
    let strict_sla_violations = report
        .outcomes
        .iter()
        .filter(|o| o.evictions > 0 && o.timing.mtpot() > SimDuration::from_millis(500))
        .count();
    assert!(
        strict_sla_violations > 0,
        "evicted requests should show output stalls"
    );
}

#[test]
fn conservative_queues_longer_than_oracle() {
    let requests = decode_heavy(48, 5);
    let conservative = Simulation::offline(
        small_config(SchedulerConfig::conservative(), 2_000),
        requests.clone(),
    )
    .run()
    .unwrap();
    let oracle = Simulation::offline(small_config(SchedulerConfig::Oracle, 2_000), requests)
        .run()
        .unwrap();
    assert_eq!(conservative.evictions, 0, "no overcommit → no evictions");
    assert!(
        conservative.decode_steps > oracle.decode_steps,
        "worst-case budgeting must shrink batches: {} vs {}",
        conservative.decode_steps,
        oracle.decode_steps
    );
    assert!(conservative.avg_consumed_frac < oracle.avg_consumed_frac);
    assert!(conservative.makespan > oracle.makespan);
}

#[test]
fn past_future_outperforms_conservative_on_memory_utilization() {
    let requests = decode_heavy(64, 6);
    let warmup: Vec<u32> = decode_heavy(500, 77)
        .iter()
        .map(|r| r.true_output_len)
        .collect();
    let mut pf_config = small_config(SchedulerConfig::past_future_reserved(0.05), 2_000);
    pf_config.history_warmup = warmup;
    let pf = Simulation::offline(pf_config, requests.clone())
        .run()
        .unwrap();
    let conservative = Simulation::offline(
        small_config(SchedulerConfig::conservative(), 2_000),
        requests,
    )
    .run()
    .unwrap();
    assert!(
        pf.avg_consumed_frac > conservative.avg_consumed_frac + 0.1,
        "past-future {:.2} should clearly beat conservative {:.2}",
        pf.avg_consumed_frac,
        conservative.avg_consumed_frac
    );
    assert!(pf.decode_steps < conservative.decode_steps);
}

#[test]
fn closed_loop_limits_concurrency() {
    let requests = decode_heavy(30, 7);
    let report = Simulation::closed_loop(
        small_config(SchedulerConfig::Oracle, 1_000_000),
        requests,
        ClosedLoopClients::new(4),
    )
    .run()
    .unwrap();
    assert_eq!(report.completed, 30);
    // With 4 clients and effectively infinite memory, peak usage stays far
    // below what 30 concurrent requests would need.
    assert!(report.peak_consumed_frac < 0.01);
}

#[test]
fn max_sim_time_truncates() {
    let requests = decode_heavy(200, 8);
    let report = Simulation::offline(
        small_config(SchedulerConfig::Oracle, 2_000).clone(),
        requests.clone(),
    )
    .run()
    .unwrap();
    let full_time = report.makespan;
    let mut truncated_config = small_config(SchedulerConfig::Oracle, 2_000);
    truncated_config.max_sim_time = Some(full_time / 4);
    let truncated = Simulation::offline(truncated_config, requests)
        .run()
        .unwrap();
    assert!(truncated.completed < 200);
    assert!(truncated.unfinished > 0);
    assert!(truncated.makespan <= full_time / 3);
}

#[test]
fn oversized_request_is_rejected_upfront() {
    let requests = vec![RequestSpec::new(0u64, 5_000, 100, 100)];
    let err = Simulation::offline(small_config(SchedulerConfig::Oracle, 1_000), requests)
        .run()
        .unwrap_err();
    assert!(matches!(err, SimError::RequestTooLarge { id: 0, .. }));
}

#[test]
fn conservative_stalls_on_uncappable_request() {
    // True output fits, but the worst case (input + max_new) exceeds
    // capacity, so a no-overcommit conservative scheduler can never admit.
    let requests = vec![RequestSpec::new(0u64, 100, 50, 2_000)];
    let err = Simulation::offline(
        small_config(SchedulerConfig::conservative(), 1_000),
        requests,
    )
    .run()
    .unwrap_err();
    assert!(matches!(err, SimError::Stalled { queued: 1, .. }));
}

#[test]
fn paged_layout_completes_with_fragmentation_accounted() {
    let mut config = small_config(SchedulerConfig::past_future(), 3_000);
    config.kv_layout = KvLayout::Paged { block_size: 16 };
    let report = Simulation::offline(config, decode_heavy(32, 9))
        .run()
        .unwrap();
    assert_eq!(report.completed, 32);
}

#[test]
fn contiguous_layout_behaves_like_reservation() {
    let mut config = small_config(SchedulerConfig::conservative(), 5_000);
    config.kv_layout = KvLayout::Contiguous;
    let report = Simulation::offline(config, decode_heavy(16, 10))
        .run()
        .unwrap();
    assert_eq!(report.completed, 16);
    assert_eq!(report.evictions, 0);
}

#[test]
fn chunked_prefill_completes() {
    let mut config = small_config(SchedulerConfig::conservative_overcommit(1.2), 3_000);
    config.prefill = PrefillMode::Chunked { chunk_tokens: 64 };
    let report = Simulation::offline(config, decode_heavy(24, 11))
        .run()
        .unwrap();
    assert_eq!(report.completed, 24);
    assert!(report.goodput.throughput_tok_per_s > 0.0);
}

#[test]
fn static_batching_is_slower_than_continuous() {
    let requests = decode_heavy(32, 12);
    let mut static_config = small_config(SchedulerConfig::conservative(), 20_000);
    static_config.batching = BatchingMode::Static { max_batch: 8 };
    let static_report = Simulation::offline(static_config, requests.clone())
        .run()
        .unwrap();
    let continuous = Simulation::offline(
        small_config(SchedulerConfig::past_future(), 20_000),
        requests,
    )
    .run()
    .unwrap();
    assert_eq!(static_report.completed, 32);
    assert!(
        continuous.throughput() > static_report.throughput(),
        "continuous {:.1} tok/s must beat static {:.1} tok/s",
        continuous.throughput(),
        static_report.throughput()
    );
}

#[test]
fn outcomes_match_ground_truth_lengths() {
    let requests = decode_heavy(40, 13);
    let by_id: std::collections::HashMap<u64, u32> = requests
        .iter()
        .map(|r| (r.id.raw(), r.true_output_len))
        .collect();
    let report = Simulation::offline(
        small_config(SchedulerConfig::aggressive(0.95), 1_500),
        requests,
    )
    .run()
    .unwrap();
    for outcome in &report.outcomes {
        assert_eq!(
            outcome.output_len, by_id[&outcome.id],
            "request {} generated a wrong number of tokens",
            outcome.id
        );
    }
}

#[test]
fn future_required_memory_exceeds_capacity_exactly_when_evictions_loom() {
    let requests = decode_heavy(64, 14);
    let aggressive = Simulation::offline(
        small_config(SchedulerConfig::aggressive(0.99), 1_500),
        requests.clone(),
    )
    .run()
    .unwrap();
    let oracle = Simulation::offline(small_config(SchedulerConfig::Oracle, 1_500), requests)
        .run()
        .unwrap();
    // The aggressive scheduler overcommits the future; the oracle never
    // exceeds 100%.
    let aggressive_peak_future = aggressive.future_required_series.max_value().unwrap_or(0.0);
    let oracle_peak_future = oracle.future_required_series.max_value().unwrap_or(0.0);
    assert!(
        aggressive_peak_future > 1.0,
        "aggressive future requirement should exceed capacity, got {aggressive_peak_future}"
    );
    assert!(
        oracle_peak_future <= 1.0 + 1e-9,
        "oracle future requirement must stay within capacity, got {oracle_peak_future}"
    );
}

#[test]
fn sla_spec_flows_into_goodput() {
    let requests = decode_heavy(32, 15);
    let mut impossible = small_config(SchedulerConfig::Oracle, 2_000);
    impossible.sla = SlaSpec::new(SimDuration::from_micros(1), SimDuration::from_micros(1));
    let report = Simulation::offline(impossible, requests).run().unwrap();
    assert_eq!(report.goodput.satisfied_requests, 0);
    assert_eq!(report.goodput.goodput_tok_per_s, 0.0);
    assert!(report.goodput.throughput_tok_per_s > 0.0);
}

#[test]
fn swap_preemption_completes_and_is_cheaper_than_recompute_for_long_victims() {
    use pf_sim::EvictionMode;
    // Long prompts make the recompute penalty large relative to a PCIe
    // transfer, so swap preemption should finish sooner under the same
    // aggressive eviction storm.
    let input = pf_workload::LengthSampler::uniform(512, 1024);
    let output = pf_workload::LengthSampler::uniform(256, 512);
    let requests = datasets::from_samplers(48, 21, &input, &output, 1024);
    let run = |eviction: EvictionMode| {
        let mut config = small_config(SchedulerConfig::aggressive(0.99), 20_000);
        config.eviction = eviction;
        Simulation::offline(config, requests.clone()).run().unwrap()
    };
    let recompute = run(EvictionMode::Recompute);
    let swap = run(EvictionMode::swap_pcie4());
    assert_eq!(recompute.completed, 48);
    assert_eq!(swap.completed, 48);
    assert!(recompute.evictions > 0, "scenario must actually evict");
    assert!(swap.evictions > 0);
    assert!(
        swap.makespan < recompute.makespan,
        "swap {} should beat recompute {} for long-context victims",
        swap.makespan,
        recompute.makespan
    );
}

#[test]
fn swap_mode_with_zero_evictions_matches_recompute() {
    use pf_sim::EvictionMode;
    let requests = decode_heavy(24, 22);
    let run = |eviction: EvictionMode| {
        let mut config = small_config(SchedulerConfig::Oracle, 50_000);
        config.eviction = eviction;
        Simulation::offline(config, requests.clone()).run().unwrap()
    };
    let recompute = run(EvictionMode::Recompute);
    let swap = run(EvictionMode::swap_pcie4());
    assert_eq!(recompute.evictions, 0);
    assert_eq!(swap.evictions, 0);
    assert_eq!(recompute.makespan, swap.makespan);
    assert_eq!(recompute.decode_steps, swap.decode_steps);
}

#[test]
fn queued_requests_past_their_deadline_time_out() {
    // Everything arrives at once against a pool that admits only a few
    // requests at a time: the back of the queue waits far past 5 s.
    use pf_metrics::SimTime;
    let n = 80;
    let requests: Vec<RequestSpec> = decode_heavy(n, 7)
        .into_iter()
        .map(|r| r.with_deadline(SimDuration::from_secs(5)))
        .collect();
    let arrivals = vec![SimTime::ZERO; n];
    let report = Simulation::with_arrivals(
        small_config(SchedulerConfig::past_future(), 1_200),
        requests,
        arrivals,
    )
    .run()
    .unwrap();
    assert!(
        report.timed_out > 0,
        "a 5 s deadline must cancel stragglers"
    );
    assert_eq!(
        report.completed + report.timed_out,
        n,
        "every request either completes or times out"
    );
    assert_eq!(report.unfinished, 0);
    // Cancelled requests left no KV behind: the survivors' outcomes are
    // all full-length completions.
    assert!(report.outcomes.iter().all(|o| o.output_len >= 1));
}

#[test]
fn deployment_wide_deadline_applies_to_deadline_free_requests() {
    use pf_metrics::SimTime;
    let n = 80;
    let requests = decode_heavy(n, 7); // no per-request deadlines
    let arrivals = vec![SimTime::ZERO; n];
    let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(1_200)
        .request_deadline(SimDuration::from_secs(5))
        .seed(42)
        .build();
    let with_default = Simulation::with_arrivals(config, requests.clone(), arrivals.clone())
        .run()
        .unwrap();
    assert!(with_default.timed_out > 0);
    assert_eq!(with_default.completed + with_default.timed_out, n);
    // Without any deadline the identical run completes everything.
    let without = Simulation::with_arrivals(
        small_config(SchedulerConfig::past_future(), 1_200),
        requests,
        arrivals,
    )
    .run()
    .unwrap();
    assert_eq!(without.completed, n);
    assert_eq!(without.timed_out, 0);
}

#[test]
fn preempted_requests_past_deadline_time_out() {
    // Regression (PR 5): a preemption re-queues at the *front* with
    // tokens already generated, which used to slip past the deadline
    // purge — an expired request was silently re-served instead of
    // counted. Force preempt-past-deadline: everything is admitted at
    // t≈0 (first tokens land well inside the 2 s deadline), the
    // aggressive scheduler overcommits, and decode-time evictions strand
    // victims in the queue past their deadline.
    use pf_metrics::SimTime;
    let n = 16;
    let requests: Vec<RequestSpec> = decode_heavy(n, 31)
        .into_iter()
        .map(|r| r.with_deadline(SimDuration::from_secs(2)))
        .collect();
    let report = Simulation::with_arrivals(
        small_config(SchedulerConfig::aggressive(0.99), 1_000),
        requests,
        vec![SimTime::ZERO; n],
    )
    .run()
    .unwrap();
    assert!(report.evictions > 0, "scenario must actually preempt");
    assert!(
        report.timed_out > 0,
        "a preempted request past its deadline must count as timed out, not be re-served"
    );
    assert_eq!(report.completed + report.timed_out, n);
    // Cancelled and completed requests alike released their KV.
    assert_eq!(report.kv_used_tokens_end, 0);
}

#[test]
fn least_slack_first_reduces_timeouts_on_mixed_deadlines() {
    // A burst of tight-deadline chat interleaved with lax summarization:
    // FIFO serves documents with a minute of slack ahead of chat 50 ms
    // from missing; least-slack-first reorders and both classes survive.
    use pf_metrics::SimTime;
    use pf_sim::QueueOrder;
    let n = 120;
    let requests = datasets::mixed_deadline(n, 11);
    let run = |order: QueueOrder| {
        let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
            .scheduler(SchedulerConfig::past_future())
            .capacity_override(8_000)
            .queue_order(order)
            .seed(3)
            .build();
        Simulation::with_arrivals(config, requests.clone(), vec![SimTime::ZERO; n])
            .run()
            .unwrap()
    };
    let fifo = run(QueueOrder::Fifo);
    let lsf = run(QueueOrder::least_slack());
    assert!(
        fifo.timed_out > 0,
        "the scenario must pressure deadlines under FIFO"
    );
    assert!(
        lsf.timed_out < fifo.timed_out,
        "least-slack-first timed out {} vs FIFO {}",
        lsf.timed_out,
        fifo.timed_out
    );
    assert_eq!(lsf.completed + lsf.timed_out, n);
    // Timed-out requests weigh the denominator, so fewer timeouts at the
    // same service quality means higher attainment.
    assert!(
        lsf.goodput.ttft_attainment() >= fifo.goodput.ttft_attainment(),
        "LSF TTFT attainment {:.3} vs FIFO {:.3}",
        lsf.goodput.ttft_attainment(),
        fifo.goodput.ttft_attainment()
    );
}

#[test]
fn deadline_less_requests_do_not_starve_under_least_slack() {
    // Deadline-less work ranks last under least-slack-first; the aging
    // cap must still get it served through a steady stream of
    // tight-deadline traffic.
    use pf_metrics::SimTime;
    use pf_sim::QueueOrder;
    let tight: Vec<RequestSpec> = datasets::mixed_deadline(80, 13);
    let free = decode_heavy(10, 17);
    let free_ids: Vec<u64> = (1_000..1_010).collect();
    let mut requests: Vec<RequestSpec> = Vec::new();
    let mut arrivals: Vec<SimTime> = Vec::new();
    // Deadline-less requests arrive first, tight traffic floods in after.
    for (mut r, id) in free.into_iter().zip(&free_ids) {
        r.id = (*id).into();
        requests.push(r);
        arrivals.push(SimTime::ZERO);
    }
    for (i, mut r) in tight.into_iter().enumerate() {
        r.id = (i as u64).into();
        requests.push(r);
        arrivals.push(SimTime::from_millis(50 * i as u64));
    }
    let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(6_000)
        .queue_order(QueueOrder::LeastSlackFirst {
            aging_cap: SimDuration::from_secs(8),
        })
        .seed(5)
        .build();
    let report = Simulation::with_arrivals(config, requests, arrivals)
        .run()
        .unwrap();
    for id in free_ids {
        assert!(
            report.outcomes.iter().any(|o| o.id == id),
            "deadline-less request {id} starved"
        );
    }
}

#[test]
fn lone_expired_deadline_leaves_the_rest_untouched() {
    // One request with a millisecond deadline in an otherwise
    // deadline-less run: it times out, everything else completes — and
    // the purge (gated on *pending* deadlines) has nothing to scan once
    // it is gone.
    use pf_metrics::SimTime;
    let n = 40;
    let mut requests = decode_heavy(n, 19);
    let doomed =
        RequestSpec::new(n as u64, 1_200, 8, 512).with_deadline(SimDuration::from_millis(1));
    requests.push(doomed);
    let report = Simulation::with_arrivals(
        small_config(SchedulerConfig::past_future(), 1_500),
        requests,
        vec![SimTime::ZERO; n + 1],
    )
    .run()
    .unwrap();
    assert_eq!(report.timed_out, 1, "only the doomed request expires");
    assert_eq!(report.completed, n);
    assert_eq!(report.unfinished, 0);
}

#[test]
fn generous_deadlines_change_nothing() {
    let n = 48;
    let baseline = Simulation::offline(
        small_config(SchedulerConfig::past_future(), 2_000),
        decode_heavy(n, 9),
    )
    .run()
    .unwrap();
    let relaxed: Vec<RequestSpec> = decode_heavy(n, 9)
        .into_iter()
        .map(|r| r.with_deadline(SimDuration::from_secs(100_000)))
        .collect();
    let with_deadlines =
        Simulation::offline(small_config(SchedulerConfig::past_future(), 2_000), relaxed)
            .run()
            .unwrap();
    assert_eq!(with_deadlines.completed, n);
    assert_eq!(with_deadlines.timed_out, 0);
    assert_eq!(with_deadlines.makespan, baseline.makespan);
    assert_eq!(with_deadlines.decode_steps, baseline.decode_steps);
}

#[test]
fn closed_loop_clients_survive_timeouts() {
    // A timed-out request must free its closed-loop client (the client
    // gave up and submits its next request), keeping the concurrency at
    // `n_clients` as the closed loop intends. Without that, every
    // timeout silently retires a client, the offered load decays, and
    // the tail of the run is measured against a much lighter system
    // than configured (here: timeouts collapse from 45 to 19).
    let n = 60;
    let requests: Vec<RequestSpec> = decode_heavy(n, 23)
        .into_iter()
        .map(|r| r.with_deadline(SimDuration::from_millis(1_500)))
        .collect();
    let report = Simulation::closed_loop(
        small_config(SchedulerConfig::past_future(), 700),
        requests,
        ClosedLoopClients::new(24),
    )
    .run()
    .unwrap();
    assert_eq!(
        report.completed + report.timed_out,
        n,
        "every request either completes or times out — none stranded behind a dead client"
    );
    assert_eq!(report.unfinished, 0);
    assert!(
        report.timed_out > 30,
        "sustained 24-client pressure must keep shedding load (got {} timeouts; \
         a decaying client pool would shed far less)",
        report.timed_out
    );
}
