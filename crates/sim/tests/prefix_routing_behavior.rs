//! Behavioral tests for KV-aware prefix-affinity routing and the
//! rotating equal-load tie-break:
//!
//! * equal-load routing must spread across instances (the old
//!   lowest-index tie-break piled every cold-start request onto member
//!   0);
//! * prefix-affinity routing keeps sessions on the instance that cached
//!   them, producing hits and less prefill work than load-blind routing;
//! * the prefix cache yields to request KV under memory pressure instead
//!   of stalling the engine;
//! * prefix-affinity runs replay bit-identically.

use pf_autoscale::AutoscaleConfig;
use pf_core::SchedulerConfig;
use pf_metrics::{SimDuration, SimTime};
use pf_sim::cluster::{ClusterSimulation, RouterPolicy};
use pf_sim::disagg::{DisaggCluster, DisaggConfig};
use pf_sim::elastic::ElasticCluster;
use pf_sim::{GpuSpec, ModelSpec, SimConfig, Simulation};
use pf_workload::{datasets, RequestSpec};

fn base_config(capacity: u64) -> SimConfig {
    SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(capacity)
        .record_series(false)
        .seed(7)
        .build()
}

fn prefix_config(capacity: u64) -> SimConfig {
    let mut config = base_config(capacity);
    config.prefix_cache = Some(pf_sim::PrefixCacheConfig::with_budget_frac(0.4));
    config
}

/// Tiny identical requests spaced far enough apart that each one finishes
/// before the next arrives — every routing decision sees a fleet of
/// exactly equal loads.
fn spaced_identical(n: usize) -> (Vec<RequestSpec>, Vec<SimTime>) {
    let requests = (0..n)
        .map(|i| RequestSpec::new(i as u64, 64, 4, 16))
        .collect();
    let arrivals = (0..n).map(|i| SimTime::from_secs(2 * i as u64)).collect();
    (requests, arrivals)
}

#[test]
fn equal_load_ties_rotate_instead_of_piling_on_member_zero() {
    let (requests, arrivals) = spaced_identical(30);
    for policy in [
        RouterPolicy::LeastOutstanding,
        RouterPolicy::LeastUsedMemory,
        RouterPolicy::LeastEstimatedLoad,
    ] {
        let report = ClusterSimulation::new(base_config(20_000), 3, policy)
            .run(requests.clone(), arrivals.clone())
            .unwrap_or_else(|e| panic!("{}: {e}", policy.label()));
        assert_eq!(
            report.routed_per_instance,
            vec![10, 10, 10],
            "{}: equal loads must spread round-robin, not pile up",
            policy.label()
        );
    }
}

#[test]
fn elastic_equal_load_ties_rotate_too() {
    let (requests, arrivals) = spaced_identical(30);
    let autoscale = AutoscaleConfig::bounded(3, 3)
        .interval(SimDuration::from_secs(1_000))
        .warmup(SimDuration::from_secs(5));
    let report = ElasticCluster::new(base_config(20_000), autoscale, 3)
        .run(requests, arrivals)
        .expect("elastic run");
    let routed: Vec<usize> = report.instances.iter().map(|i| i.routed).collect();
    assert_eq!(
        routed,
        vec![10, 10, 10],
        "elastic equal loads must spread round-robin"
    );
}

#[test]
fn prefix_affinity_routes_sessions_back_and_saves_prefill() {
    let spec = datasets::MultiTurnSpec::default();
    let (requests, arrivals) = datasets::multi_turn_chat_timed(240, 11, &spec, 2.0, 3.0, 4.0);
    let run = |policy| {
        ClusterSimulation::new(prefix_config(40_000), 3, policy)
            .run(requests.clone(), arrivals.clone())
            .expect("cluster run")
    };
    let affinity = run(RouterPolicy::PrefixAffinity {
        load_tiebreak: true,
    });
    let blind = run(RouterPolicy::LeastEstimatedLoad);
    assert_eq!(affinity.completed(), 240);
    let a = affinity.prefix_stats();
    let b = blind.prefix_stats();
    assert!(a.hits > 0, "affinity routing must produce cache hits");
    assert!(
        a.hit_tokens > b.hit_tokens,
        "affinity must save more prefill than load-blind routing ({} vs {})",
        a.hit_tokens,
        b.hit_tokens
    );
    // Same cache configuration on both fleets: only the routing differs.
    assert_eq!(a.lookups, b.lookups);
}

#[test]
fn prefix_cache_yields_to_request_kv_under_pressure() {
    // Capacity fits only a couple of live conversations, so the cache
    // (40% budget) must repeatedly give its slots back to admissions.
    let spec = datasets::MultiTurnSpec {
        max_context: 1_024,
        max_new_tokens: 128,
        assistant_turn: pf_workload::LengthSampler::uniform(16, 64),
        ..datasets::MultiTurnSpec::default()
    };
    let (requests, arrivals) = datasets::multi_turn_chat_timed(120, 13, &spec, 4.0, 1.0, 1.0);
    let report = Simulation::with_arrivals(prefix_config(2_400), requests, arrivals)
        .run()
        .expect("pressure run must not stall");
    assert_eq!(report.completed, 120);
    assert!(
        report.prefix_stats.evictions > 0,
        "under memory pressure the cache must shed entries"
    );
    assert!(
        report.prefix_cached_tokens <= 2_400 * 4 / 10,
        "cache occupancy exceeded its budget"
    );
}

#[test]
fn watermark_scheduler_reclaims_cache_instead_of_stalling() {
    // The aggressive scheduler gates admission on used memory, which
    // counts cached prefixes. After turn 1 finishes, its 800-token
    // conversation sits in the cache; turn 2 needs 851 tokens against a
    // 1000-token watermark budget, so the scheduler refuses until the
    // engine gives the cache back. Without cache reclamation on a
    // zero-admission plan this run stalls.
    let mut config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::aggressive(0.5))
        .capacity_override(2_000)
        .record_series(false)
        .seed(1)
        .build();
    config.prefix_cache = Some(pf_sim::PrefixCacheConfig::with_budget_frac(0.8));
    let requests = vec![
        RequestSpec::new(0u64, 500, 300, 300).with_prefix(1u64, 0),
        RequestSpec::new(1u64, 850, 50, 100).with_prefix(1u64, 800),
    ];
    let arrivals = vec![SimTime::ZERO, SimTime::from_secs(60)];
    let report = Simulation::with_arrivals(config, requests, arrivals)
        .run()
        .expect("the cache must yield to admission instead of stalling");
    assert_eq!(report.completed, 2);
    assert!(
        report.prefix_stats.evictions > 0,
        "the blocking cache entry must have been reclaimed"
    );
}

#[test]
fn disabled_prefix_cache_changes_nothing() {
    // A prefix-structured workload on a cache-less fleet must behave
    // exactly like the pre-prefix engine: no lookups, no hits.
    let spec = datasets::MultiTurnSpec::default();
    let (requests, arrivals) = datasets::multi_turn_chat_timed(100, 17, &spec, 2.0, 2.0, 2.0);
    let report = ClusterSimulation::new(
        base_config(40_000),
        2,
        RouterPolicy::PrefixAffinity {
            load_tiebreak: true,
        },
    )
    .run(requests, arrivals)
    .expect("cache-less run");
    assert_eq!(report.completed(), 100);
    let stats = report.prefix_stats();
    assert_eq!(stats.lookups, 0);
    assert_eq!(stats.hits, 0);
}

#[test]
fn prefix_affinity_replays_bit_identically() {
    let spec = datasets::MultiTurnSpec::default();
    let (requests, arrivals) = datasets::multi_turn_chat_timed(200, 19, &spec, 3.0, 2.0, 3.0);
    let affinity = RouterPolicy::PrefixAffinity {
        load_tiebreak: true,
    };
    let run_cluster = || {
        ClusterSimulation::new(prefix_config(30_000), 3, affinity)
            .run(requests.clone(), arrivals.clone())
            .expect("cluster run")
    };
    let a = run_cluster();
    let b = run_cluster();
    assert_eq!(a.makespan(), b.makespan());
    assert_eq!(a.routed_per_instance, b.routed_per_instance);
    assert_eq!(a.prefix_stats(), b.prefix_stats());
    assert_eq!(a.satisfied(), b.satisfied());

    let run_disagg = || {
        DisaggCluster::new(
            DisaggConfig::new(prefix_config(30_000)).router(affinity),
            2,
            2,
        )
        .run(requests.clone(), arrivals.clone())
        .expect("disagg run")
    };
    let a = run_disagg();
    let b = run_disagg();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.prefix_stats, b.prefix_stats);
    assert_eq!(
        a.prefill
            .instances
            .iter()
            .map(|i| i.routed)
            .collect::<Vec<_>>(),
        b.prefill
            .instances
            .iter()
            .map(|i| i.routed)
            .collect::<Vec<_>>()
    );
}

#[test]
fn disagg_prefix_affinity_hits_shrink_prefill_pool_work() {
    let spec = datasets::MultiTurnSpec::default();
    let (requests, arrivals) = datasets::multi_turn_chat_timed(240, 23, &spec, 2.5, 2.0, 3.0);
    let run = |policy| {
        DisaggCluster::new(
            DisaggConfig::new(prefix_config(40_000)).router(policy),
            2,
            2,
        )
        .run(requests.clone(), arrivals.clone())
        .expect("disagg run")
    };
    let affinity = run(RouterPolicy::PrefixAffinity {
        load_tiebreak: true,
    });
    let blind = run(RouterPolicy::LeastEstimatedLoad);
    assert_eq!(affinity.completed(), 240);
    assert!(affinity.prefix_stats.hits > 0);
    assert!(
        affinity.prefix_stats.hit_tokens > blind.prefix_stats.hit_tokens,
        "affinity must reuse more prefill work ({} vs {})",
        affinity.prefix_stats.hit_tokens,
        blind.prefix_stats.hit_tokens
    );
}

#[test]
fn timed_out_turns_leave_no_stranded_kv() {
    // Deadline × prefix-cache interaction: a burst of multi-turn chat
    // against a tight default deadline cancels some follow-up turns. A
    // cancelled turn holds no KV (it never started), and its session's
    // cached conversation belongs to the *cache*, charged under the
    // sentinel — at run end the pool must hold exactly the cache's
    // occupancy, nothing stranded from cancelled requests.
    let requests = datasets::multi_turn_chat(200, 9);
    let n = requests.len();
    let mut config = prefix_config(6_000);
    config.request_deadline = Some(SimDuration::from_secs(3));
    let arrivals = vec![SimTime::ZERO; n];
    let report = Simulation::with_arrivals(config, requests, arrivals)
        .run()
        .expect("burst run");
    assert!(
        report.timed_out > 0,
        "the burst must blow some 3 s deadlines"
    );
    assert_eq!(report.completed + report.timed_out, n);
    assert_eq!(
        report.kv_used_tokens_end, report.prefix_cached_tokens,
        "pool occupancy must return to the cache's sentinel charge after the purge"
    );
}

#[test]
fn prefix_affinity_slack_pressure_only_acts_with_deadlines() {
    // The slack-pressure term in PrefixAffinity's load signal is zero for
    // deadline-free traffic: routing (and therefore the whole run) must
    // be bit-identical with and without the slack-aware queue order.
    let (requests, arrivals) = datasets::multi_turn_chat_timed(
        160,
        29,
        &datasets::MultiTurnSpec::default(),
        2.0,
        2.0,
        3.0,
    );
    let run = |order: pf_sim::QueueOrder| {
        let mut config = prefix_config(30_000);
        config.queue_order = order;
        ClusterSimulation::new(
            config,
            3,
            RouterPolicy::PrefixAffinity {
                load_tiebreak: true,
            },
        )
        .run(requests.clone(), arrivals.clone())
        .expect("cluster run")
    };
    let fifo = run(pf_sim::QueueOrder::Fifo);
    let lsf = run(pf_sim::QueueOrder::least_slack());
    assert_eq!(fifo.routed_per_instance, lsf.routed_per_instance);
    assert_eq!(fifo.makespan(), lsf.makespan());
    assert_eq!(fifo.completed(), lsf.completed());
}

#[test]
fn early_drop_accounts_for_cached_prefix() {
    // A follow-up turn whose prompt is almost fully cached is feasible
    // long after its raw length suggests: the least-slack-first
    // early-drop must price the *uncached suffix*, not the full prompt.
    let mut config = prefix_config(20_000);
    config.queue_order = pf_sim::QueueOrder::least_slack();
    let perf = config.perf_model();
    // Turn 1: a 3000-token prompt cached under prefix 7 at completion.
    let first = RequestSpec::new(0u64, 3_000, 8, 512).with_prefix(7u64, 0);
    let conversation = 3_000 + 8;
    // Turn 2 repeats the conversation plus a 100-token user message; its
    // deadline sits between the suffix and the full-prompt prefill time,
    // so dropping it is correct only if the cache is ignored.
    let full = perf.prefill_step(u64::from(conversation) + 100);
    let suffix = perf.prefill_step(100);
    assert!(suffix < full);
    let deadline = SimDuration::from_micros((suffix.as_micros() + full.as_micros()) / 2);
    let second = RequestSpec::new(1u64, conversation + 100, 8, 512)
        .with_prefix(7u64, conversation)
        .with_deadline(deadline);
    let report = Simulation::with_arrivals(
        config,
        vec![first, second],
        vec![SimTime::ZERO, SimTime::from_secs(5)],
    )
    .run()
    .expect("two-turn run");
    assert_eq!(
        report.timed_out, 0,
        "a cached prompt feasible within its deadline must not be early-dropped"
    );
    assert_eq!(report.completed, 2);
    assert!(report.prefix_stats.hits > 0, "turn 2 must hit the cache");
}
