//! Behavioral tests for the disaggregated prefill/decode cluster: request
//! flow through both pools, the bounded transfer link, drain correctness,
//! per-pool scaling independence and full-run determinism.

use pf_autoscale::{AutoscaleConfig, PolicyConfig, PredictorKind};
use pf_metrics::{SimDuration, SimTime, SlaSpec};
use pf_sim::disagg::{
    DisaggCluster, DisaggConfig, DisaggReport, ElasticDisaggCluster, KvTransferSpec, PrefillOrder,
    RepurposeDirection,
};
use pf_sim::{GpuSpec, GpuType, ModelSpec, SimConfig};
use pf_workload::{datasets, rng::seeded, LengthSampler, RateProfile, RequestSpec};

fn base_config(capacity: u64) -> SimConfig {
    SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .capacity_override(capacity)
        .record_series(false)
        .seed(5)
        .build()
}

/// Long prompts, terse answers: the regime disaggregation targets.
/// Deliberately narrower outputs than `datasets::prefill_heavy` (U[8,48]
/// cap 64 vs U[16,96] cap 128) so the behavior suite runs fast; the
/// canonical profile is exercised by `bench --bin disagg` and the golden
/// regression tests.
fn prefill_heavy_requests(n: usize, seed: u64) -> Vec<RequestSpec> {
    let input = LengthSampler::uniform(1024, 3072);
    let output = LengthSampler::uniform(8, 48);
    datasets::from_samplers(n, seed, &input, &output, 64)
}

/// Short prompts, long answers: the decode pool carries the load.
fn decode_heavy_requests(n: usize, seed: u64) -> Vec<RequestSpec> {
    let input = LengthSampler::uniform(32, 128);
    let output = LengthSampler::uniform(256, 640);
    datasets::from_samplers(n, seed, &input, &output, 768)
}

fn steady_arrivals(n: usize, gap_ms: u64) -> Vec<SimTime> {
    (0..n)
        .map(|i| SimTime::from_millis(gap_ms * i as u64))
        .collect()
}

fn autoscale(min: usize, max: usize) -> AutoscaleConfig {
    AutoscaleConfig::bounded(min, max)
        .interval(SimDuration::from_secs(10))
        .warmup(SimDuration::from_secs(15))
        .predictor(PredictorKind::holt())
        .initial_lengths(512.0, 64.0)
}

#[test]
fn requests_flow_through_both_pools_and_all_complete() {
    let n = 200;
    let requests = prefill_heavy_requests(n, 1);
    let report = DisaggCluster::new(DisaggConfig::new(base_config(12_000)), 2, 2)
        .run(requests, steady_arrivals(n, 150))
        .expect("disagg run");
    assert_eq!(report.completed(), n);
    assert_eq!(report.unserved, 0);
    let prefill_routed: usize = report.prefill.instances.iter().map(|i| i.routed).sum();
    let prefill_done: usize = report.prefill.instances.iter().map(|i| i.completed).sum();
    assert_eq!(
        prefill_routed, n,
        "every request is routed to a prefill instance"
    );
    assert_eq!(prefill_done, n, "every request is prefilled");
    let decode_routed: usize = report.decode.instances.iter().map(|i| i.routed).sum();
    assert_eq!(
        decode_routed, report.transfers.transfers,
        "every transfer lands on a decode instance"
    );
    // Multi-token requests must all cross the link.
    assert_eq!(report.transfers.transfers, n);
    assert!(report.transfers.total_bytes > 0);
    // Every outcome carries a first token (TTFT) and full output.
    for outcome in &report.outcomes {
        assert!(outcome.timing.ttft().is_some());
        assert!(outcome.output_len >= 1);
    }
    // Fixed pools never scale.
    assert!(report.prefill.events.is_empty());
    assert!(report.decode.events.is_empty());
}

#[test]
fn transfer_link_respects_the_inflight_bound() {
    // A slow, narrow link (2 slots) under a tight burst: handoffs must
    // queue rather than exceed the bound.
    let n = 120;
    let requests = prefill_heavy_requests(n, 2);
    let config = DisaggConfig::new(base_config(12_000).clone()).transfer(KvTransferSpec::new(
        2.0,
        SimDuration::from_millis(1),
        2,
    ));
    let mut base = config.base.clone();
    base.record_series = true;
    let config = DisaggConfig { base, ..config };
    let report = DisaggCluster::new(config, 2, 2)
        .run(requests, steady_arrivals(n, 40))
        .expect("disagg run");
    assert_eq!(report.completed(), n);
    assert_eq!(report.transfer_intervals.len(), n);
    // Sweep the recorded intervals: concurrent transfers never exceed 2.
    let mut edges: Vec<(u64, i64)> = Vec::new();
    for &(start, end) in &report.transfer_intervals {
        edges.push((start.as_micros(), 1));
        edges.push((end.as_micros(), -1));
    }
    // Ends sort before starts at the same instant: a slot freed at t is
    // reusable at t.
    edges.sort_by_key(|&(t, delta)| (t, delta));
    let mut current = 0i64;
    let mut peak = 0i64;
    for (_, delta) in edges {
        current += delta;
        peak = peak.max(current);
    }
    assert!(
        peak <= 2,
        "observed {peak} concurrent transfers on a 2-slot link"
    );
    assert!(
        report.transfers.total_wait_secs > 0.0,
        "a 2-slot link under this burst must make some handoffs wait"
    );
}

#[test]
fn single_token_requests_never_cross_the_link() {
    let n = 50;
    let input = LengthSampler::uniform(64, 256);
    let output = LengthSampler::uniform(1, 1);
    let requests = datasets::from_samplers(n, 3, &input, &output, 1);
    let report = DisaggCluster::new(DisaggConfig::new(base_config(12_000)), 1, 1)
        .run(requests, steady_arrivals(n, 50))
        .expect("disagg run");
    assert_eq!(report.completed(), n);
    assert_eq!(
        report.transfers.transfers, 0,
        "one-token requests finish at prefill"
    );
    let decode_routed: usize = report.decode.instances.iter().map(|i| i.routed).sum();
    assert_eq!(decode_routed, 0);
}

#[test]
fn transfer_latency_shows_up_between_first_and_second_token() {
    // One request on an extremely slow link: the gap between token one
    // (prefill) and token two (first decode step) must carry the transfer.
    let requests = vec![RequestSpec::new(0, 1000, 8, 16)];
    let slow = KvTransferSpec::new(0.1, SimDuration::from_millis(5), 1);
    let report = DisaggCluster::new(DisaggConfig::new(base_config(12_000)).transfer(slow), 1, 1)
        .run(requests.clone(), vec![SimTime::ZERO])
        .expect("disagg run");
    // ~1001 tokens × 512 KiB ≈ 0.5 GB at 0.1 GB/s ≈ 5 s of link time.
    let outcome = &report.outcomes[0];
    assert!(
        outcome.timing.mtpot() >= SimDuration::from_secs(4),
        "mtpot {} should include the ~5 s transfer",
        outcome.timing.mtpot()
    );
    // The same request on a fast link has no such stall.
    let fast_report = DisaggCluster::new(
        DisaggConfig::new(base_config(12_000)).transfer(KvTransferSpec::nvlink()),
        1,
        1,
    )
    .run(requests, vec![SimTime::ZERO])
    .expect("disagg run");
    assert!(fast_report.outcomes[0].timing.mtpot() < SimDuration::from_secs(1));
}

fn elastic_run(requests: Vec<RequestSpec>, arrivals: Vec<SimTime>) -> DisaggReport {
    ElasticDisaggCluster::new(
        DisaggConfig::new(base_config(12_000)),
        autoscale(1, 4),
        autoscale(1, 4),
        1,
        1,
    )
    .run(requests, arrivals)
    .expect("elastic disagg run")
}

#[test]
fn elastic_disagg_run_is_deterministic() {
    let n = 400;
    let make = || {
        let requests = prefill_heavy_requests(n, 7);
        let arrivals =
            RateProfile::diurnal(1.0, 8.0, SimDuration::from_secs(120)).assign(&mut seeded(8), n);
        elastic_run(requests, arrivals)
    };
    let a = make();
    let b = make();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.gpu_seconds(), b.gpu_seconds());
    assert_eq!(a.prefill.events, b.prefill.events);
    assert_eq!(a.decode.events, b.decode.events);
    assert_eq!(a.transfers, b.transfers);
    assert_eq!(a.goodput.satisfied_requests, b.goodput.satisfied_requests);
}

#[test]
fn prefill_heavy_load_scales_only_the_prefill_pool() {
    // ~8 req/s of 1-3k-token prompts saturates one prefill instance
    // (~0.2 s per prompt) while the tiny outputs barely load decode.
    let n = 500;
    let requests = prefill_heavy_requests(n, 9);
    let report = elastic_run(requests, steady_arrivals(n, 125));
    assert_eq!(report.completed(), n);
    assert!(
        report.peak_prefill_replicas() > 1,
        "prefill pool never scaled: events {:?}",
        report.prefill.events
    );
    assert_eq!(
        report.peak_decode_replicas(),
        1,
        "decode pool should idle at minimum: events {:?}",
        report.decode.events
    );
}

#[test]
fn decode_heavy_load_scales_only_the_decode_pool() {
    // Short prompts keep prefill idle; 512+-token outputs at 6 req/s
    // exceed one decode instance's token throughput.
    let n = 400;
    let requests = decode_heavy_requests(n, 10);
    let report = elastic_run(requests, steady_arrivals(n, 160));
    assert_eq!(report.completed(), n);
    assert!(
        report.peak_decode_replicas() > 1,
        "decode pool never scaled: events {:?}",
        report.decode.events
    );
    assert_eq!(
        report.peak_prefill_replicas(),
        1,
        "prefill pool should idle at minimum: events {:?}",
        report.prefill.events
    );
}

#[test]
fn drained_instances_finish_their_work_before_stopping() {
    // A heavy burst grows the pools, then a long quiet tail drains them.
    let burst = 350usize;
    let tail = 80usize;
    let mut requests = prefill_heavy_requests(burst, 11);
    requests.extend(
        prefill_heavy_requests(tail, 12)
            .into_iter()
            .enumerate()
            .map(|(i, mut r)| {
                r.id = ((burst + i) as u64).into();
                r
            }),
    );
    let mut arrivals: Vec<SimTime> = (0..burst)
        .map(|i| SimTime::from_millis(100 * i as u64)) // 10 req/s for 35 s
        .collect();
    arrivals.extend((0..tail).map(|i| SimTime::from_millis(35_000 + 3_000 * i as u64)));
    let report = elastic_run(requests, arrivals);
    assert_eq!(report.completed(), burst + tail);
    let end = SimTime::ZERO + report.makespan;
    let mut early_stops = 0;
    for pool in [&report.prefill, &report.decode] {
        for instance in &pool.instances {
            if instance.stopped_at < end {
                early_stops += 1;
                assert_eq!(
                    instance.routed, instance.completed,
                    "an instance stopped with routed work unfinished"
                );
            }
        }
    }
    assert!(
        early_stops > 0,
        "the quiet tail never drained any instance: prefill {:?}, decode {:?}",
        report.prefill.events,
        report.decode.events
    );
}

#[test]
fn gpu_seconds_stay_below_peak_static_cost() {
    let n = 400;
    let requests = prefill_heavy_requests(n, 13);
    let arrivals =
        RateProfile::diurnal(1.0, 8.0, SimDuration::from_secs(120)).assign(&mut seeded(14), n);
    let report = elastic_run(requests, arrivals);
    let peak_total = report.peak_prefill_replicas() + report.peak_decode_replicas();
    let peak_cost = peak_total as f64 * report.makespan.as_secs_f64();
    assert!(report.gpu_seconds() > 0.0);
    assert!(
        report.gpu_seconds() < peak_cost,
        "elastic cost {} should undercut peak-static cost {}",
        report.gpu_seconds(),
        peak_cost
    );
}

#[test]
#[should_panic(expected = "outside policy bounds")]
fn initial_replicas_outside_bounds_panics() {
    let _ = ElasticDisaggCluster::new(
        DisaggConfig::new(base_config(12_000)),
        autoscale(1, 4),
        autoscale(1, 4),
        6,
        1,
    );
}

/// Prefill-heavy bursts with a minority of very long prompts: the regime
/// where queue order decides the TTFT tail — during a burst, dozens of
/// short summaries pile up behind one 3k-token prompt at the head of a
/// FIFO queue.
fn bursty_mixed_prompts(n: usize, seed: u64) -> (Vec<RequestSpec>, Vec<SimTime>) {
    let input = LengthSampler::mixture(vec![
        (0.90, LengthSampler::uniform(64, 256)),
        (0.10, LengthSampler::uniform(2048, 3072)),
    ]);
    let output = LengthSampler::uniform(8, 32);
    let requests = datasets::from_samplers(n, seed, &input, &output, 64);
    let arrivals = RateProfile::bursty(
        3.0,
        22.0,
        SimDuration::from_secs(25),
        SimDuration::from_secs(60),
    )
    .assign(&mut seeded(33), n);
    (requests, arrivals)
}

#[test]
fn sjf_prefill_order_cuts_the_ttft_tail_without_starving_long_prompts() {
    let n = 600;
    let aging_cap = SimDuration::from_secs(8);
    let (requests, arrivals) = bursty_mixed_prompts(n, 21);
    let run = |order: PrefillOrder| {
        DisaggCluster::new(
            DisaggConfig::new(base_config(12_000))
                .prefill_order(order)
                .prefill_batch_tokens(4_096),
            1,
            1,
        )
        .run(requests.clone(), arrivals.clone())
        .expect("disagg run")
    };
    let fifo = run(PrefillOrder::Fifo);
    let sjf = run(PrefillOrder::ShortestPromptFirst { aging_cap });
    assert_eq!(fifo.completed(), n);
    assert_eq!(sjf.completed(), n, "sjf must not drop or starve requests");
    assert!(
        sjf.goodput.ttft_secs.p99 < fifo.goodput.ttft_secs.p99,
        "sjf TTFT p99 {:.2}s did not beat fifo {:.2}s",
        sjf.goodput.ttft_secs.p99,
        fifo.goodput.ttft_secs.p99
    );
    // The aging cap bounds starvation: the worst wait under SJF (a long
    // prompt repeatedly overtaken during a burst) stays within the cap
    // plus one aged-flush backlog — operationally, no prompt waits
    // unboundedly behind short ones.
    let max_ttft = |report: &DisaggReport| {
        report
            .outcomes
            .iter()
            .filter_map(|o| o.timing.ttft())
            .max()
            .expect("completed requests have first tokens")
    };
    let fifo_worst = max_ttft(&fifo);
    let sjf_worst = max_ttft(&sjf);
    assert!(
        sjf_worst <= fifo_worst + aging_cap,
        "sjf worst TTFT {sjf_worst} exceeds fifo worst {fifo_worst} plus the aging cap"
    );
}

#[test]
fn queued_requests_past_their_deadline_are_cancelled() {
    // One prefill instance at ~2x its service rate: the queue grows
    // without bound, so late requests blow through a 12 s deadline.
    let n = 200;
    let requests: Vec<RequestSpec> = prefill_heavy_requests(n, 22)
        .into_iter()
        .map(|r| r.with_deadline(SimDuration::from_secs(12)))
        .collect();
    let report = DisaggCluster::new(DisaggConfig::new(base_config(12_000)), 1, 1)
        .run(requests, steady_arrivals(n, 100))
        .expect("disagg run");
    assert!(
        report.timed_out > 0,
        "an overloaded prefill queue must time requests out"
    );
    assert_eq!(
        report.completed() + report.timed_out,
        n,
        "every request either completes or times out"
    );
    assert_eq!(report.unserved, 0);
    // Every completed request met its deadline to the first token.
    for outcome in &report.outcomes {
        let ttft = outcome.timing.ttft().expect("completed");
        assert!(
            ttft < SimDuration::from_secs(12) + SimDuration::from_secs(1),
            "request {} completed with TTFT {} past its deadline",
            outcome.id,
            ttft
        );
    }
    // Without deadlines the same run completes everything.
    let no_deadline = DisaggCluster::new(DisaggConfig::new(base_config(12_000)), 1, 1)
        .run(prefill_heavy_requests(n, 22), steady_arrivals(n, 100))
        .expect("disagg run");
    assert_eq!(no_deadline.completed(), n);
    assert_eq!(no_deadline.timed_out, 0);
}

#[test]
fn heterogeneous_pools_price_and_pace_by_gpu_type() {
    let n = 200;
    let requests = prefill_heavy_requests(n, 23);
    let run = |slots: Vec<GpuType>| {
        DisaggCluster::new(
            DisaggConfig::new(base_config(12_000)).fleet(slots, Vec::new()),
            2,
            1,
        )
        .run(requests.clone(), steady_arrivals(n, 150))
        .expect("disagg run")
    };
    let reference = run(Vec::new());
    let homogeneous = run(vec![GpuType::reference(), GpuType::reference()]);
    let mixed = run(vec![GpuType::reference(), GpuType::mid()]);
    // Declaring the reference type explicitly changes nothing, bit for bit.
    assert_eq!(reference.makespan, homogeneous.makespan);
    assert_eq!(
        reference.cost_weighted_gpu_seconds(),
        homogeneous.cost_weighted_gpu_seconds()
    );
    assert_eq!(
        reference.gpu_seconds(),
        reference.cost_weighted_gpu_seconds()
    );
    // A mixed pool completes everything, bills the cheap GPU at its
    // weight, and routes more work to the faster member.
    assert_eq!(mixed.completed(), n);
    assert!(
        mixed.cost_weighted_gpu_seconds() < mixed.gpu_seconds(),
        "a sub-1.0-cost member must cut the weighted bill"
    );
    assert!(
        mixed.prefill.instances[0].routed > mixed.prefill.instances[1].routed,
        "the faster GPU should draw more traffic ({} vs {})",
        mixed.prefill.instances[0].routed,
        mixed.prefill.instances[1].routed
    );
}

#[test]
fn oversized_prompt_is_rejected_upfront() {
    let requests = vec![RequestSpec::new(0, 4000, 8, 16)];
    let err = DisaggCluster::new(DisaggConfig::new(base_config(3_000)), 1, 1)
        .run(requests, vec![SimTime::ZERO])
        .expect_err("a 4k prompt cannot fit a 3k-token pool");
    assert!(err.to_string().contains("request 0"));
}

#[test]
fn least_slack_first_reduces_disagg_timeouts_on_mixed_deadlines() {
    // Mixed-deadline traffic through an overloaded prefill pool: FIFO
    // serves 3k-token documents with a minute of slack ahead of chat
    // seconds from missing; the slack-aware order flips that, and the
    // doomed are dropped before they burn a pass.
    let n = 300;
    let requests = datasets::mixed_deadline(n, 33);
    let arrivals = steady_arrivals(n, 25);
    let run = |order: pf_sim::QueueOrder| {
        let mut base = base_config(12_000);
        base.queue_order = order;
        DisaggCluster::new(DisaggConfig::new(base), 1, 1)
            .run(requests.clone(), arrivals.clone())
            .expect("disagg run")
    };
    let fifo = run(pf_sim::QueueOrder::Fifo);
    let lsf = run(pf_sim::QueueOrder::least_slack());
    assert!(
        fifo.timed_out > 0,
        "the scenario must pressure deadlines under FIFO"
    );
    assert!(
        lsf.timed_out < fifo.timed_out,
        "least-slack-first timed out {} vs FIFO {}",
        lsf.timed_out,
        fifo.timed_out
    );
    assert_eq!(lsf.completed() + lsf.timed_out, n);
    assert_eq!(lsf.unserved, 0);
}

#[test]
fn atomic_transfer_charges_overhead_once() {
    // Regression pin for the per-stream overhead fix: the atomic
    // closed-form latency is bandwidth plus exactly one hop overhead,
    // independent of how many layers the model has (atomic mode never
    // chunks).
    let spec = KvTransferSpec::new(25.0, SimDuration::from_micros(200), 4);
    assert_eq!(
        spec.latency(25_000_000_000),
        SimDuration::from_secs(1) + SimDuration::from_micros(200)
    );
    assert_eq!(
        KvTransferSpec::pcie4().latency(1_000_000),
        KvTransferSpec::pcie4().layers(64).latency(1_000_000),
        "layer count must not leak into the atomic latency"
    );
}

#[test]
fn streamed_transfers_hide_the_link_behind_prefill() {
    // Same prefill-heavy traffic over the same honest serialized wire
    // (one transfer slot, so the link is never overcommitted), atomic vs
    // layer-streamed: streaming overlaps the wire time with the producing
    // pass, so the KV hold releases at roughly the pass end instead of
    // pass end plus the full wire time — and under a tight TTFT budget
    // that backpressure relief shows up directly in SLA attainment.
    let n = 240;
    let requests = prefill_heavy_requests(n, 5);
    let arrivals = steady_arrivals(n, 250);
    let sla = SlaSpec::new(
        SimDuration::from_millis(1_500),
        SimDuration::from_millis(1_500),
    );
    let link = KvTransferSpec::new(7.0, SimDuration::from_micros(200), 1);
    let run = |transfer: KvTransferSpec| {
        let base = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
            .capacity_override(4_500)
            .sla(sla)
            .record_series(false)
            .seed(5)
            .build();
        DisaggCluster::new(DisaggConfig::new(base).transfer(transfer), 1, 1)
            .run(requests.clone(), arrivals.clone())
            .expect("disagg run")
    };
    let atomic = run(link);
    let streamed = run(link.streamed());
    assert_eq!(atomic.transfers.streamed, 0);
    assert_eq!(streamed.transfers.streamed, streamed.transfers.transfers);
    // Identical payloads cross the link in both modes.
    assert_eq!(streamed.transfers.total_bytes, atomic.transfers.total_bytes);
    assert_eq!(streamed.transfers.transfers, atomic.transfers.transfers);
    // The streamed tail (transfer time left after prefill ends) is a
    // small fraction of the wire time the atomic path serializes.
    assert!(
        streamed.transfers.total_tail_secs < 0.1 * atomic.transfers.total_link_secs,
        "tail {:.3}s vs atomic link {:.3}s",
        streamed.transfers.total_tail_secs,
        atomic.transfers.total_link_secs
    );
    // The shared link has no slot queue: streams start immediately.
    assert_eq!(streamed.transfers.total_wait_secs, 0.0);
    // The payoff: hiding the wire behind the pass frees prefill KV sooner,
    // so TTFT attainment strictly improves at no extra GPU cost.
    assert!(
        streamed.ttft_attainment() > atomic.ttft_attainment() + 0.1,
        "streamed attainment {:.3} vs atomic {:.3}",
        streamed.ttft_attainment(),
        atomic.ttft_attainment()
    );
    assert!(
        streamed.gpu_seconds() <= atomic.gpu_seconds(),
        "streamed burned more GPU: {:.1}s vs {:.1}s",
        streamed.gpu_seconds(),
        atomic.gpu_seconds()
    );
}

#[test]
fn streamed_run_is_deterministic() {
    let n = 120;
    let requests = prefill_heavy_requests(n, 11);
    let arrivals = steady_arrivals(n, 50);
    let run = || {
        let transfer = KvTransferSpec::new(5.0, SimDuration::from_micros(500), 4).streamed();
        DisaggCluster::new(
            DisaggConfig::new(base_config(12_000)).transfer(transfer),
            2,
            2,
        )
        .run(requests.clone(), arrivals.clone())
        .expect("disagg run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.transfers, b.transfers);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.goodput, b.goodput);
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.timing, y.timing);
    }
}

#[test]
fn reverse_repurposing_rebalances_a_diurnal_day() {
    // Decode-heavy morning, prefill-heavy afternoon with a thin trickle
    // of long decodes: the afternoon's prefill scale-up must claim the
    // decode pool's draining members and flip them back — the mirror of
    // the prefill→decode flip — instead of paying full warmups while
    // drained decode GPUs idle out. The trickle keeps drained members
    // busy long enough to survive into the next plan round (the claim
    // window a real diurnal shift always has).
    let n_morning = 360;
    let n_wave1 = 300;
    let n_wave2 = 450;
    let n_trickle = 40;
    let long_decode = {
        let input = LengthSampler::uniform(32, 128);
        let output = LengthSampler::uniform(1536, 3072);
        datasets::from_samplers(n_trickle, 23, &input, &output, 3072)
    };
    let mut pairs: Vec<(RequestSpec, SimTime)> = Vec::new();
    for (i, r) in decode_heavy_requests(n_morning, 21).into_iter().enumerate() {
        pairs.push((r, SimTime::from_micros(100_000 * i as u64)));
    }
    let start = 100_000 * n_morning as u64;
    for (i, r) in prefill_heavy_requests(n_wave1 + n_wave2, 22)
        .into_iter()
        .enumerate()
    {
        let at = if i < n_wave1 {
            start + 100_000 * (i as u64 + 1)
        } else {
            start + 100_000 * n_wave1 as u64 + 50_000 * ((i - n_wave1) as u64 + 1)
        };
        pairs.push((r, SimTime::from_micros(at)));
    }
    for (i, r) in long_decode.into_iter().enumerate() {
        pairs.push((
            r,
            SimTime::from_micros(start + 1_000 + 1_500_000 * i as u64),
        ));
    }
    pairs.sort_by_key(|&(_, at)| at);
    let (mut requests, arrivals): (Vec<RequestSpec>, Vec<SimTime>) = pairs.into_iter().unzip();
    for (i, r) in requests.iter_mut().enumerate() {
        r.id = (i as u64).into();
    }
    let pool = |max: usize, patience: u32| {
        let mut policy = PolicyConfig::bounded(1, max);
        policy.scale_down_patience = patience;
        AutoscaleConfig::bounded(1, max)
            .interval(SimDuration::from_secs(10))
            .warmup(SimDuration::from_secs(20))
            .predictor(PredictorKind::holt())
            .initial_lengths(512.0, 64.0)
            .policy(policy)
    };
    let config = DisaggConfig::new(base_config(9_000)).repurpose(SimDuration::from_secs(2));
    let report = ElasticDisaggCluster::new(config, pool(6, 3), pool(4, 1), 1, 2)
        .run(requests, arrivals)
        .expect("diurnal run");
    assert_eq!(report.unserved, 0);
    let reverse: Vec<_> = report
        .repurposes
        .iter()
        .filter(|e| e.direction == RepurposeDirection::DecodeToPrefill)
        .collect();
    assert!(
        !reverse.is_empty(),
        "the afternoon phase shift never flipped a decode member back"
    );
    for event in reverse {
        let prefill = &report.prefill.instances[event.prefill_member];
        let decode = &report.decode.instances[event.decode_member];
        // Same conservation rules as the forward direction: the decode
        // life ends exactly where the prefill life begins, on one GPU.
        assert_eq!(decode.stopped_at, event.at);
        assert_eq!(prefill.spawned_at, event.at);
        assert_eq!(prefill.gpu, decode.gpu);
        assert!(decode.spawned_at < event.at);
    }
}
