//! End-to-end CLI contract: a misused experiment binary must exit with
//! code 2 (CLI-misuse convention) and print a usage hint, never panic.

use std::process::Command;

#[test]
fn unknown_argument_exits_with_code_2() {
    let output = Command::new(env!("CARGO_BIN_EXE_simulate"))
        .arg("--frobnicate")
        .output()
        .expect("spawn simulate binary");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("unknown argument"),
        "stderr must name the bad flag: {stderr}"
    );
    assert!(
        stderr.contains("simulate"),
        "stderr must include the usage text: {stderr}"
    );
}

#[test]
fn missing_flag_value_exits_with_code_2() {
    let output = Command::new(env!("CARGO_BIN_EXE_simulate"))
        .args(["--seed"])
        .output()
        .expect("spawn simulate binary");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--seed requires"),
        "stderr must name the incomplete flag: {stderr}"
    );
}

#[test]
fn help_exits_cleanly() {
    let output = Command::new(env!("CARGO_BIN_EXE_simulate"))
        .arg("--help")
        .output()
        .expect("spawn simulate binary");
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("OPTIONS"));
}
