//! Bit-exactness suite for the simulator hot-path rework: every engine
//! shape (colocated, cluster-routed, disaggregated, elastic) is run across
//! several seeds and configurations, and a 64-bit fingerprint of the full
//! report — scalar counters, f64 bit patterns, and the complete
//! per-request timing stream — is compared against the committed golden
//! file. Any change to admission order, clock arithmetic, RNG consumption,
//! or preemption behavior shifts at least one fingerprint.
//!
//! The goldens were generated from the pre-slab engines, so a passing run
//! proves the slab-indexed state, scratch buffers, cached distributions,
//! and incremental slack ranking are observationally identical to the
//! straightforward implementations they replaced.
//!
//! Regenerate (only when an *intentional* behavior change lands) with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p pf-bench --test report_equivalence
//! ```

use pf_autoscale::{AutoscaleConfig, PredictorKind};
use pf_core::SchedulerConfig;
use pf_metrics::{GoodputReport, SimDuration, SimTime, Summary};
use pf_sim::cluster::{ClusterSimulation, RouterPolicy};
use pf_sim::disagg::{DisaggCluster, DisaggConfig, KvTransferSpec, TransferMode};
use pf_sim::elastic::ElasticCluster;
use pf_sim::{
    EvictionMode, GpuSpec, ModelSpec, PrefillMode, QueueOrder, RequestOutcome, RouterConfig,
    SimConfig, Simulation,
};
use pf_workload::rng::seeded;
use pf_workload::{datasets, PoissonArrivals};

const GOLDEN_PATH: &str = "tests/golden/report_fingerprints.txt";

/// FNV-1a over a stream of u64 words (stable, dependency-free).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn f64(&mut self, v: f64) {
        self.word(v.to_bits());
    }
}

fn hash_summary(h: &mut Fnv, s: &Summary) {
    h.word(s.count as u64);
    for v in [s.mean, s.std_dev, s.min, s.max, s.p50, s.p90, s.p99] {
        h.f64(v);
    }
}

fn hash_goodput(h: &mut Fnv, g: &GoodputReport) {
    h.word(g.total_requests as u64);
    h.word(g.satisfied_requests as u64);
    h.word(g.total_output_tokens);
    h.word(g.satisfied_output_tokens);
    h.word(g.duration.as_micros());
    h.f64(g.throughput_tok_per_s);
    h.f64(g.goodput_tok_per_s);
    hash_summary(h, &g.ttft_secs);
    hash_summary(h, &g.mtpot_secs);
}

/// The per-request stream is the most sensitive probe: every token
/// timestamp of every completed request feeds the hash.
fn hash_outcomes(h: &mut Fnv, outcomes: &[RequestOutcome]) {
    h.word(outcomes.len() as u64);
    for o in outcomes {
        h.word(o.id);
        h.word(u64::from(o.input_len));
        h.word(u64::from(o.output_len));
        h.word(u64::from(o.evictions));
        h.word(
            o.timing
                .arrival()
                .saturating_since(SimTime::ZERO)
                .as_micros(),
        );
        h.word(o.timing.ttft().map_or(u64::MAX, |d| d.as_micros()));
        h.word(o.timing.n_tokens());
        h.word(
            o.timing
                .last_token_at()
                .saturating_since(SimTime::ZERO)
                .as_micros(),
        );
    }
}

fn hash_sim_report(h: &mut Fnv, r: &pf_sim::SimReport) {
    h.word(r.completed as u64);
    h.word(r.unfinished as u64);
    h.word(r.timed_out as u64);
    h.word(r.decode_steps);
    h.word(r.prefill_steps);
    h.word(r.evictions);
    h.word(r.makespan.as_micros());
    h.word(r.capacity_tokens);
    h.f64(r.avg_consumed_frac);
    h.f64(r.avg_future_required_frac);
    h.f64(r.peak_consumed_frac);
    h.word(r.kv_used_tokens_end);
    h.word(r.prefix_stats.lookups);
    h.word(r.prefix_stats.hits);
    h.word(r.prefix_cached_tokens);
    hash_goodput(h, &r.goodput);
    hash_outcomes(h, &r.outcomes);
}

fn base(seed: u64, capacity: u64) -> pf_sim::SimConfigBuilder {
    SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(capacity)
        .record_series(false)
        .seed(seed)
}

/// Every pinned scenario, as `(label, fingerprint)` pairs.
fn fingerprints() -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut pin = |label: String, hash: Fnv| out.push((label, hash.0));

    // Colocated offline, the Table-1 hot loop, across seeds.
    for seed in [1u64, 2, 3] {
        let requests = datasets::sharegpt(300, seed);
        let report = Simulation::offline(base(seed, 20_000).build(), requests)
            .run()
            .expect("coloc run");
        let mut h = Fnv::new();
        hash_sim_report(&mut h, &report);
        pin(format!("coloc-offline-pf-seed{seed}"), h);
    }

    // The oracle scheduler exercises the `oracle_remaining` view fields.
    {
        let requests = datasets::distribution_1(250, 7);
        let report = Simulation::offline(
            base(7, 15_000).scheduler(SchedulerConfig::Oracle).build(),
            requests,
        )
        .run()
        .expect("oracle run");
        let mut h = Fnv::new();
        hash_sim_report(&mut h, &report);
        pin("coloc-oracle".into(), h);
    }

    // Slack-aware queue ordering with per-request deadlines: exercises
    // ranking, aging, early drops, and the timed-out accounting.
    for seed in [11u64, 12] {
        let requests = datasets::mixed_deadline(400, seed);
        let arrivals = PoissonArrivals::new(40.0).assign(&mut seeded(seed), 400);
        let report = Simulation::with_arrivals(
            base(seed, 8_000)
                .queue_order(QueueOrder::least_slack())
                .build(),
            requests,
            arrivals,
        )
        .run()
        .expect("slack run");
        let mut h = Fnv::new();
        hash_sim_report(&mut h, &report);
        pin(format!("coloc-slack-deadline-seed{seed}"), h);
    }

    // Chunked prefill + swap preemption + prefix cache: the remaining
    // engine code paths (mixed steps, swap transfers, cache reclaim).
    {
        let requests = datasets::multi_turn_chat(300, 21);
        let arrivals = PoissonArrivals::new(30.0).assign(&mut seeded(22), 300);
        let report = Simulation::with_arrivals(
            base(21, 6_000)
                .prefill(PrefillMode::Chunked { chunk_tokens: 512 })
                .eviction(EvictionMode::Swap { pcie_gbps: 32.0 })
                .prefix_cache(0.2)
                .build(),
            requests,
            arrivals,
        )
        .run()
        .expect("chunked-swap run");
        let mut h = Fnv::new();
        hash_sim_report(&mut h, &report);
        pin("coloc-chunked-swap-prefix".into(), h);
    }

    // Cluster routing probes (`load_estimate`, `queue_slack_pressure`,
    // `cached_prefix_tokens`) must stay bit-identical too.
    {
        let requests = datasets::mixed_deadline(400, 31);
        let arrivals = PoissonArrivals::new(60.0).assign(&mut seeded(31), 400);
        let report = ClusterSimulation::new(
            base(31, 6_000)
                .queue_order(QueueOrder::least_slack())
                .build(),
            3,
            RouterPolicy::LeastEstimatedLoad,
        )
        .run(requests, arrivals)
        .expect("cluster run");
        let mut h = Fnv::new();
        for (routed, r) in report.routed_per_instance.iter().zip(&report.instances) {
            h.word(*routed as u64);
            hash_sim_report(&mut h, r);
        }
        pin("cluster-least-load".into(), h);
    }

    // KV-overlap softmax routing over the block-granular store: chained
    // block hashing, delayed event propagation into the global index,
    // and the temperature-scaled cost-logit draw all consume determinism
    // budget, so the complete routed stream is pinned here.
    {
        let spec = datasets::SharedSyspromptSpec::default();
        let (requests, arrivals) =
            datasets::shared_sysprompt_chat_timed(300, 61, &spec, 3.0, 2.0, 3.0);
        let report = ClusterSimulation::new(
            base(61, 20_000)
                .prefix_cache_blocks(0.4, 64)
                .router(RouterConfig {
                    kv_event_delay: SimDuration::from_millis(250),
                    ..RouterConfig::default()
                })
                .build(),
            3,
            RouterPolicy::KvOverlap {
                overlap_weight: 1.0,
                temperature: 0.25,
            },
        )
        .run(requests, arrivals)
        .expect("kv-softmax cluster run");
        let mut h = Fnv::new();
        for (routed, r) in report.routed_per_instance.iter().zip(&report.instances) {
            h.word(*routed as u64);
            hash_sim_report(&mut h, r);
        }
        pin("cluster-kv-softmax".into(), h);
    }

    // Disaggregated 2p+2d, plain and slack-ordered.
    for (label, order, seed) in [
        ("disagg-fifo", QueueOrder::Fifo, 41u64),
        ("disagg-slack", QueueOrder::least_slack(), 42),
    ] {
        let n = 300;
        let requests = if order.is_slack_aware() {
            datasets::mixed_deadline(n, seed)
        } else {
            datasets::sharegpt(n, seed)
        };
        let arrivals: Vec<SimTime> = (0..n)
            .map(|i| SimTime::from_millis(15 * i as u64))
            .collect();
        let config = DisaggConfig::new(base(seed, 12_000).queue_order(order).build());
        let report = DisaggCluster::new(config, 2, 2)
            .run(requests, arrivals)
            .expect("disagg run");
        let mut h = Fnv::new();
        hash_goodput(&mut h, &report.goodput);
        h.word(report.makespan.as_micros());
        h.word(report.unserved as u64);
        h.word(report.timed_out as u64);
        h.word(report.transfers.transfers as u64);
        h.word(report.transfers.total_bytes);
        h.f64(report.transfers.total_link_secs);
        h.f64(report.transfers.total_wait_secs);
        hash_outcomes(&mut h, &report.outcomes);
        pin(label.into(), h);
    }

    // Disaggregated pools under KV-overlap routing: the decode pool
    // consults the exact delayed index, the prefill pool the approximate
    // TTL index, and both picks replay from the router's own stream.
    {
        let spec = datasets::SharedSyspromptSpec::default();
        let (requests, arrivals) =
            datasets::shared_sysprompt_chat_timed(300, 62, &spec, 3.0, 2.0, 3.0);
        let config = DisaggConfig::new(base(62, 12_000).prefix_cache_blocks(0.4, 64).build())
            .router(RouterPolicy::KvOverlap {
                overlap_weight: 1.0,
                temperature: 0.2,
            });
        let report = DisaggCluster::new(config, 2, 2)
            .run(requests, arrivals)
            .expect("disagg kv run");
        let mut h = Fnv::new();
        hash_goodput(&mut h, &report.goodput);
        h.word(report.makespan.as_micros());
        h.word(report.unserved as u64);
        h.word(report.timed_out as u64);
        h.word(report.transfers.transfers as u64);
        h.word(report.transfers.total_bytes);
        h.f64(report.transfers.total_link_secs);
        h.f64(report.transfers.total_wait_secs);
        hash_outcomes(&mut h, &report.outcomes);
        pin("disagg-kv-overlap".into(), h);
    }

    // Layer-streamed disaggregated transfers over a narrow shared link:
    // the fluid fair-share scheduler, chunk eligibility clock, and the
    // stream-done handoff all feed the outcome stream, and the streamed
    // counters join the fingerprint.
    {
        let n = 300;
        let requests = datasets::sharegpt(n, 63);
        let arrivals: Vec<SimTime> = (0..n)
            .map(|i| SimTime::from_millis(15 * i as u64))
            .collect();
        let transfer = KvTransferSpec::new(10.0, SimDuration::from_micros(200), 2).streamed();
        let config = DisaggConfig::new(base(63, 12_000).build()).transfer(transfer);
        let report = DisaggCluster::new(config, 2, 2)
            .run(requests, arrivals)
            .expect("disagg stream run");
        let mut h = Fnv::new();
        hash_goodput(&mut h, &report.goodput);
        h.word(report.makespan.as_micros());
        h.word(report.unserved as u64);
        h.word(report.timed_out as u64);
        h.word(report.transfers.transfers as u64);
        h.word(report.transfers.streamed as u64);
        h.word(report.transfers.total_bytes);
        h.f64(report.transfers.total_link_secs);
        h.f64(report.transfers.total_tail_secs);
        hash_outcomes(&mut h, &report.outcomes);
        pin("disagg-stream".into(), h);
    }

    // Elastic autoscaling fleet: spawn/drain decisions ride on engine
    // outcomes, so any drift shows up in the scaling event stream.
    {
        let n = 400;
        let requests = datasets::short_chat(n, 51);
        let arrivals: Vec<SimTime> = (0..n)
            .map(|i| SimTime::from_millis(12 * i as u64))
            .collect();
        let autoscale = AutoscaleConfig::bounded(1, 3)
            .interval(SimDuration::from_secs(10))
            .warmup(SimDuration::from_secs(15))
            .predictor(PredictorKind::holt())
            .initial_lengths(160.0, 224.0);
        let report = ElasticCluster::new(base(51, 8_000).build(), autoscale, 1)
            .run(requests, arrivals)
            .expect("elastic run");
        let mut h = Fnv::new();
        hash_goodput(&mut h, &report.goodput);
        h.word(report.makespan.as_micros());
        h.word(report.unrouted as u64);
        h.word(report.events.len() as u64);
        h.word(report.instances.len() as u64);
        for inst in &report.instances {
            h.word(inst.routed as u64);
            hash_sim_report(&mut h, &inst.report);
        }
        pin("elastic-holt".into(), h);
    }

    // Every remaining router-policy variant gets its own pinned scenario
    // (the pf-lint X1 rule enforces that no `RouterPolicy`,
    // `TransferMode`, or `QueueOrder` variant ships un-goldened). The
    // multi-turn workload repeats session prefixes so `PrefixAffinity`
    // routing has real overlap to chase, and the queue order is the
    // spelled-out form of `QueueOrder::least_slack()`.
    for (label, policy) in [
        ("cluster-round-robin", RouterPolicy::RoundRobin),
        ("cluster-least-outstanding", RouterPolicy::LeastOutstanding),
        ("cluster-least-used-memory", RouterPolicy::LeastUsedMemory),
        (
            "cluster-prefix-affinity",
            RouterPolicy::PrefixAffinity {
                load_tiebreak: true,
            },
        ),
    ] {
        let requests = datasets::multi_turn_chat(300, 71);
        let arrivals = PoissonArrivals::new(50.0).assign(&mut seeded(71), 300);
        let report = ClusterSimulation::new(
            base(71, 6_000)
                .prefix_cache(0.2)
                .queue_order(QueueOrder::LeastSlackFirst {
                    aging_cap: SimDuration::from_secs(30),
                })
                .build(),
            3,
            policy,
        )
        .run(requests, arrivals)
        .expect("router-policy run");
        let mut h = Fnv::new();
        for (routed, r) in report.routed_per_instance.iter().zip(&report.instances) {
            h.word(*routed as u64);
            hash_sim_report(&mut h, r);
        }
        pin(label.into(), h);
    }

    // Both transfer modes are exercised by the disagg scenarios above
    // (`disagg-fifo`/`disagg-slack`/`disagg-kv-overlap` ride the default
    // atomic NVLink spec, `disagg-stream` the layer-streamed one); spell
    // the variants out so the golden-coverage rule can see them pinned.
    assert_eq!(KvTransferSpec::nvlink().mode, TransferMode::Atomic);
    assert_eq!(
        KvTransferSpec::new(10.0, SimDuration::from_micros(200), 2)
            .streamed()
            .mode,
        TransferMode::LayerStreamed
    );

    out
}

#[test]
fn reports_are_bit_identical_to_goldens() {
    let current = fingerprints();
    let rendered: String = current
        .iter()
        .map(|(label, fp)| format!("{label} {fp:#018x}\n"))
        .collect();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, rendered).expect("write goldens");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("missing golden file — run with UPDATE_GOLDEN=1 to generate");
    let mut failures = Vec::new();
    let mut golden_lines = 0usize;
    for line in golden.lines() {
        let mut parts = line.split_whitespace();
        let (Some(label), Some(fp)) = (parts.next(), parts.next()) else {
            continue;
        };
        golden_lines += 1;
        let fp = u64::from_str_radix(fp.trim_start_matches("0x"), 16).expect("golden hex");
        match current.iter().find(|(l, _)| l == label) {
            Some((_, got)) if *got == fp => {}
            Some((_, got)) => failures.push(format!("{label}: {got:#018x} != golden {fp:#018x}")),
            None => failures.push(format!("{label}: scenario missing from current run")),
        }
    }
    assert_eq!(
        golden_lines,
        current.len(),
        "scenario count changed — regenerate goldens deliberately"
    );
    assert!(
        failures.is_empty(),
        "report fingerprints drifted from the pre-rework engines:\n{}",
        failures.join("\n")
    );
}
