//! Golden regression tests pinning the headline benchmark results behind
//! tolerance bands, so future refactors cannot silently shift them:
//!
//! * Table 1's memory-utilization ordering across scheduler families on
//!   the decode-heavy Distribution-1 (aggressive overcommits future
//!   memory past capacity, Past-Future tracks it near 100%, conservative
//!   underutilizes and never evicts);
//! * the elastic-autoscaling headline (GPU-seconds saving band at a
//!   bounded SLA gap versus the static-max fleet on the diurnal scenario);
//! * the disaggregation headline (a matched-GPU prefill/decode split
//!   keeps TTFT-SLA attainment at least colocated's on prefill-heavy
//!   load).
//!
//! Workload sizes are scaled down from the full bench runs to keep the
//! suite fast; the pinned bands were measured on these exact seeds.

use pf_autoscale::{AutoscaleConfig, PredictorKind};
use pf_bench::output_lengths;
use pf_core::SchedulerConfig;
use pf_metrics::SimDuration;
use pf_sim::disagg::{DisaggCluster, DisaggConfig};
use pf_sim::elastic::ElasticCluster;
use pf_sim::{GpuSpec, ModelSpec, SimConfig, SimReport, Simulation};
use pf_workload::{datasets, rng::seeded, PoissonArrivals, RateProfile};

/// One Table-1-style offline run on Distribution-1 (the `--quick` bench
/// size, so the pinned bands match `bench --bin table1 -- --quick`).
fn table1_run(scheduler: SchedulerConfig) -> SimReport {
    let n = 250;
    let requests = datasets::distribution_1(n, 1);
    let warmup = output_lengths(&datasets::distribution_1(1000, 777));
    let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(scheduler)
        .history_warmup(warmup)
        .record_series(false)
        .seed(20)
        .build();
    Simulation::offline(config, requests)
        .run()
        .expect("table1 run")
}

#[test]
fn table1_utilization_ordering_holds() {
    // Measured at these seeds (future-required / evicted): oracle 92.3% /
    // 0%, past-future(5%) 90.2% / 4.4%, aggressive(95%) 98.2% / 33.6%,
    // conservative 59.4% / 0%.
    let oracle = table1_run(SchedulerConfig::Oracle);
    let pf = table1_run(SchedulerConfig::past_future_reserved(0.05));
    let aggressive = table1_run(SchedulerConfig::aggressive(0.95));
    let conservative = table1_run(SchedulerConfig::conservative());

    // The paper's ordering on memory pressure: aggressive admission runs
    // the closest to (and during overload beyond) capacity, Past-Future
    // tracks the oracle just below it, conservative reservation leaves
    // almost half the memory idle.
    assert!(
        aggressive.avg_future_required_frac > pf.avg_future_required_frac + 0.03,
        "aggressive future-required {:.3} vs past-future {:.3}",
        aggressive.avg_future_required_frac,
        pf.avg_future_required_frac
    );
    assert!(
        conservative.avg_future_required_frac < 0.70,
        "conservative future-required {:.3} should stay under 70%",
        conservative.avg_future_required_frac
    );
    assert!(
        conservative.avg_consumed_frac < pf.avg_consumed_frac,
        "conservative consumed {:.3} should undercut past-future {:.3}",
        conservative.avg_consumed_frac,
        pf.avg_consumed_frac
    );
    for (name, report) in [("oracle", &oracle), ("past-future", &pf)] {
        assert!(
            (0.85..=0.97).contains(&report.avg_future_required_frac),
            "{name} future-required {:.3} left the golden band [0.85, 0.97]",
            report.avg_future_required_frac
        );
    }

    // Eviction ordering: overcommit pays in evictions, reservation never
    // evicts, Past-Future sits close to the oracle's zero.
    assert_eq!(conservative.evictions, 0);
    assert_eq!(oracle.evictions, 0);
    assert!(aggressive.evictions > 0);
    assert!(
        pf.evictions * 5 <= aggressive.evictions,
        "past-future evictions {} vs aggressive {}",
        pf.evictions,
        aggressive.evictions
    );

    // Batching density: conservative's tiny batches need far more decode
    // steps for the same work.
    assert!(
        conservative.decode_steps > pf.decode_steps,
        "conservative decode steps {} vs past-future {}",
        conservative.decode_steps,
        pf.decode_steps
    );
}

#[test]
fn autoscale_gpu_seconds_saving_band_holds() {
    let n = 700;
    let requests = datasets::short_chat(n, 42);
    let arrivals =
        RateProfile::diurnal(2.0, 12.0, SimDuration::from_secs(180)).assign(&mut seeded(43), n);
    let base = || {
        SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
            .scheduler(SchedulerConfig::past_future())
            .capacity_override(6_000)
            .record_series(false)
            .seed(41)
            .build()
    };
    let autoscale = |min: usize, max: usize| {
        AutoscaleConfig::bounded(min, max)
            .interval(SimDuration::from_secs(10))
            .warmup(SimDuration::from_secs(20))
            .predictor(PredictorKind::holt())
            .initial_lengths(160.0, 224.0)
    };
    let static_max = ElasticCluster::new(base(), autoscale(4, 4), 4)
        .run(requests.clone(), arrivals.clone())
        .expect("static run");
    let elastic = ElasticCluster::new(base(), autoscale(1, 4), 1)
        .run(requests, arrivals)
        .expect("elastic run");

    let gap = static_max.sla_attainment() - elastic.sla_attainment();
    assert!(
        gap <= 0.05,
        "elastic SLA {:.3} trails static-max {:.3} by more than 5 points",
        elastic.sla_attainment(),
        static_max.sla_attainment()
    );
    let saving = 1.0 - elastic.gpu_seconds() / static_max.gpu_seconds();
    assert!(
        (0.25..=0.65).contains(&saving),
        "GPU-seconds saving {saving:.3} left the golden band [0.25, 0.65] \
         (elastic {:.0}, static-max {:.0})",
        elastic.gpu_seconds(),
        static_max.gpu_seconds()
    );
}

#[test]
fn disagg_ttft_headline_holds() {
    let n = 900;
    let requests = datasets::prefill_heavy(n, 51);
    let arrivals = PoissonArrivals::new(12.0).assign(&mut seeded(52), n);
    let base = || {
        SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
            .scheduler(SchedulerConfig::past_future())
            .capacity_override(9_000)
            .record_series(false)
            .seed(31)
            .build()
    };
    let coloc_autoscale = AutoscaleConfig::bounded(4, 4)
        .interval(SimDuration::from_secs(10))
        .warmup(SimDuration::from_secs(20));
    let coloc = ElasticCluster::new(base(), coloc_autoscale, 4)
        .run(requests.clone(), arrivals.clone())
        .expect("colocated run");
    let split = DisaggCluster::new(DisaggConfig::new(base()), 2, 2)
        .run(requests, arrivals)
        .expect("disagg run");

    assert!(
        split.ttft_attainment() >= coloc.goodput.ttft_attainment(),
        "disagg TTFT attainment {:.3} fell below colocated {:.3}",
        split.ttft_attainment(),
        coloc.goodput.ttft_attainment()
    );
    assert!(
        split.goodput.ttft_secs.p99 <= coloc.goodput.ttft_secs.p99,
        "disagg TTFT p99 {:.2}s exceeds colocated {:.2}s",
        split.goodput.ttft_secs.p99,
        coloc.goodput.ttft_secs.p99
    );
    // Matched provisioning: the split spends the same GPU-seconds within
    // a 2% tolerance.
    assert!(
        split.gpu_seconds() <= coloc.gpu_seconds() * 1.02,
        "disagg {:.0} GPU-s vs colocated {:.0}",
        split.gpu_seconds(),
        coloc.gpu_seconds()
    );
}

#[test]
fn headline_values_snapshot() {
    // Loose snapshot of the Table-1 Past-Future row itself (decode steps
    // and consumed memory move with any engine change; the band is ±10%
    // of the values measured at these seeds).
    let pf = table1_run(SchedulerConfig::past_future_reserved(0.05));
    assert_eq!(pf.completed, 250);
    let consumed = pf.avg_consumed_frac;
    assert!(
        (0.80..=0.95).contains(&consumed),
        "past-future consumed memory {consumed:.3} left its golden band [0.80, 0.95]"
    );
    assert!(
        pf.evicted_request_pct() <= 8.0,
        "past-future evicted {:.2}% of requests (golden bound 8%)",
        pf.evicted_request_pct()
    );
}
