//! Allocator hot-path costs: allocate/extend/release cycles for the three
//! KV-cache managers (the engine extends every running request once per
//! decode step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pf_kvcache::{ContiguousPool, KvCacheManager, PagedPool, TokenPool};

fn cycle<M: KvCacheManager>(pool: &mut M, n: u64) {
    for id in 0..n {
        pool.allocate(id, 256, 512).unwrap();
    }
    for _ in 0..8 {
        for id in 0..n {
            pool.extend(id, 1).unwrap();
        }
    }
    for id in 0..n {
        pool.release(id);
    }
}

fn bench_pools(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvcache");
    for &n in &[16u64, 64, 256] {
        group.bench_with_input(BenchmarkId::new("token_pool", n), &n, |b, &n| {
            let mut pool = TokenPool::new(1_000_000);
            b.iter(|| cycle(&mut pool, n));
        });
        group.bench_with_input(BenchmarkId::new("paged_16", n), &n, |b, &n| {
            let mut pool = PagedPool::new(1_000_000, 16);
            b.iter(|| cycle(&mut pool, n));
        });
        group.bench_with_input(BenchmarkId::new("contiguous", n), &n, |b, &n| {
            let mut pool = ContiguousPool::new(1_000_000);
            b.iter(|| cycle(&mut pool, n));
        });
    }
    // The per-step shortfall probe the engine runs before every decode.
    let mut pool = TokenPool::new(1_000_000);
    let ids: Vec<u64> = (0..256).collect();
    for &id in &ids {
        pool.allocate(id, 256, 512).unwrap();
    }
    group.bench_function("extension_shortfall_256", |b| {
        b.iter(|| pool.extension_shortfall(&ids));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pools
}
criterion_main!(benches);
