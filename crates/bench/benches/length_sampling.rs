//! Sampling cost of the output-length machinery: building P(l) from the
//! history window and drawing unconditional/conditional samples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pf_core::{OutputLengthDistribution, OutputLengthHistory};
use pf_workload::LengthSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_distribution(c: &mut Criterion) {
    let mut group = c.benchmark_group("length_distribution");
    for &window in &[100usize, 1000, 5000] {
        let mut history = OutputLengthHistory::new(window);
        let sampler = LengthSampler::log_normal_median(1750.0, 0.65, 64, 8192);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..window {
            history.record(sampler.sample(&mut rng));
        }
        group.bench_with_input(BenchmarkId::new("build", window), &history, |b, h| {
            b.iter(|| h.distribution().unwrap());
        });
        let dist: OutputLengthDistribution = history.distribution().unwrap();
        group.bench_with_input(BenchmarkId::new("sample", window), &dist, |b, d| {
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| d.sample(&mut rng));
        });
        group.bench_with_input(
            BenchmarkId::new("sample_conditional", window),
            &dist,
            |b, d| {
                let mut rng = StdRng::seed_from_u64(5);
                b.iter(|| d.sample_greater_than(&mut rng, 1024));
            },
        );
    }
    group.finish();
}

fn bench_workload_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_sampler");
    let samplers = [
        ("uniform", LengthSampler::uniform(32, 4096)),
        (
            "log_normal",
            LengthSampler::log_normal_median(250.0, 0.9, 4, 2048),
        ),
        (
            "mixture",
            LengthSampler::mixture(vec![
                (0.6, LengthSampler::uniform(1, 64)),
                (0.4, LengthSampler::log_normal_median(800.0, 0.5, 64, 8192)),
            ]),
        ),
    ];
    for (name, sampler) in samplers {
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(6);
            b.iter(|| sampler.sample(&mut rng));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_distribution, bench_workload_samplers
}
criterion_main!(benches);
