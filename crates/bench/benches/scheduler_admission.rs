//! Admission-decision latency of each scheduler at several batch/queue
//! scales — the paper claims the Past-Future scheduler costs <1% of model
//! inference time (a 7B decode step is ~10-50 ms, so admission must stay
//! well under 100 us).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pf_core::{MemoryState, QueuedRequest, RunningRequest, SchedulerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn make_state(batch: usize, queue: usize, seed: u64) -> (Vec<RunningRequest>, Vec<QueuedRequest>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let running = (0..batch)
        .map(|i| RunningRequest {
            id: i as u64,
            input_len: rng.gen_range(32..4096),
            generated: rng.gen_range(0..2048),
            max_new_tokens: 4096,
            oracle_remaining: Some(rng.gen_range(1..2048)),
        })
        .collect();
    let queued = (0..queue)
        .map(|i| QueuedRequest {
            id: (batch + i) as u64,
            input_len: rng.gen_range(32..4096),
            generated: 0,
            max_new_tokens: 4096,
            oracle_remaining: Some(rng.gen_range(1..4096)),
        })
        .collect();
    (running, queued)
}

fn bench_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("admission");
    for &(batch, queue) in &[(16usize, 16usize), (64, 64), (256, 64)] {
        let (running, queued) = make_state(batch, queue, 1);
        let memory = MemoryState {
            capacity_tokens: 125_000,
            used_tokens: running.iter().map(|r| r.committed()).sum(),
        };
        for config in [
            SchedulerConfig::past_future(),
            SchedulerConfig::aggressive(0.99),
            SchedulerConfig::conservative(),
            SchedulerConfig::Oracle,
        ] {
            let mut scheduler = config.build(7);
            // Warm the history so Past-Future pays its real sampling cost.
            for len in 1..=1000u32 {
                scheduler.on_request_finished(len * 4 % 4096 + 1);
            }
            group.bench_with_input(
                BenchmarkId::new(config.to_string(), format!("b{batch}_q{queue}")),
                &(running.clone(), queued.clone()),
                |b, (running, queued)| {
                    b.iter(|| scheduler.plan_admission(running, queued, &memory));
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_admission
}
criterion_main!(benches);
