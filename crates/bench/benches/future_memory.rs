//! Cost of the future-required-memory computation (Eq. 2-4) at realistic
//! batch sizes — invoked once per admission candidate per scheduling step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pf_core::{BatchEntry, FutureMemoryEstimator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn entries(n: usize, seed: u64) -> Vec<BatchEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| BatchEntry {
            committed: rng.gen_range(64..8192),
            remaining: rng.gen_range(0..4096),
        })
        .collect()
}

fn bench_peak(c: &mut Criterion) {
    let mut group = c.benchmark_group("future_memory");
    for &n in &[8usize, 32, 128, 512] {
        let batch = entries(n, 1);
        group.bench_with_input(BenchmarkId::new("peak_memory", n), &batch, |b, batch| {
            b.iter(|| FutureMemoryEstimator::peak_memory(batch));
        });
        let mut sorted = batch.clone();
        sorted.sort_unstable_by_key(|e| std::cmp::Reverse(e.remaining));
        group.bench_with_input(BenchmarkId::new("peak_sorted", n), &sorted, |b, sorted| {
            b.iter(|| FutureMemoryEstimator::peak_memory_sorted(sorted));
        });
        group.bench_with_input(BenchmarkId::new("profile", n), &batch, |b, batch| {
            b.iter(|| FutureMemoryEstimator::memory_profile(batch));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_peak
}
criterion_main!(benches);
