//! Cost of the window-similarity machinery behind Figures 3/4: histogram
//! construction and cosine similarity over windowed traces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pf_metrics::{cosine_similarity, Binning, LengthHistogram, WindowedLengths};
use pf_workload::trace::{generate_output_lengths, TraceArchetype};

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    let lengths = generate_output_lengths(TraceArchetype::ApiService, 20_000, 9);
    group.bench_function("histogram_1000", |b| {
        b.iter(|| LengthHistogram::from_lengths(Binning::Log2, lengths[..1000].iter().copied()));
    });
    let h1 = LengthHistogram::from_lengths(Binning::Log2, lengths[..1000].iter().copied())
        .probabilities();
    let h2 = LengthHistogram::from_lengths(Binning::Log2, lengths[1000..2000].iter().copied())
        .probabilities();
    group.bench_function("cosine", |b| {
        b.iter(|| cosine_similarity(&h1, &h2));
    });
    for &n in &[5_000usize, 20_000] {
        group.bench_with_input(
            BenchmarkId::new("matrix", n),
            &lengths[..n],
            |b, lengths| {
                b.iter(|| {
                    WindowedLengths::partition(lengths, 1000, Binning::Log2).similarity_matrix()
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_similarity
}
criterion_main!(benches);
