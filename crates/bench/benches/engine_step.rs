//! End-to-end engine throughput: simulated decode steps per wall-clock
//! second for a small serving scenario under each scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pf_core::SchedulerConfig;
use pf_sim::{GpuSpec, ModelSpec, SimConfig, Simulation};
use pf_workload::datasets;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for config in [
        SchedulerConfig::past_future(),
        SchedulerConfig::aggressive(0.95),
        SchedulerConfig::conservative(),
        SchedulerConfig::Oracle,
    ] {
        let requests = datasets::sharegpt(96, 17);
        let warmup: Vec<u32> = datasets::sharegpt(500, 18)
            .iter()
            .map(|r| r.true_output_len)
            .collect();
        group.bench_with_input(
            BenchmarkId::new("offline_96_reqs", config.to_string()),
            &(config, requests, warmup),
            |b, (config, requests, warmup)| {
                b.iter(|| {
                    let sim_config =
                        SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
                            .scheduler(config.clone())
                            .history_warmup(warmup.clone())
                            .capacity_override(40_000)
                            .record_series(false)
                            .seed(19)
                            .build();
                    Simulation::offline(sim_config, requests.clone())
                        .run()
                        .unwrap()
                        .decode_steps
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_engine
}
criterion_main!(benches);
