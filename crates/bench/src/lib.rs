//! Shared harness for the experiment binaries (one per paper table/figure).
//!
//! Every binary:
//!
//! * accepts `--quick` (smaller workloads, for smoke runs) and
//!   `--out <dir>` (default `results/`);
//! * prints the table(s) to stdout;
//! * writes `results/<name>.csv` and `results/<name>.md`.
//!
//! See `DESIGN.md` §3 for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured numbers.

#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use pf_metrics::Table;
use pf_workload::RequestSpec;

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Reduced workload sizes for smoke runs.
    pub quick: bool,
    /// Output directory for CSV/markdown artifacts.
    pub out_dir: PathBuf,
}

/// Usage text printed on argument errors.
const USAGE: &str = "usage: <binary> [--quick] [--out <dir> | --out=<dir>]\n\
     --quick      reduced workload sizes for smoke runs\n\
     --out <dir>  output directory for CSV/markdown artifacts (default: results)";

impl Cli {
    /// Parses `--quick` and `--out <dir>` / `--out=<dir>` from
    /// `std::env::args`. Unknown or malformed arguments print the usage
    /// to stderr and exit with code 2 (the conventional CLI-misuse
    /// status), so a typo in a CI pipeline fails fast instead of
    /// panicking with a backtrace.
    pub fn parse() -> Cli {
        match Cli::try_parse(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Argument-parsing core, separated from process exit for testing.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown arguments or a
    /// missing `--out` value.
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
        let mut quick = false;
        let mut out_dir = PathBuf::from("results");
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => quick = true,
                "--out" => {
                    out_dir = PathBuf::from(
                        args.next()
                            .ok_or_else(|| "--out requires a directory argument".to_string())?,
                    );
                }
                other => match other.strip_prefix("--out=") {
                    Some(dir) if !dir.is_empty() => out_dir = PathBuf::from(dir),
                    Some(_) => return Err("--out= requires a directory argument".to_string()),
                    None => return Err(format!("unknown argument: {other}")),
                },
            }
        }
        Ok(Cli { quick, out_dir })
    }

    /// Picks between the full and quick size of a workload parameter.
    pub fn size(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Writes a table as `<name>.csv` and `<name>.md` under the output
    /// directory and prints it to stdout with a heading.
    ///
    /// # Panics
    ///
    /// Panics if the output directory cannot be created or written.
    pub fn emit(&self, name: &str, title: &str, table: &Table) {
        println!("== {title} ==");
        println!("{}", table.to_text());
        write_artifacts(&self.out_dir, name, table);
        println!("[wrote {}/{name}.csv and .md]\n", self.out_dir.display());
    }
}

/// Writes `<name>.csv` and `<name>.md` for a table.
///
/// # Panics
///
/// Panics on I/O errors — experiment binaries want loud failures.
pub fn write_artifacts(dir: &Path, name: &str, table: &Table) {
    std::fs::create_dir_all(dir).expect("create results directory");
    std::fs::write(dir.join(format!("{name}.csv")), table.to_csv()).expect("write csv");
    std::fs::write(dir.join(format!("{name}.md")), table.to_markdown()).expect("write md");
}

/// Ground-truth output lengths of a request set (history warmup material).
pub fn output_lengths(requests: &[RequestSpec]) -> Vec<u32> {
    requests.iter().map(|r| r.true_output_len).collect()
}

/// Runs jobs on up to `threads` workers and returns results in job order.
///
/// The closures must be `Send`; results are collected positionally so the
/// output is deterministic regardless of scheduling.
pub fn run_parallel<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let threads = threads.max(1);
    let n = jobs.len();
    let work: Mutex<Vec<Option<F>>> = Mutex::new(jobs.into_iter().map(Some).collect());
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let job = {
                    let mut work = work.lock().expect("work lock");
                    let next = work.iter().position(|j| j.is_some());
                    match next {
                        Some(i) => (i, work[i].take().expect("checked")),
                        None => return,
                    }
                };
                let (i, f) = job;
                let out = f();
                results.lock().expect("results lock")[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|r| r.expect("job completed"))
        .collect()
}

/// Default worker count: available parallelism minus one, at least 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(4)
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(frac: f64) -> String {
    format!("{:.2}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = run_parallel(jobs, 4);
        assert_eq!(out, (0..32usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_handles_empty_and_single_thread() {
        let empty: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![];
        assert!(run_parallel(empty, 8).is_empty());
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![Box::new(|| 7), Box::new(|| 9)];
        assert_eq!(run_parallel(jobs, 1), vec![7, 9]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.12345), "12.35%");
    }

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn cli_parses_flags_and_both_out_forms() {
        let cli = parse(&[]).unwrap();
        assert!(!cli.quick);
        assert_eq!(cli.out_dir, PathBuf::from("results"));
        let cli = parse(&["--quick", "--out", "artifacts"]).unwrap();
        assert!(cli.quick);
        assert_eq!(cli.out_dir, PathBuf::from("artifacts"));
        let cli = parse(&["--out=elsewhere"]).unwrap();
        assert_eq!(cli.out_dir, PathBuf::from("elsewhere"));
    }

    #[test]
    fn cli_rejects_bad_arguments_with_messages() {
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("unknown argument: --frobnicate"));
        assert!(parse(&["--out"]).unwrap_err().contains("--out requires"));
        assert!(parse(&["--out="]).unwrap_err().contains("--out= requires"));
    }

    #[test]
    fn output_lengths_extracts_truth() {
        let reqs = pf_workload::datasets::distribution_1(5, 1);
        let lens = output_lengths(&reqs);
        assert_eq!(lens.len(), 5);
        assert!(lens.iter().all(|&l| (2048..=4096).contains(&l)));
    }
}
