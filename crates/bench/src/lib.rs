//! Shared harness for the experiment binaries (one per paper table/figure).
//!
//! Every binary:
//!
//! * accepts `--quick` (smaller workloads, for smoke runs) and
//!   `--out <dir>` (default `results/`);
//! * prints the table(s) to stdout;
//! * writes `results/<name>.csv` and `results/<name>.md`.
//!
//! See `DESIGN.md` §3 for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured numbers.

#![warn(missing_docs)]

pub mod cli;
pub mod sweep;
pub mod timing;

pub use cli::Cli;

use std::path::Path;
use std::sync::Mutex;

use pf_metrics::Table;
use pf_workload::RequestSpec;

/// Writes `<name>.csv` and `<name>.md` for a table.
///
/// # Panics
///
/// Panics on I/O errors — experiment binaries want loud failures.
pub fn write_artifacts(dir: &Path, name: &str, table: &Table) {
    std::fs::create_dir_all(dir).expect("create results directory");
    std::fs::write(dir.join(format!("{name}.csv")), table.to_csv()).expect("write csv");
    std::fs::write(dir.join(format!("{name}.md")), table.to_markdown()).expect("write md");
}

/// Ground-truth output lengths of a request set (history warmup material).
pub fn output_lengths(requests: &[RequestSpec]) -> Vec<u32> {
    requests.iter().map(|r| r.true_output_len).collect()
}

/// Runs jobs on up to `threads` workers and returns results in job order.
///
/// The closures must be `Send`; results are collected positionally so the
/// output is deterministic regardless of scheduling.
pub fn run_parallel<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let threads = threads.max(1);
    let n = jobs.len();
    let work: Mutex<Vec<Option<F>>> = Mutex::new(jobs.into_iter().map(Some).collect());
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let job = {
                    let mut work = work.lock().expect("work lock");
                    let next = work.iter().position(|j| j.is_some());
                    match next {
                        Some(i) => (i, work[i].take().expect("checked")),
                        None => return,
                    }
                };
                let (i, f) = job;
                let out = f();
                results.lock().expect("results lock")[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|r| r.expect("job completed"))
        .collect()
}

/// Default worker count: available parallelism minus one, at least 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(4)
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(frac: f64) -> String {
    format!("{:.2}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = run_parallel(jobs, 4);
        assert_eq!(out, (0..32usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_handles_empty_and_single_thread() {
        let empty: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![];
        assert!(run_parallel(empty, 8).is_empty());
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![Box::new(|| 7), Box::new(|| 9)];
        assert_eq!(run_parallel(jobs, 1), vec![7, 9]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.12345), "12.35%");
    }

    #[test]
    fn output_lengths_extracts_truth() {
        let reqs = pf_workload::datasets::distribution_1(5, 1);
        let lens = output_lengths(&reqs);
        assert_eq!(lens.len(), 5);
        assert!(lens.iter().all(|&l| (2048..=4096).contains(&l)));
    }
}
