//! Ad-hoc simulation driver: compose any model × GPU × scheduler ×
//! workload from the command line and print the full report.
//!
//! ```text
//! cargo run --release -p pf-bench --bin simulate -- \
//!     --model 7b --gpu a100 --scheduler past-future --param 0.05 \
//!     --dataset sharegpt-o1 --requests 300 --clients 48 --seed 7
//! ```
//!
//! Run with `--help` for the full option list.

use pf_bench::Cli;
use pf_core::SchedulerConfig;
use pf_metrics::{SimDuration, SlaSpec};
use pf_sim::{GpuSpec, ModelSpec, SimConfig, Simulation};
use pf_workload::{datasets, ClosedLoopClients, RequestSpec};

const HELP: &str = "\
simulate — run one serving simulation and print the report

OPTIONS:
  --model <7b|13b|70b|qwen-vl|llava-7b|llava-13b>   model preset      [7b]
  --gpu <a100|h800|4090|a30>                        GPU preset        [a100]
  --tp <N>                                          tensor parallel   [1]
  --scheduler <past-future|aggressive|conservative|oracle>            [past-future]
  --param <float>       reserved frac / watermark / overcommit for the
                        chosen scheduler                              [policy default]
  --dataset <d1|d2|d3|sharegpt|sharegpt-o1|textvqa-qwen|textvqa-llava|mixed>
                                                                      [sharegpt-o1]
  --requests <N>        workload size                                 [200]
  --clients <N>         closed-loop clients; 0 = offline              [32]
  --capacity <tokens>   override the computed KV capacity
  --ttft <secs>         SLA: max time to first token                  [10]
  --mtpot <secs>        SLA: max inter-token gap                      [1.5]
  --warmup <N>          history warmup samples from the same dataset  [1000]
  --seed <N>            RNG seed                                      [0]
  --quick               quarter the workload for smoke runs
  --help                print this message
";

/// The value-taking flags simulate adds on top of the shared CLI.
const VALUE_FLAGS: &[&str] = &[
    "--model",
    "--gpu",
    "--tp",
    "--scheduler",
    "--param",
    "--dataset",
    "--requests",
    "--clients",
    "--capacity",
    "--ttft",
    "--mtpot",
    "--warmup",
    "--seed",
];

#[derive(Debug)]
struct Options {
    model: ModelSpec,
    gpu: GpuSpec,
    tp: u32,
    scheduler: String,
    param: Option<f64>,
    dataset: String,
    requests: usize,
    clients: usize,
    capacity: Option<u64>,
    ttft: f64,
    mtpot: f64,
    warmup: usize,
    seed: u64,
}

fn parse_model(name: &str) -> ModelSpec {
    match name {
        "7b" => ModelSpec::llama2_7b(),
        "13b" => ModelSpec::llama2_13b(),
        "70b" => ModelSpec::llama2_70b(),
        "qwen-vl" => ModelSpec::qwen_vl_chat(),
        "llava-7b" => ModelSpec::llava_15_7b(),
        "llava-13b" => ModelSpec::llava_15_13b(),
        other => die(&format!("unknown model '{other}'")),
    }
}

fn parse_gpu(name: &str) -> GpuSpec {
    match name {
        "a100" => GpuSpec::a100_80g(),
        "h800" => GpuSpec::h800(),
        "4090" => GpuSpec::rtx_4090(),
        "a30" => GpuSpec::a30(),
        other => die(&format!("unknown gpu '{other}'")),
    }
}

fn dataset_builder(name: &str) -> fn(usize, u64) -> Vec<RequestSpec> {
    match name {
        "d1" => datasets::distribution_1,
        "d2" => datasets::distribution_2,
        "d3" => datasets::distribution_3,
        "sharegpt" => datasets::sharegpt,
        "sharegpt-o1" => datasets::sharegpt_o1,
        "textvqa-qwen" => datasets::textvqa_qwen_vl,
        "textvqa-llava" => datasets::textvqa_llava,
        "mixed" => |n, seed| datasets::mixed_phase(n / 4 + 1, seed),
        other => die(&format!("unknown dataset '{other}'")),
    }
}

fn scheduler_config(name: &str, param: Option<f64>) -> SchedulerConfig {
    match name {
        "past-future" => SchedulerConfig::past_future_reserved(param.unwrap_or(0.05)),
        "aggressive" => SchedulerConfig::aggressive(param.unwrap_or(0.99)),
        "conservative" => SchedulerConfig::conservative_overcommit(param.unwrap_or(1.0)),
        "oracle" => SchedulerConfig::Oracle,
        other => die(&format!("unknown scheduler '{other}'")),
    }
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}\n\n{HELP}");
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut options = Options {
        model: ModelSpec::llama2_7b(),
        gpu: GpuSpec::a100_80g(),
        tp: 1,
        scheduler: "past-future".to_string(),
        param: None,
        dataset: "sharegpt-o1".to_string(),
        requests: 200,
        clients: 32,
        capacity: None,
        ttft: 10.0,
        mtpot: 1.5,
        warmup: 1000,
        seed: 0,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        std::process::exit(0);
    }
    let (cli, extra) = match Cli::try_parse_extra(args, VALUE_FLAGS) {
        Ok(parsed) => parsed,
        Err(message) => die(&message),
    };
    for (flag, value) in extra {
        match flag.as_str() {
            "--model" => options.model = parse_model(&value),
            "--gpu" => options.gpu = parse_gpu(&value),
            "--tp" => options.tp = value.parse().unwrap_or_else(|_| die("bad --tp")),
            "--scheduler" => options.scheduler = value,
            "--param" => {
                options.param = Some(value.parse().unwrap_or_else(|_| die("bad --param")));
            }
            "--dataset" => options.dataset = value,
            "--requests" => {
                options.requests = value.parse().unwrap_or_else(|_| die("bad --requests"));
            }
            "--clients" => {
                options.clients = value.parse().unwrap_or_else(|_| die("bad --clients"));
            }
            "--capacity" => {
                options.capacity = Some(value.parse().unwrap_or_else(|_| die("bad --capacity")));
            }
            "--ttft" => options.ttft = value.parse().unwrap_or_else(|_| die("bad --ttft")),
            "--mtpot" => options.mtpot = value.parse().unwrap_or_else(|_| die("bad --mtpot")),
            "--warmup" => {
                options.warmup = value.parse().unwrap_or_else(|_| die("bad --warmup"));
            }
            "--seed" => options.seed = value.parse().unwrap_or_else(|_| die("bad --seed")),
            _ => unreachable!("flags outside VALUE_FLAGS are rejected by the parser"),
        }
    }
    options.requests = cli.size(options.requests, (options.requests / 4).max(1));
    options
}

fn main() {
    let options = parse_args();
    let builder = dataset_builder(&options.dataset);
    let requests = builder(options.requests, options.seed.wrapping_add(1));
    let warmup: Vec<u32> = builder(options.warmup.max(1), options.seed.wrapping_add(2))
        .iter()
        .map(|r| r.true_output_len)
        .collect();

    let mut config_builder = SimConfig::builder(options.model, options.gpu)
        .tensor_parallel(options.tp)
        .scheduler(scheduler_config(&options.scheduler, options.param))
        .sla(SlaSpec::new(
            SimDuration::from_secs_f64(options.ttft),
            SimDuration::from_secs_f64(options.mtpot),
        ))
        .history_warmup(warmup)
        .record_series(false)
        .seed(options.seed);
    if let Some(capacity) = options.capacity {
        config_builder = config_builder.capacity_override(capacity);
    }
    let config = config_builder.build();

    println!(
        "deployment: {} on {} x{} — KV capacity {} tokens",
        config.model.name,
        config.gpu.name,
        config.tensor_parallel,
        config.capacity_tokens()
    );
    println!(
        "workload:   {} x {} ({}), SLA: TTFT<{}s MTPOT<{}s",
        options.requests,
        options.dataset,
        if options.clients == 0 {
            "offline".to_string()
        } else {
            format!("{} closed-loop clients", options.clients)
        },
        options.ttft,
        options.mtpot
    );

    let simulation = if options.clients == 0 {
        Simulation::offline(config, requests)
    } else {
        Simulation::closed_loop(config, requests, ClosedLoopClients::new(options.clients))
    };
    match simulation.run() {
        Ok(report) => {
            println!("\n{}", report.summary_line());
            println!(
                "  makespan {:.1}s | prefill steps {} | peak mem {:.1}%",
                report.makespan.as_secs_f64(),
                report.prefill_steps,
                report.peak_consumed_frac * 100.0
            );
            println!(
                "  TTFT  p50 {:.2}s p99 {:.2}s | MTPOT p50 {:.2}s p99 {:.2}s",
                report.goodput.ttft_secs.p50,
                report.goodput.ttft_secs.p99,
                report.goodput.mtpot_secs.p50,
                report.goodput.mtpot_secs.p99
            );
            println!(
                "  violations: ttft {} | mtpot {} | none {}",
                report.goodput.violations.ttft,
                report.goodput.violations.mtpot,
                report.goodput.satisfied_requests
            );
        }
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    }
}
