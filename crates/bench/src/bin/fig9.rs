//! Figure 9: maximum throughput (dashed) and SLA goodput (solid) of five
//! serving frameworks across hardware platforms, on ShareGPT with
//! `max_new_tokens = 2048`.
//!
//! ```text
//! cargo run --release -p pf-bench --bin fig9 [-- --quick]
//! ```

use pf_bench::{default_threads, output_lengths, run_parallel, Cli};
use pf_frameworks::Framework;
use pf_metrics::{Align, SlaSpec, Table};
use pf_sim::{GpuSpec, ModelSpec, SimReport, Simulation};
use pf_workload::{datasets, ClosedLoopClients};

struct Case {
    model: &'static str,
    hardware: String,
    framework: &'static str,
    report: SimReport,
}

fn main() {
    let cli = Cli::parse();
    type Fleet = Vec<(GpuSpec, u32)>;
    let deployments: [(&'static str, ModelSpec, SlaSpec, Fleet); 3] = [
        (
            "Llama2-7B",
            ModelSpec::llama2_7b(),
            SlaSpec::chat_7b(),
            vec![
                (GpuSpec::a100_80g(), 1),
                (GpuSpec::h800(), 1),
                (GpuSpec::rtx_4090(), 1),
                (GpuSpec::a30(), 1),
            ],
        ),
        (
            "Llama2-13B",
            ModelSpec::llama2_13b(),
            SlaSpec::chat_7b(),
            vec![
                (GpuSpec::a100_80g(), 1),
                (GpuSpec::h800(), 1),
                (GpuSpec::rtx_4090(), 2),
                (GpuSpec::a30(), 2),
            ],
        ),
        (
            "Llama2-70B",
            ModelSpec::llama2_70b(),
            SlaSpec::chat_70b(),
            vec![
                (GpuSpec::a100_80g(), 4),
                (GpuSpec::h800(), 4),
                (GpuSpec::rtx_4090(), 8),
            ],
        ),
    ];

    let mut jobs: Vec<Box<dyn FnOnce() -> Case + Send>> = Vec::new();
    for (model_name, model, sla, hardware_list) in deployments {
        for (gpu, tp) in hardware_list {
            for framework in Framework::FIGURE9 {
                let warmup = output_lengths(&datasets::sharegpt(1000, 666));
                jobs.push(Box::new(move || {
                    let config = framework
                        .config(model, gpu, tp)
                        .sla(sla)
                        .history_warmup(warmup)
                        .record_series(false)
                        .seed(60)
                        .build();
                    // Load the deployment to ~1.5x its concurrent capacity
                    // so throughput saturates and SLA pressure appears.
                    let capacity = config.capacity_tokens();
                    let avg_footprint = 950u64; // ShareGPT mean input+output
                    let clients = ((capacity / avg_footprint) * 3 / 2).clamp(8, 256) as usize;
                    let n_requests = (clients * 4).clamp(120, 1000);
                    let requests = datasets::sharegpt(n_requests, 5);
                    let report =
                        Simulation::closed_loop(config, requests, ClosedLoopClients::new(clients))
                            .run()
                            .expect("fig9 simulation");
                    Case {
                        model: model_name,
                        hardware: if tp > 1 {
                            format!("{} x{}", gpu.name, tp)
                        } else {
                            gpu.name.to_string()
                        },
                        framework: framework.name(),
                        report,
                    }
                }));
            }
        }
    }

    let cases = run_parallel(jobs, default_threads());
    let mut table = Table::new([
        "model",
        "hardware",
        "framework",
        "throughput tok/s",
        "goodput tok/s",
        "SLA-ok %",
        "evicted %",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for case in &cases {
        table.row([
            case.model.to_string(),
            case.hardware.clone(),
            case.framework.to_string(),
            format!("{:.0}", case.report.throughput()),
            format!("{:.0}", case.report.goodput_tok_per_s()),
            format!("{:.0}", case.report.goodput.satisfied_fraction() * 100.0),
            format!("{:.1}", case.report.evicted_request_pct()),
        ]);
    }
    cli.emit(
        "fig9",
        "Figure 9: throughput and goodput per framework across hardware (ShareGPT, max_new=2048)",
        &table,
    );
}
