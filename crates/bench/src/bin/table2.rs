//! Table 2: multimodal serving throughput — original (static-batching)
//! implementations vs. LightLLM with the Past-Future scheduler, on a
//! TextVQA-like workload.
//!
//! ```text
//! cargo run --release -p pf-bench --bin table2 [-- --quick]
//! ```

use pf_bench::{default_threads, run_parallel, Cli};
use pf_frameworks::Framework;
use pf_metrics::{Align, Table};
use pf_sim::{GpuSpec, ModelSpec, SimReport, Simulation};
use pf_workload::{datasets, RequestSpec};

fn main() {
    let cli = Cli::parse();
    let n = cli.size(2000, 300);
    type DatasetFn = fn(usize, u64) -> Vec<RequestSpec>;
    let cases: [(&'static str, ModelSpec, DatasetFn); 3] = [
        (
            "Qwen-VL-Chat",
            ModelSpec::qwen_vl_chat(),
            datasets::textvqa_qwen_vl,
        ),
        (
            "Llava-1.5-7B",
            ModelSpec::llava_15_7b(),
            datasets::textvqa_llava,
        ),
        (
            "Llava-1.5-13B",
            ModelSpec::llava_15_13b(),
            datasets::textvqa_llava,
        ),
    ];

    type Job = Box<dyn FnOnce() -> (&'static str, SimReport, SimReport) + Send>;
    let mut jobs: Vec<Job> = Vec::new();
    for (name, model, dataset) in cases {
        jobs.push(Box::new(move || {
            let requests = dataset(n, 42);
            let origin = Framework::HfOriginal
                .config(model, GpuSpec::a100_80g(), 1)
                .record_series(false)
                .seed(1)
                .build();
            let origin_report = Simulation::offline(origin, requests.clone())
                .run()
                .expect("origin run");
            let lightllm = Framework::LightLlm
                .config(model, GpuSpec::a100_80g(), 1)
                .record_series(false)
                .seed(1)
                .build();
            let lightllm_report = Simulation::offline(lightllm, requests)
                .run()
                .expect("lightllm run");
            (name, origin_report, lightllm_report)
        }));
    }
    let results = run_parallel(jobs, default_threads());

    let mut table = Table::new([
        "Model",
        "Origin (tokens/s)",
        "LightLLM (tokens/s)",
        "speedup",
    ])
    .with_aligns(&[Align::Left, Align::Right, Align::Right, Align::Right]);
    for (name, origin, lightllm) in &results {
        table.row([
            name.to_string(),
            format!("{:.2}", origin.throughput()),
            format!("{:.2}", lightllm.throughput()),
            format!("{:.2}x", lightllm.throughput() / origin.throughput()),
        ]);
    }
    cli.emit(
        "table2",
        "Table 2: multimodal throughput, original implementation vs. LightLLM",
        &table,
    );
}
