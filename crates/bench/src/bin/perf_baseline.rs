//! Self-profiling perf baseline: wall-clock throughput of the simulator
//! itself (simulated requests/s and trace events/s) across the three
//! engine shapes, the tracing-overhead proof, and the `BENCH_core.json`
//! regression gate.
//!
//! ```text
//! perf_baseline [--quick] [--out <dir>] [--gate <committed BENCH_core.json>]
//! ```
//!
//! With `--gate`, current throughput must be at least 75% of every
//! scenario in the committed baseline or the process exits 1 — the CI
//! regression gate. The baseline numbers in the repo are set well below
//! any healthy machine's throughput so the gate only trips on real
//! regressions (an accidentally quadratic scheduler loop), not CI noise.

use pf_autoscale::{AutoscaleConfig, PredictorKind};
use pf_bench::timing::best_wall_secs;
use pf_bench::Cli;
use pf_core::SchedulerConfig;
use pf_metrics::{SimDuration, SimTime, Table};
use pf_obs::{CountingSink, TraceSink};
use pf_sim::cluster::{ClusterSimulation, RouterPolicy};
use pf_sim::disagg::{DisaggCluster, DisaggConfig};
use pf_sim::elastic::ElasticCluster;
use pf_sim::{GpuSpec, ModelSpec, SimConfig, Simulation};
use pf_workload::datasets;

/// Best-of-N wall-clock repetitions (min filters scheduler noise).
const REPS: usize = 3;

/// Gate threshold: current throughput must be ≥ this fraction of the
/// committed baseline.
const GATE_FRAC: f64 = 0.75;

/// Tracing-overhead ceiling asserted on full (non-quick) runs.
const MAX_OVERHEAD_FRAC: f64 = 0.05;

fn base_config(capacity: u64) -> SimConfig {
    SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(capacity)
        .record_series(false)
        .seed(9)
        .build()
}

fn steady_arrivals(n: usize, gap_ms: u64) -> Vec<SimTime> {
    (0..n)
        .map(|i| SimTime::from_millis(gap_ms * i as u64))
        .collect()
}

/// One measured scenario.
struct Measurement {
    name: &'static str,
    completed: usize,
    events: u64,
    wall_nosink_s: f64,
    wall_sink_s: f64,
}

impl Measurement {
    fn sim_req_per_s(&self) -> f64 {
        self.completed as f64 / self.wall_nosink_s
    }

    fn events_per_s(&self) -> f64 {
        self.events as f64 / self.wall_sink_s
    }

    fn overhead_frac(&self) -> f64 {
        (self.wall_sink_s - self.wall_nosink_s) / self.wall_nosink_s
    }
}

/// Times `run(sink)` best-of-[`REPS`], untraced and traced, returning the
/// measurement. The closure must be a pure function of its sink argument.
fn measure(
    name: &'static str,
    completed: usize,
    run: impl Fn(Option<&mut dyn TraceSink>),
) -> Measurement {
    let wall_nosink_s = best_wall_secs(REPS, || run(None));
    let mut events = 0;
    let wall_sink_s = best_wall_secs(REPS, || {
        let mut sink = CountingSink::new();
        run(Some(&mut sink));
        events = sink.events;
    });
    Measurement {
        name,
        completed,
        events,
        wall_nosink_s,
        wall_sink_s,
    }
}

fn run_scenarios(cli: &Cli) -> Vec<Measurement> {
    let mut out = Vec::new();

    // Colocated continuous batching, the hot loop of every experiment.
    {
        let n = cli.size(2_000, 200);
        let requests = datasets::sharegpt(n, 1);
        let config = base_config(40_000);
        out.push(measure("coloc", n, |sink| {
            let report = Simulation::offline(config.clone(), requests.clone())
                .run_traced(sink)
                .expect("coloc run");
            assert_eq!(report.completed, n);
        }));
    }

    // KvOverlap-routed colocated cluster: block-hash chains, the global
    // event-driven index, and softmax scoring all sit on the routing hot
    // path, so regressions in router scoring cost land in this gate.
    {
        let n = cli.size(1_600, 200);
        let spec = datasets::SharedSyspromptSpec::default();
        let (requests, arrivals) =
            datasets::shared_sysprompt_chat_timed(n, 4, &spec, 8.0, 1.0, 2.0);
        let n = requests.len();
        let mut config = base_config(30_000);
        config.prefix_cache = Some(pf_sim::PrefixCacheConfig::with_budget_frac(0.4).blocks(64));
        out.push(measure("coloc-kv", n, |sink| {
            let report = ClusterSimulation::new(
                config.clone(),
                3,
                RouterPolicy::KvOverlap {
                    overlap_weight: 1.0,
                    temperature: 0.2,
                },
            )
            .run_traced(requests.clone(), arrivals.clone(), sink)
            .expect("kv-routed run");
            assert_eq!(report.completed(), n);
        }));
    }

    // Disaggregated 2p+2d with KV-link transfers.
    {
        let n = cli.size(800, 120);
        let requests = datasets::sharegpt(n, 2);
        let arrivals = steady_arrivals(n, 20);
        let config = DisaggConfig::new(base_config(30_000));
        out.push(measure("disagg", n, |sink| {
            let report = DisaggCluster::new(config.clone(), 2, 2)
                .run_traced(requests.clone(), arrivals.clone(), sink)
                .expect("disagg run");
            assert_eq!(report.completed(), n);
        }));
    }

    // Layer-streamed disagg transfers: the fluid link scheduler's
    // breakpoint sync and wake/advance loop join the event-loop hot path,
    // so a regression there (say, a rescan of every stream per event)
    // lands in this gate rather than only in the behavior suite.
    {
        let n = cli.size(800, 120);
        let requests = datasets::sharegpt(n, 2);
        let arrivals = steady_arrivals(n, 20);
        let transfer = pf_sim::disagg::KvTransferSpec::pcie4().streamed();
        let config = DisaggConfig::new(base_config(30_000)).transfer(transfer);
        out.push(measure("disagg-stream", n, |sink| {
            let report = DisaggCluster::new(config.clone(), 2, 2)
                .run_traced(requests.clone(), arrivals.clone(), sink)
                .expect("disagg stream run");
            assert_eq!(report.completed(), n);
            assert_eq!(report.transfers.streamed, report.transfers.transfers);
        }));
    }

    // Elastic fleet with autoscaling decisions in the loop.
    {
        let n = cli.size(800, 120);
        let requests = datasets::sharegpt(n, 3);
        let arrivals = steady_arrivals(n, 30);
        let autoscale = AutoscaleConfig::bounded(1, 4)
            .interval(SimDuration::from_secs(10))
            .warmup(SimDuration::from_secs(15))
            .predictor(PredictorKind::holt())
            .initial_lengths(512.0, 64.0);
        let config = base_config(20_000);
        out.push(measure("elastic", n, |sink| {
            let report = ElasticCluster::new(config.clone(), autoscale, 1)
                .run_traced(requests.clone(), arrivals.clone(), sink)
                .expect("elastic run");
            assert_eq!(report.completed(), n);
        }));
    }

    out
}

fn baseline_json(quick: bool, measurements: &[Measurement]) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n");
    out.push_str(&format!("  \"quick\": {quick},\n  \"scenarios\": [\n"));
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"sim_req_per_s\": {:.1}, \"events_per_s\": {:.1}, \
             \"wall_ms_nosink\": {:.3}, \"wall_ms_sink\": {:.3}, \"overhead_pct\": {:.2}}}{}\n",
            m.name,
            m.sim_req_per_s(),
            m.events_per_s(),
            m.wall_nosink_s * 1e3,
            m.wall_sink_s * 1e3,
            m.overhead_frac() * 100.0,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `(name, sim_req_per_s)` pairs from a `BENCH_core.json`.
/// Hand-rolled to keep the workspace dependency-free; accepts exactly the
/// format [`baseline_json`] writes.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for chunk in text.split("\"name\"").skip(1) {
        let name = chunk
            .split('"')
            .nth(1)
            .expect("baseline name value")
            .to_string();
        let rate = chunk
            .split("\"sim_req_per_s\":")
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .and_then(|num| num.trim().parse::<f64>().ok())
            .expect("baseline sim_req_per_s value");
        out.push((name, rate));
    }
    out
}

fn apply_gate(gate_path: &str, measurements: &[Measurement]) {
    let text = std::fs::read_to_string(gate_path)
        .unwrap_or_else(|e| panic!("read gate baseline {gate_path}: {e}"));
    let committed = parse_baseline(&text);
    assert!(!committed.is_empty(), "gate baseline has no scenarios");
    if committed.iter().all(|(_, rate)| *rate <= 0.0) {
        eprintln!(
            "gate WARNING: every committed sim_req_per_s in {gate_path} is zero — \
             the baseline is a placeholder and the gate passes vacuously. \
             Refresh it with `perf_baseline --quick --out <dir>` on a quiet machine."
        );
    }
    let mut failed = false;
    for (name, committed_rate) in &committed {
        let Some(m) = measurements.iter().find(|m| m.name == name) else {
            eprintln!("gate: baseline scenario '{name}' not measured");
            failed = true;
            continue;
        };
        let floor = committed_rate * GATE_FRAC;
        let current = m.sim_req_per_s();
        if current < floor {
            eprintln!(
                "gate FAIL: {name} {current:.1} req/s < {floor:.1} \
                 ({GATE_FRAC}× committed {committed_rate:.1})"
            );
            failed = true;
        } else {
            println!(
                "gate ok: {name} {current:.1} req/s ≥ {floor:.1} \
                 ({GATE_FRAC}× committed {committed_rate:.1})"
            );
        }
    }
    if failed {
        eprintln!("perf regression gate failed");
        std::process::exit(1);
    }
}

fn main() {
    let (cli, extra) = Cli::parse_extra(&["--gate"]);
    let gate = extra
        .iter()
        .find(|(flag, _)| flag == "--gate")
        .map(|(_, value)| value.clone());

    let measurements = run_scenarios(&cli);

    let mut table = Table::new([
        "scenario",
        "sim_req/s",
        "events/s",
        "wall_ms(no sink)",
        "wall_ms(sink)",
        "overhead",
    ]);
    for m in &measurements {
        table.row([
            m.name.to_string(),
            format!("{:.1}", m.sim_req_per_s()),
            format!("{:.1}", m.events_per_s()),
            format!("{:.3}", m.wall_nosink_s * 1e3),
            format!("{:.3}", m.wall_sink_s * 1e3),
            pf_bench::pct(m.overhead_frac()),
        ]);
    }
    cli.emit("perf_baseline", "Simulator self-profile", &table);

    let json = baseline_json(cli.quick, &measurements);
    std::fs::create_dir_all(&cli.out_dir).expect("create results directory");
    let json_path = cli.out_dir.join("BENCH_core.json");
    std::fs::write(&json_path, &json).expect("write BENCH_core.json");
    println!("[wrote {}]", json_path.display());

    // The zero-cost claim: a counting sink must stay within the overhead
    // budget. Quick runs are too short to time reliably, so the assertion
    // only arms on full runs.
    if !cli.quick {
        for m in &measurements {
            assert!(
                m.overhead_frac() < MAX_OVERHEAD_FRAC,
                "{}: tracing overhead {} exceeds {}",
                m.name,
                pf_bench::pct(m.overhead_frac()),
                pf_bench::pct(MAX_OVERHEAD_FRAC)
            );
        }
        println!(
            "tracing overhead within budget (<{}) on all scenarios",
            pf_bench::pct(MAX_OVERHEAD_FRAC)
        );
    }

    if let Some(gate_path) = gate {
        apply_gate(&gate_path, &measurements);
    }
}
