//! Table 1: decoding steps, memory utilization and eviction rate of every
//! scheduler configuration on Distribution-1/2/3 (Llama2-7B on A100-80G,
//! offline load).
//!
//! ```text
//! cargo run --release -p pf-bench --bin table1 [-- --quick]
//! ```

use pf_bench::{default_threads, output_lengths, pct, run_parallel, Cli};
use pf_core::SchedulerConfig;
use pf_metrics::{Align, Table};
use pf_sim::{GpuSpec, ModelSpec, SimConfig, SimReport, Simulation};
use pf_workload::{datasets, RequestSpec};

struct Row {
    dataset: &'static str,
    method: String,
    report: SimReport,
}

fn configs_for(dataset: &str) -> Vec<SchedulerConfig> {
    let conservative_over = if dataset == "Distribution-2" {
        // The paper reduces the overcommit ratio on the balanced
        // distribution "due to too many evictions".
        SchedulerConfig::conservative_overcommit(1.25)
    } else {
        SchedulerConfig::conservative_overcommit(1.5)
    };
    vec![
        SchedulerConfig::Oracle,
        SchedulerConfig::past_future_reserved(0.03),
        SchedulerConfig::past_future_reserved(0.05),
        SchedulerConfig::past_future_reserved(0.10),
        SchedulerConfig::aggressive(0.99),
        SchedulerConfig::aggressive(0.95),
        SchedulerConfig::aggressive(0.90),
        SchedulerConfig::conservative(),
        conservative_over,
    ]
}

fn main() {
    let cli = Cli::parse();
    let n = cli.size(2000, 250);
    type DatasetFn = fn(usize, u64) -> Vec<RequestSpec>;
    let datasets_list: [(&'static str, DatasetFn); 3] = [
        ("Distribution-1", datasets::distribution_1),
        ("Distribution-2", datasets::distribution_2),
        ("Distribution-3", datasets::distribution_3),
    ];

    let mut jobs: Vec<Box<dyn FnOnce() -> Row + Send>> = Vec::new();
    for (name, builder) in datasets_list {
        let requests = builder(n, 1);
        let warmup = output_lengths(&builder(1000, 777));
        for scheduler in configs_for(name) {
            let requests = requests.clone();
            let warmup = warmup.clone();
            jobs.push(Box::new(move || {
                let method = scheduler.to_string();
                let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
                    .scheduler(scheduler)
                    .history_warmup(warmup)
                    .record_series(false)
                    .seed(20)
                    .build();
                let report = Simulation::offline(config, requests)
                    .run()
                    .unwrap_or_else(|e| panic!("{name}/{method}: {e}"));
                Row {
                    dataset: name,
                    method,
                    report,
                }
            }));
        }
    }

    let rows = run_parallel(jobs, default_threads());
    let mut table = Table::new([
        "Dataset",
        "Method",
        "Decoding Steps",
        "Current Consumed Memory",
        "Future Required Memory",
        "Evicted Reqs",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for row in &rows {
        table.row([
            row.dataset.to_string(),
            row.method.clone(),
            row.report.decode_steps.to_string(),
            pct(row.report.avg_consumed_frac),
            pct(row.report.avg_future_required_frac),
            format!("{:.2}%", row.report.evicted_request_pct()),
        ]);
    }
    cli.emit(
        "table1",
        "Table 1: scheduler ablation on Distribution-1/2/3 (Llama2-7B, A100-80G)",
        &table,
    );
}
