//! Figure 4: average cosine similarity of (historical window → running
//! window) pairs, sweeping the historical window size (x-axis) and the
//! running window size (line brightness), on the conversation and API
//! traces.
//!
//! "Diagonal" pairs a historical window with the running window that
//! immediately follows it; "global" pairs historical and running windows at
//! arbitrary distinct positions.
//!
//! ```text
//! cargo run --release -p pf-bench --bin fig4 [-- --quick]
//! ```

use pf_bench::Cli;
use pf_metrics::{cosine_similarity, Align, Binning, LengthHistogram, Table};
use pf_workload::trace::{generate_output_lengths, TraceArchetype};

fn histogram_probs(lengths: &[u32]) -> Vec<f64> {
    LengthHistogram::from_lengths(Binning::Log2, lengths.iter().copied()).probabilities()
}

/// Mean similarity of adjacent (hist → following run) windows and of
/// non-adjacent (hist, run) pairs.
fn sweep(lengths: &[u32], hist: usize, run: usize) -> (f64, f64) {
    // Positions where a full historical window is followed by a full
    // running window; advance by the running window (the serving system's
    // natural cadence).
    let mut hist_windows = Vec::new();
    let mut run_windows = Vec::new();
    let mut pos = hist;
    while pos + run <= lengths.len() {
        hist_windows.push(histogram_probs(&lengths[pos - hist..pos]));
        run_windows.push(histogram_probs(&lengths[pos..pos + run]));
        pos += run;
    }
    let k = hist_windows.len();
    if k < 2 {
        return (0.0, 0.0);
    }
    let mut diagonal = 0.0;
    for i in 0..k {
        diagonal += cosine_similarity(&hist_windows[i], &run_windows[i]);
    }
    diagonal /= k as f64;
    let mut global = 0.0;
    let mut pairs = 0usize;
    // Subsample the quadratic pair space for large k.
    let stride = (k / 64).max(1);
    for i in (0..k).step_by(stride) {
        for j in (0..k).step_by(stride) {
            if i != j {
                global += cosine_similarity(&hist_windows[i], &run_windows[j]);
                pairs += 1;
            }
        }
    }
    global /= pairs.max(1) as f64;
    (diagonal, global)
}

fn main() {
    let cli = Cli::parse();
    let n = cli.size(120_000, 30_000);
    let hist_sizes = [100usize, 200, 500, 1000, 2000, 5000];
    let run_sizes = [100usize, 200, 500, 1000];

    let mut table = Table::new([
        "trace",
        "historical window",
        "running window",
        "diagonal sim",
        "global sim",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for archetype in [TraceArchetype::Conversation, TraceArchetype::ApiService] {
        let lengths = generate_output_lengths(archetype, n, 4242);
        for &hist in &hist_sizes {
            for &run in &run_sizes {
                let (diagonal, global) = sweep(&lengths, hist, run);
                table.row([
                    archetype.label().to_string(),
                    hist.to_string(),
                    run.to_string(),
                    format!("{diagonal:.3}"),
                    format!("{global:.3}"),
                ]);
            }
        }
    }
    cli.emit(
        "fig4",
        "Figure 4: diagonal/global similarity vs. historical and running window sizes",
        &table,
    );
    println!(
        "The diagonal stays high across window-size combinations; a historical\n\
         window of ~1000 balances the conversation and API services — the\n\
         paper's justification for w = 1000."
    );
}
