//! Extension: heterogeneous GPU fleets and cross-pool repurposing on the
//! shared fleet-lifecycle kernel.
//!
//! Two scenarios exercise the two capabilities the `pf_sim::fleet`
//! refactor unlocked:
//!
//! 1. **Repurposing** — a workload whose mix shifts from prefill-heavy
//!    (long prompts, terse answers) to decode-heavy (short prompts, long
//!    answers) drives an elastic disaggregated cluster twice: with
//!    cross-pool repurposing off, the decode pool's scale-up provisions
//!    cold instances through the full warm-up while the prefill pool's
//!    surplus drains to a stop; with repurposing on, the decode scale-up
//!    claims those draining prefill instances, which flip into the decode
//!    pool after a short repurpose delay (weights already resident, KV
//!    pool reset). The run asserts repurposing reaches at least the
//!    TTFT-SLA attainment of the no-repurpose baseline at matched
//!    cost-weighted GPU-seconds (within 0.2%), strictly improves full-SLA
//!    attainment through the transition, and replays bit-identically.
//!
//! 2. **Mixed fleets** — a diurnal chat cycle is served by an all-big
//!    static fleet, by a mixed static fleet (two big GPUs plus two
//!    mid-tier GPUs at 45% of the price and 55% of the speed), and by an
//!    elastic fleet over the same mixed slots. The run asserts the mixed
//!    static fleet stays within the same 5-point SLA band the autoscale
//!    bench uses while provisioning strictly fewer cost-weighted
//!    GPU-seconds than the all-big baseline.
//!
//! ```text
//! cargo run --release -p pf-bench --bin hetero_fleet [-- --quick]
//! ```

use pf_autoscale::{AutoscaleConfig, PredictorKind};
use pf_bench::Cli;
use pf_core::SchedulerConfig;
use pf_metrics::{Align, SimDuration, SimTime, Table};
use pf_sim::disagg::{DisaggConfig, DisaggReport, ElasticDisaggCluster};
use pf_sim::elastic::{ElasticCluster, ElasticReport};
use pf_sim::{GpuSpec, GpuType, ModelSpec, SimConfig};
use pf_workload::{datasets, rng::seeded, LengthSampler, RateProfile, RequestSpec};

const INTERVAL_S: u64 = 10;
const WARMUP_S: u64 = 20;
/// Flip delay for a repurposed instance — weights are already on the GPU;
/// only the KV pool reset and CUDA-graph capture remain.
const REPURPOSE_S: u64 = 2;

fn base_config(capacity: u64) -> SimConfig {
    SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(capacity)
        .record_series(false)
        .seed(71)
        .build()
}

/// The phase-shift workload: `n_prefill` requests of summarization-style
/// traffic (huge prompts, near-single-token answers — only the prefill
/// pool loads) at 14 req/s, then an abrupt switch to generation-style
/// traffic (short prompts, long answers) at 10 req/s — the decode pool
/// must grow in the same planning round the prefill pool sheds its
/// surplus.
fn phase_shift_workload(n_prefill: usize, n_decode: usize) -> (Vec<RequestSpec>, Vec<SimTime>) {
    let pre_in = LengthSampler::uniform(1024, 3072);
    let pre_out = LengthSampler::uniform(4, 16);
    let mut requests = datasets::from_samplers(n_prefill, 72, &pre_in, &pre_out, 32);
    let long_in = LengthSampler::uniform(48, 160);
    let long_out = LengthSampler::uniform(192, 512);
    let tail = datasets::from_samplers(n_decode, 73, &long_in, &long_out, 640);
    requests.extend(tail.into_iter().enumerate().map(|(i, mut r)| {
        r.id = ((n_prefill + i) as u64).into();
        r
    }));
    let mut arrivals: Vec<SimTime> = (0..n_prefill)
        .map(|i| SimTime::from_micros(71_429 * i as u64)) // 14 req/s
        .collect();
    let phase_b_start = 71_429 * n_prefill as u64;
    arrivals.extend(
        (1..=n_decode as u64).map(|i| SimTime::from_micros(phase_b_start + 100_000 * i)), // 10 req/s
    );
    (requests, arrivals)
}

fn repurpose_run(
    repurpose: bool,
    requests: Vec<RequestSpec>,
    arrivals: Vec<SimTime>,
) -> DisaggReport {
    let pool = |max: usize, patience: u32| {
        let mut policy = pf_autoscale::PolicyConfig::bounded(1, max);
        policy.scale_down_patience = patience;
        AutoscaleConfig::bounded(1, max)
            .interval(SimDuration::from_secs(INTERVAL_S))
            .warmup(SimDuration::from_secs(WARMUP_S))
            .predictor(PredictorKind::holt())
            .initial_lengths(512.0, 64.0)
            .policy(policy)
    };
    let mut config = DisaggConfig::new(base_config(9_000));
    if repurpose {
        config = config.repurpose(SimDuration::from_secs(REPURPOSE_S));
    }
    // Prefill instances drain in well under an interval (no long decodes),
    // so the prefill pool sheds surplus with minimal patience — the decode
    // pool keeps the default hysteresis.
    ElasticDisaggCluster::new(config, pool(4, 1), pool(4, 3), 2, 1)
        .run(requests, arrivals)
        .expect("elastic disagg run")
}

#[derive(Clone, Copy)]
enum ColocFleet {
    AllBig,
    MixedStatic,
    MixedElastic,
}

impl ColocFleet {
    fn label(self) -> &'static str {
        match self {
            ColocFleet::AllBig => "static-4xbig",
            ColocFleet::MixedStatic => "static-2big+2mid",
            ColocFleet::MixedElastic => "elastic-2big+2mid",
        }
    }
}

fn mixed_run(
    fleet: ColocFleet,
    requests: Vec<RequestSpec>,
    arrivals: Vec<SimTime>,
) -> ElasticReport {
    let (min, max, initial) = match fleet {
        ColocFleet::AllBig | ColocFleet::MixedStatic => (4, 4, 4),
        ColocFleet::MixedElastic => (1, 4, 2),
    };
    let autoscale = AutoscaleConfig::bounded(min, max)
        .interval(SimDuration::from_secs(INTERVAL_S))
        .warmup(SimDuration::from_secs(WARMUP_S))
        .predictor(PredictorKind::holt())
        .initial_lengths(160.0, 224.0);
    let mut cluster = ElasticCluster::new(base_config(6_000), autoscale, initial);
    match fleet {
        ColocFleet::AllBig => cluster = cluster.fleet(vec![GpuType::big(); 4]),
        ColocFleet::MixedStatic | ColocFleet::MixedElastic => {
            cluster = cluster.fleet(vec![
                GpuType::big(),
                GpuType::big(),
                GpuType::mid(),
                GpuType::mid(),
            ]);
        }
    }
    cluster.run(requests, arrivals).expect("elastic run")
}

fn main() {
    let cli = Cli::parse();

    // Scenario 1 — cross-pool repurposing on the phase-shift workload.
    let n_prefill = cli.size(1_400, 700);
    let n_decode = cli.size(900, 450);
    // Phase A: 100 s (50 s quick) of pure prefill load; phase B: 90 s
    // (45 s quick) of pure decode load. The planner rounds right after
    // the switch shed prefill capacity and order decode capacity — the
    // repurposing window.
    let (requests, arrivals) = phase_shift_workload(n_prefill, n_decode);
    let off = repurpose_run(false, requests.clone(), arrivals.clone());
    let on = repurpose_run(true, requests.clone(), arrivals.clone());

    let mut table = Table::new([
        "fleet",
        "completed",
        "TTFT-ok %",
        "TTFT p99 s",
        "SLA-ok %",
        "cost-wt GPU-s",
        "repurposes",
        "peak",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for (label, report) in [("repurpose-off", &off), ("repurpose-on", &on)] {
        table.row([
            label.to_string(),
            report.completed().to_string(),
            format!("{:.1}", report.ttft_attainment() * 100.0),
            format!("{:.2}", report.goodput.ttft_secs.p99),
            format!("{:.1}", report.sla_attainment() * 100.0),
            format!("{:.0}", report.cost_weighted_gpu_seconds()),
            report.repurposes.len().to_string(),
            format!(
                "{}+{}",
                report.peak_prefill_replicas(),
                report.peak_decode_replicas()
            ),
        ]);
    }
    cli.emit(
        "hetero_repurpose",
        "Cross-pool repurposing: prefill-heavy -> decode-heavy phase shift",
        &table,
    );

    assert!(
        !on.repurposes.is_empty(),
        "the phase shift never triggered a repurpose flip"
    );
    assert!(
        on.ttft_attainment() >= off.ttft_attainment(),
        "repurposing TTFT attainment {:.3} fell below no-repurpose {:.3}",
        on.ttft_attainment(),
        off.ttft_attainment()
    );
    // The flip substitutes one-for-one for the cold spawn, so provisioned
    // cost is matched (measured: bit-identical on the quick size, +0.015%
    // on the full size from drain-timing drift); the gain is that the
    // substituted capacity serves 18 s sooner, which shows up as full-SLA
    // attainment through the transition.
    assert!(
        on.cost_weighted_gpu_seconds() <= off.cost_weighted_gpu_seconds() * 1.002,
        "repurposing spent {:.1} cost-weighted GPU-s vs {:.1} without — not matched",
        on.cost_weighted_gpu_seconds(),
        off.cost_weighted_gpu_seconds()
    );
    assert!(
        on.sla_attainment() >= off.sla_attainment() + 0.02,
        "repurposing SLA {:.3} no longer beats no-repurpose {:.3} through the transition",
        on.sla_attainment(),
        off.sla_attainment()
    );
    // Deterministic replay of the repurposing run.
    let replay = repurpose_run(true, requests, arrivals);
    assert_eq!(replay.makespan, on.makespan, "non-deterministic makespan");
    assert_eq!(
        replay.cost_weighted_gpu_seconds(),
        on.cost_weighted_gpu_seconds(),
        "non-deterministic cost"
    );
    assert_eq!(
        replay.repurposes, on.repurposes,
        "non-deterministic repurposing"
    );

    // Scenario 2 — mixed static fleet vs the all-big baseline on diurnal
    // chat.
    let n = cli.size(3_000, 700);
    let chat = datasets::short_chat(n, 74);
    let chat_arrivals =
        RateProfile::diurnal(2.0, 10.0, SimDuration::from_secs(180)).assign(&mut seeded(75), n);
    let fleets = [
        ColocFleet::AllBig,
        ColocFleet::MixedStatic,
        ColocFleet::MixedElastic,
    ];
    let reports: Vec<(ColocFleet, ElasticReport)> = fleets
        .iter()
        .map(|&fleet| (fleet, mixed_run(fleet, chat.clone(), chat_arrivals.clone())))
        .collect();

    let mut table = Table::new([
        "fleet",
        "completed",
        "SLA-ok %",
        "GPU-seconds",
        "cost-wt GPU-s",
        "peak",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for (fleet, report) in &reports {
        table.row([
            fleet.label().to_string(),
            report.completed().to_string(),
            format!("{:.1}", report.sla_attainment() * 100.0),
            format!("{:.0}", report.gpu_seconds()),
            format!("{:.0}", report.cost_weighted_gpu_seconds()),
            report.peak_replicas().to_string(),
        ]);
    }
    cli.emit(
        "hetero_mixed",
        "Mixed GPU fleet vs all-big static baseline (diurnal chat)",
        &table,
    );

    let by_fleet = |want: &str| {
        &reports
            .iter()
            .find(|(f, _)| f.label() == want)
            .unwrap_or_else(|| panic!("missing fleet {want}"))
            .1
    };
    let all_big = by_fleet("static-4xbig");
    let mixed = by_fleet("static-2big+2mid");
    let sla_gap = all_big.sla_attainment() - mixed.sla_attainment();
    assert!(
        sla_gap <= 0.05,
        "mixed fleet SLA {:.3} trails all-big {:.3} by more than 5 points",
        mixed.sla_attainment(),
        all_big.sla_attainment()
    );
    assert!(
        mixed.cost_weighted_gpu_seconds() < all_big.cost_weighted_gpu_seconds(),
        "mixed fleet cost {:.0} is not below all-big {:.0}",
        mixed.cost_weighted_gpu_seconds(),
        all_big.cost_weighted_gpu_seconds()
    );

    println!(
        "[ok] repurpose-on: TTFT {:.1}% vs off {:.1}% at {:.0} vs {:.0} cost-weighted GPU-s \
         ({} flips); replay deterministic",
        on.ttft_attainment() * 100.0,
        off.ttft_attainment() * 100.0,
        on.cost_weighted_gpu_seconds(),
        off.cost_weighted_gpu_seconds(),
        on.repurposes.len(),
    );
    println!(
        "[ok] mixed 2big+2mid: SLA {:.1}% (all-big {:.1}%) at {:.0} vs {:.0} cost-weighted GPU-s \
         ({:.0}% cheaper)",
        mixed.sla_attainment() * 100.0,
        all_big.sla_attainment() * 100.0,
        mixed.cost_weighted_gpu_seconds(),
        all_big.cost_weighted_gpu_seconds(),
        (1.0 - mixed.cost_weighted_gpu_seconds() / all_big.cost_weighted_gpu_seconds()) * 100.0,
    );
}
