//! Extension: disaggregated prefill/decode pools versus colocated serving
//! at matched GPU counts.
//!
//! Three load shapes — a steady prefill-heavy stream (summarization/RAG
//! traffic), a diurnal chat cycle and a bursty chat square wave — are
//! served by a colocated 4-instance fleet, by static disaggregated splits
//! of the same four GPUs, and by an elastic disaggregated cluster whose
//! prefill and decode pools autoscale independently (prefill against
//! TTFT, decode against TPOT).
//!
//! The table reports TTFT-SLA attainment separately from full-SLA
//! attainment: disaggregation's claim is about first-token latency — a
//! dedicated prefill pool keeps prompt admission off the decode batch's
//! memory and compute, at the price of a KV transfer charged between the
//! first and second token.
//!
//! The run asserts the headline claims on the prefill-heavy scenario:
//! the matched-GPU static split reaches at least the colocated fleet's
//! TTFT-SLA attainment without spending more GPU-seconds, and the elastic
//! run replays bit-identically.
//!
//! ```text
//! cargo run --release -p pf-bench --bin disagg [-- --quick]
//! ```

use pf_autoscale::{AutoscaleConfig, PredictorKind};
use pf_bench::{default_threads, run_parallel, Cli};
use pf_core::SchedulerConfig;
use pf_metrics::{Align, SimDuration, SimTime, Table};
use pf_sim::disagg::{DisaggCluster, DisaggConfig, ElasticDisaggCluster};
use pf_sim::elastic::ElasticCluster;
use pf_sim::{GpuSpec, ModelSpec, SimConfig};
use pf_workload::{datasets, rng::seeded, PoissonArrivals, RateProfile, RequestSpec};

const INTERVAL_S: u64 = 10;
const WARMUP_S: u64 = 20;

fn base_config(capacity: u64) -> SimConfig {
    SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(capacity)
        .record_series(false)
        .seed(31)
        .build()
}

#[derive(Clone, Copy)]
enum Fleet {
    /// Colocated fleet of `n` conventional engines.
    Coloc(usize),
    /// Static disaggregated split: `p` prefill + `d` decode instances.
    Disagg(usize, usize),
    /// Elastic disaggregated pools bounded to `[1, pmax]` / `[1, dmax]`,
    /// starting from `p0` / `d0` instances with the given predictor.
    DisaggElastic {
        pmax: usize,
        dmax: usize,
        p0: usize,
        d0: usize,
        predictor: PredictorKind,
    },
}

impl Fleet {
    fn label(&self) -> String {
        match *self {
            Fleet::Coloc(n) => format!("coloc-static-{n}"),
            Fleet::Disagg(p, d) => format!("disagg-{p}p{d}d"),
            Fleet::DisaggElastic { pmax, dmax, .. } => format!("disagg-elastic-{pmax}p{dmax}d"),
        }
    }
}

/// Common row extracted from either report type.
#[derive(Clone)]
struct RowData {
    label: String,
    completed: usize,
    ttft_attainment: f64,
    ttft_p99_secs: f64,
    sla_attainment: f64,
    goodput_tok_per_s: f64,
    gpu_seconds: f64,
    peak: String,
    makespan_s: f64,
    scaling_events: usize,
}

fn run_fleet(
    fleet: Fleet,
    capacity: u64,
    requests: Vec<RequestSpec>,
    arrivals: Vec<SimTime>,
) -> RowData {
    let label = fleet.label();
    match fleet {
        Fleet::Coloc(n) => {
            let autoscale = AutoscaleConfig::bounded(n, n)
                .interval(SimDuration::from_secs(INTERVAL_S))
                .warmup(SimDuration::from_secs(WARMUP_S));
            let report = ElasticCluster::new(base_config(capacity), autoscale, n)
                .run(requests, arrivals)
                .expect("colocated run");
            RowData {
                label,
                completed: report.completed(),
                ttft_attainment: report.goodput.ttft_attainment(),
                ttft_p99_secs: report.goodput.ttft_secs.p99,
                sla_attainment: report.sla_attainment(),
                goodput_tok_per_s: report.goodput_tok_per_s(),
                gpu_seconds: report.gpu_seconds(),
                peak: format!("{}", report.peak_replicas()),
                makespan_s: report.makespan.as_secs_f64(),
                scaling_events: report.events.len(),
            }
        }
        Fleet::Disagg(p, d) => {
            let report = DisaggCluster::new(DisaggConfig::new(base_config(capacity)), p, d)
                .run(requests, arrivals)
                .expect("disagg run");
            RowData {
                label,
                completed: report.completed(),
                ttft_attainment: report.ttft_attainment(),
                ttft_p99_secs: report.goodput.ttft_secs.p99,
                sla_attainment: report.sla_attainment(),
                goodput_tok_per_s: report.goodput_tok_per_s(),
                gpu_seconds: report.gpu_seconds(),
                peak: format!("{p}+{d}"),
                makespan_s: report.makespan.as_secs_f64(),
                scaling_events: 0,
            }
        }
        Fleet::DisaggElastic {
            pmax,
            dmax,
            p0,
            d0,
            predictor,
        } => {
            let pool = |max: usize| {
                AutoscaleConfig::bounded(1, max)
                    .interval(SimDuration::from_secs(INTERVAL_S))
                    .warmup(SimDuration::from_secs(WARMUP_S))
                    .predictor(predictor)
                    .initial_lengths(512.0, 128.0)
            };
            let report = ElasticDisaggCluster::new(
                DisaggConfig::new(base_config(capacity)),
                pool(pmax),
                pool(dmax),
                p0,
                d0,
            )
            .run(requests, arrivals)
            .expect("elastic disagg run");
            RowData {
                label,
                completed: report.completed(),
                ttft_attainment: report.ttft_attainment(),
                ttft_p99_secs: report.goodput.ttft_secs.p99,
                sla_attainment: report.sla_attainment(),
                goodput_tok_per_s: report.goodput_tok_per_s(),
                gpu_seconds: report.gpu_seconds(),
                peak: format!(
                    "{}+{}",
                    report.peak_prefill_replicas(),
                    report.peak_decode_replicas()
                ),
                makespan_s: report.makespan.as_secs_f64(),
                scaling_events: report.prefill.events.len() + report.decode.events.len(),
            }
        }
    }
}

fn scenario_table(
    cli: &Cli,
    name: &str,
    title: &str,
    fleets: &[Fleet],
    capacity: u64,
    requests: &[RequestSpec],
    arrivals: &[SimTime],
) -> Vec<RowData> {
    let jobs: Vec<Box<dyn FnOnce() -> RowData + Send>> = fleets
        .iter()
        .map(|&fleet| {
            let requests = requests.to_vec();
            let arrivals = arrivals.to_vec();
            Box::new(move || run_fleet(fleet, capacity, requests, arrivals))
                as Box<dyn FnOnce() -> RowData + Send>
        })
        .collect();
    let rows = run_parallel(jobs, default_threads());

    let mut table = Table::new([
        "fleet",
        "completed",
        "TTFT-ok %",
        "TTFT p99 s",
        "SLA-ok %",
        "goodput tok/s",
        "GPU-seconds",
        "peak",
        "makespan s",
        "scaling events",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for row in &rows {
        table.row([
            row.label.clone(),
            row.completed.to_string(),
            format!("{:.1}", row.ttft_attainment * 100.0),
            format!("{:.2}", row.ttft_p99_secs),
            format!("{:.1}", row.sla_attainment * 100.0),
            format!("{:.0}", row.goodput_tok_per_s),
            format!("{:.0}", row.gpu_seconds),
            row.peak.clone(),
            format!("{:.0}", row.makespan_s),
            row.scaling_events.to_string(),
        ]);
    }
    cli.emit(name, title, &table);
    rows
}

fn by_label<'a>(rows: &'a [RowData], label: &str) -> &'a RowData {
    rows.iter()
        .find(|r| r.label == label)
        .unwrap_or_else(|| panic!("missing fleet {label}"))
}

fn main() {
    let cli = Cli::parse();

    // Scenario 1 — steady prefill-heavy (summarization/RAG): 12 req/s of
    // 1-3k-token prompts with terse answers against four A100s. 12 req/s
    // sits just past the colocated fleet's admission ceiling: its TTFT
    // tail collapses (prompts queue behind decode-held KV), while a
    // dedicated prefill pool keeps first tokens flowing and pushes the
    // stress onto the decode side's MTPOT — the disaggregation trade.
    let n_steady = cli.size(3_000, 900);
    let steady_requests = datasets::prefill_heavy(n_steady, 51);
    let steady_arrivals = PoissonArrivals::new(12.0).assign(&mut seeded(52), n_steady);
    let steady_fleets = [
        Fleet::Coloc(4),
        Fleet::Disagg(2, 2),
        Fleet::Disagg(3, 1),
        Fleet::DisaggElastic {
            pmax: 3,
            dmax: 3,
            p0: 2,
            d0: 2,
            predictor: PredictorKind::holt(),
        },
    ];
    let steady_rows = scenario_table(
        &cli,
        "disagg_prefill_heavy",
        "Disaggregation: steady prefill-heavy load (12 req/s, 1-3k prompts, 4 GPUs)",
        &steady_fleets,
        9_000,
        &steady_requests,
        &steady_arrivals,
    );

    // Scenario 2 — diurnal chat cycle.
    let n_diurnal = cli.size(2_400, 500);
    let diurnal_requests = datasets::short_chat(n_diurnal, 53);
    let diurnal_arrivals = RateProfile::diurnal(2.0, 10.0, SimDuration::from_secs(180))
        .assign(&mut seeded(54), n_diurnal);
    let chat_fleets = [
        Fleet::Coloc(4),
        Fleet::Disagg(1, 3),
        Fleet::DisaggElastic {
            pmax: 2,
            dmax: 3,
            p0: 1,
            d0: 2,
            // One cycle is 18 adjustment intervals: a seasonal predictor
            // pre-provisions for the recurring peak.
            predictor: PredictorKind::holt_winters(18),
        },
    ];
    scenario_table(
        &cli,
        "disagg_diurnal",
        "Disaggregation: diurnal chat load (2 -> 10 req/s, 180 s period, 4 GPUs)",
        &chat_fleets,
        6_000,
        &diurnal_requests,
        &diurnal_arrivals,
    );

    // Scenario 3 — bursty chat square wave.
    let n_bursty = cli.size(1_500, 350);
    let bursty_requests = datasets::short_chat(n_bursty, 55);
    let bursty_arrivals = RateProfile::bursty(
        1.0,
        10.0,
        SimDuration::from_secs(40),
        SimDuration::from_secs(180),
    )
    .assign(&mut seeded(56), n_bursty);
    scenario_table(
        &cli,
        "disagg_bursty",
        "Disaggregation: bursty chat load (1 req/s floor, 10 req/s bursts, 4 GPUs)",
        &chat_fleets,
        6_000,
        &bursty_requests,
        &bursty_arrivals,
    );

    // Headline checks (prefill-heavy): the matched-GPU disaggregated split
    // protects TTFT — attainment at least the colocated fleet's, with a
    // no-worse p99 — at no extra provisioned cost, and the elastic run
    // replays bit-identically.
    let coloc = by_label(&steady_rows, "coloc-static-4");
    let split = by_label(&steady_rows, "disagg-2p2d");
    assert!(
        split.ttft_attainment >= coloc.ttft_attainment,
        "disagg TTFT attainment {:.3} fell below colocated {:.3}",
        split.ttft_attainment,
        coloc.ttft_attainment
    );
    assert!(
        split.ttft_p99_secs <= coloc.ttft_p99_secs,
        "disagg TTFT p99 {:.2}s exceeds colocated {:.2}s",
        split.ttft_p99_secs,
        coloc.ttft_p99_secs
    );
    assert!(
        split.gpu_seconds <= coloc.gpu_seconds * 1.02,
        "disagg spent {:.0} GPU-s vs colocated {:.0} — not a matched comparison",
        split.gpu_seconds,
        coloc.gpu_seconds
    );
    let elastic = by_label(&steady_rows, "disagg-elastic-3p3d");
    let replay = run_fleet(
        Fleet::DisaggElastic {
            pmax: 3,
            dmax: 3,
            p0: 2,
            d0: 2,
            predictor: PredictorKind::holt(),
        },
        9_000,
        steady_requests.clone(),
        steady_arrivals.clone(),
    );
    assert_eq!(
        replay.makespan_s, elastic.makespan_s,
        "non-deterministic makespan"
    );
    assert_eq!(
        replay.gpu_seconds, elastic.gpu_seconds,
        "non-deterministic GPU-seconds"
    );
    assert_eq!(
        replay.scaling_events, elastic.scaling_events,
        "non-deterministic scaling"
    );
    println!(
        "[ok] disagg-2p2d: TTFT-SLA {:.1}% vs coloc-static-4 {:.1}% at {:.0} vs {:.0} GPU-s; \
         elastic replay deterministic",
        split.ttft_attainment * 100.0,
        coloc.ttft_attainment * 100.0,
        split.gpu_seconds,
        coloc.gpu_seconds,
    );
}
