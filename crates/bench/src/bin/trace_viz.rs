//! Lifecycle-trace demonstrator: runs traced colocated, disaggregated and
//! elastic simulations, prints per-phase latency breakdowns, checks that
//! tracing never perturbs the simulation, and exports Chrome trace-event
//! JSON (load `results/trace_*.json` in Perfetto / `chrome://tracing`).
//!
//! Also feeds the colocated run through the burn-rate monitor and prints
//! any SLO budget alerts.

use pf_autoscale::{AutoscaleConfig, PredictorKind};
use pf_bench::Cli;
use pf_core::SchedulerConfig;
use pf_metrics::{SimDuration, SimTime, SlaSpec, Table};
use pf_obs::{
    chrome_trace_json_from_spans, reconstruct, Phase, PhaseTotals, RecordingSink, RequestSpans,
    SloConfig, SpanOutcome, TelemetryRecorder, TraceEvent,
};
use pf_sim::disagg::{DisaggCluster, DisaggConfig};
use pf_sim::elastic::ElasticCluster;
use pf_sim::{GpuSpec, ModelSpec, QueueOrder, SimConfig, Simulation};
use pf_workload::{datasets, LengthSampler};

fn base_config(capacity: u64, seed: u64) -> SimConfig {
    SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(capacity)
        .record_series(false)
        .seed(seed)
        .build()
}

fn steady_arrivals(n: usize, gap_ms: u64) -> Vec<SimTime> {
    (0..n)
        .map(|i| SimTime::from_millis(gap_ms * i as u64))
        .collect()
}

/// Runs a traced scenario twice and asserts the two event streams are
/// identical (replay determinism — the trace is a pure function of the
/// simulation).
fn traced_twice(run: impl Fn(&mut RecordingSink)) -> RecordingSink {
    let mut first = RecordingSink::new();
    run(&mut first);
    let mut second = RecordingSink::new();
    run(&mut second);
    assert_eq!(
        first.events, second.events,
        "replay determinism violated: two identical runs emitted different traces"
    );
    assert_eq!(first.gauges, second.gauges);
    first
}

/// One row per scenario in the phase-breakdown table.
fn phase_row(table: &mut Table, scenario: &str, spans: &[RequestSpans]) {
    let totals = PhaseTotals::aggregate(spans);
    let mut cells = vec![scenario.to_string(), totals.requests.to_string()];
    for phase in Phase::ALL {
        cells.push(format!("{:.3}", totals.mean_secs(phase)));
    }
    table.row(cells);
}

fn check_partition(scenario: &str, spans: &[RequestSpans]) {
    for span in spans {
        assert!(
            span.phases_partition_lifetime(),
            "{scenario}: request {} phases do not partition its lifetime",
            span.request
        );
    }
}

fn main() {
    let cli = Cli::parse();

    let mut table = Table::new([
        "scenario",
        "requests",
        "queue_s",
        "prefill_s",
        "kv_transfer_s",
        "decode_s",
        "stalled_s",
    ]);

    // Colocated, memory-tight with deadlines: queue, prefill, decode,
    // preemption re-queues and deadline drops all show up.
    let n = cli.size(256, 48);
    let coloc_events = {
        let input = LengthSampler::uniform(8, 32);
        let output = LengthSampler::uniform(64, 256);
        let requests = datasets::from_samplers(n, 3, &input, &output, 512);
        let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
            .scheduler(SchedulerConfig::aggressive(0.99))
            .capacity_override(1_200)
            .record_series(false)
            .request_deadline(SimDuration::from_secs(60))
            .queue_order(QueueOrder::least_slack())
            .sla(SlaSpec::new(
                SimDuration::from_secs(10),
                SimDuration::from_millis(1500),
            ))
            .seed(11)
            .build();
        let sink = traced_twice(|sink| {
            Simulation::offline(config.clone(), requests.clone())
                .run_traced(Some(sink))
                .expect("colocated run");
        });
        let spans = reconstruct(&sink.events);
        check_partition("colocated", &spans);
        phase_row(&mut table, "colocated", &spans);
        std::fs::create_dir_all(&cli.out_dir).expect("create results directory");
        std::fs::write(
            cli.out_dir.join("trace_colocated.json"),
            chrome_trace_json_from_spans(&spans, &sink.events),
        )
        .expect("write colocated trace");
        sink.events
    };

    // Disaggregated 2p+2d: the kv-transfer and stalled phases appear.
    {
        let n = cli.size(120, 40);
        let input = LengthSampler::uniform(1024, 3072);
        let output = LengthSampler::uniform(8, 48);
        let requests = datasets::from_samplers(n, 2, &input, &output, 64);
        let arrivals = steady_arrivals(n, 120);
        let sink = traced_twice(|sink| {
            DisaggCluster::new(DisaggConfig::new(base_config(12_000, 7)), 2, 2)
                .run_traced(requests.clone(), arrivals.clone(), Some(sink))
                .expect("disagg run");
        });
        let spans = reconstruct(&sink.events);
        check_partition("disagg-2p2d", &spans);
        phase_row(&mut table, "disagg-2p2d", &spans);
        std::fs::write(
            cli.out_dir.join("trace_disagg.json"),
            chrome_trace_json_from_spans(&spans, &sink.events),
        )
        .expect("write disagg trace");
    }

    // Elastic 1..4 instances: scaling events land on the cluster track.
    {
        let n = cli.size(400, 120);
        let requests = datasets::sharegpt(n, 4);
        let arrivals = steady_arrivals(n, 40);
        let autoscale = AutoscaleConfig::bounded(1, 4)
            .interval(SimDuration::from_secs(10))
            .warmup(SimDuration::from_secs(15))
            .predictor(PredictorKind::holt())
            .initial_lengths(512.0, 64.0);
        let sink = traced_twice(|sink| {
            ElasticCluster::new(base_config(12_000, 7), autoscale, 1)
                .run_traced(requests.clone(), arrivals.clone(), Some(sink))
                .expect("elastic run");
        });
        let spans = reconstruct(&sink.events);
        check_partition("elastic-1..4", &spans);
        phase_row(&mut table, "elastic-1..4", &spans);
        std::fs::write(
            cli.out_dir.join("trace_elastic.json"),
            chrome_trace_json_from_spans(&spans, &sink.events),
        )
        .expect("write elastic trace");
    }

    cli.emit(
        "trace_phases",
        "Mean per-request phase breakdown (seconds)",
        &table,
    );
    println!(
        "[wrote {}/trace_colocated.json, trace_disagg.json, trace_elastic.json — open in Perfetto]",
        cli.out_dir.display()
    );

    // Burn-rate demo: replay the colocated outcome stream through the
    // telemetry recorder and print any SLO budget alerts.
    let horizon = coloc_events
        .iter()
        .map(|ev| ev.at())
        .max()
        .unwrap_or(SimTime::ZERO);
    let period = horizon
        .saturating_since(SimTime::ZERO)
        .max(SimDuration::from_secs(1));
    let mut recorder = TelemetryRecorder::new(SloConfig::new(0.99, period)).with_min_samples(10);
    {
        use pf_obs::TraceSink;
        for ev in &coloc_events {
            recorder.event(*ev);
        }
    }
    let spans = reconstruct(&coloc_events);
    let finished_ok = spans
        .iter()
        .filter(|s| matches!(s.outcome, SpanOutcome::Finished { sla_ok: true }))
        .count();
    println!(
        "== SLO burn-rate (colocated, target 99%) ==\n\
         {} requests traced, {} met their SLA; {} budget alert(s):",
        spans.len(),
        finished_ok,
        recorder.monitor().alerts().len()
    );
    for alert in recorder.monitor().alerts() {
        println!(
            "  [{}] t={:.1}s window={} burn_rate={:.2} budget_consumed={:.1}%",
            alert.severity.label(),
            alert.at.saturating_since(SimTime::ZERO).as_secs_f64(),
            alert.window.label(),
            alert.burn_rate,
            alert.budget_consumed * 100.0
        );
    }

    // Event-stream invariants double-checked on the way out.
    let enqueued = coloc_events
        .iter()
        .filter(|ev| matches!(ev, TraceEvent::Enqueued { .. }))
        .count();
    assert_eq!(enqueued, n, "every request must be enqueued exactly once");
}
