//! Extension (paper §7 future work): estimate-driven request forwarding
//! across serving instances.
//!
//! A front-end router assigns each arriving request to one of several
//! identical instances. The paper argues the Past-Future scheduler's
//! accurate per-batch memory estimates make a better routing signal than
//! request counts or current occupancy; this experiment compares the four
//! load-signal policies on a bursty, size-skewed arrival stream.
//! (`RouterPolicy::PrefixAffinity` is excluded: this workload carries no
//! prefix structure, so it degenerates to least-estimated-load —
//! `bench --bin prefix_routing` is its experiment.)
//!
//! ```text
//! cargo run --release -p pf-bench --bin cluster_routing [-- --quick]
//! ```

use pf_bench::{default_threads, output_lengths, run_parallel, Cli};
use pf_core::SchedulerConfig;
use pf_metrics::{Align, SimTime, Table};
use pf_sim::cluster::{ClusterReport, ClusterSimulation, RouterPolicy};
use pf_sim::{GpuSpec, ModelSpec, SimConfig};
use pf_workload::{datasets, rng::seeded, LengthSampler, PoissonArrivals};

fn main() {
    let cli = Cli::parse();
    let n = cli.size(1200, 240);
    // Size-skewed service: most requests are short, a third are long-form.
    let input = LengthSampler::uniform(32, 512);
    let output = LengthSampler::mixture(vec![
        (0.7, LengthSampler::uniform(32, 256)),
        (
            0.3,
            LengthSampler::log_normal_median(1500.0, 0.5, 512, 4096),
        ),
    ]);
    let requests = datasets::from_samplers(n, 10, &input, &output, 4096);
    let warmup = output_lengths(&datasets::from_samplers(1000, 11, &input, &output, 4096));
    let mut arrivals: Vec<SimTime> = PoissonArrivals::new(14.0).assign(&mut seeded(12), n);
    arrivals.sort_unstable();

    let policies = [
        RouterPolicy::RoundRobin,
        RouterPolicy::LeastOutstanding,
        RouterPolicy::LeastUsedMemory,
        RouterPolicy::LeastEstimatedLoad,
    ];
    let jobs: Vec<Box<dyn FnOnce() -> ClusterReport + Send>> = policies
        .into_iter()
        .map(|policy| {
            let requests = requests.clone();
            let arrivals = arrivals.clone();
            let warmup = warmup.clone();
            Box::new(move || {
                // A mixed fleet: two large instances, one medium, one small
                // (co-tenancy / heterogeneous GPUs). Count-based balancing
                // overloads the small instance.
                let configs: Vec<SimConfig> = [22_000u64, 22_000, 14_000, 8_000]
                    .iter()
                    .enumerate()
                    .map(|(i, &capacity)| {
                        SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
                            .scheduler(SchedulerConfig::past_future_reserved(0.05))
                            .capacity_override(capacity)
                            .history_warmup(warmup.clone())
                            .record_series(false)
                            .seed(72 + i as u64)
                            .build()
                    })
                    .collect();
                ClusterSimulation::heterogeneous(configs, policy)
                    .run(requests, arrivals)
                    .expect("cluster run")
            }) as Box<dyn FnOnce() -> ClusterReport + Send>
        })
        .collect();
    let reports = run_parallel(jobs, default_threads());

    let mut table = Table::new([
        "router policy",
        "makespan s",
        "cluster goodput tok/s",
        "SLA-ok",
        "evictions",
        "per-instance requests",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Left,
    ]);
    for report in &reports {
        table.row([
            report.policy.label().to_string(),
            format!("{:.1}", report.makespan().as_secs_f64()),
            format!("{:.0}", report.goodput_tok_per_s()),
            format!("{}/{}", report.satisfied(), report.completed()),
            report.evictions().to_string(),
            format!("{:?}", report.routed_per_instance),
        ]);
    }
    cli.emit(
        "cluster_routing",
        "Extension: request forwarding across 4 instances (paper §7)",
        &table,
    );
}
