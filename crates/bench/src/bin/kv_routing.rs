//! Extension: global KV-block index routing versus whole-prefix affinity
//! and pure load routing on multi-tenant, multi-turn chat.
//!
//! Multi-turn sessions repeat their conversation history (the reuse
//! whole-prefix affinity already captures), and sessions of one tenant
//! share a long system prompt — reuse that only exists at *block*
//! granularity, because no session's whole prefix equals another's. This
//! experiment serves the same shared-sysprompt stream
//! (`datasets::shared_sysprompt_chat_timed`) under three routers:
//!
//! * [`RouterPolicy::LeastEstimatedLoad`] — the paper's §7 signal, blind
//!   to caches;
//! * [`RouterPolicy::PrefixAffinity`] — longest cached prefix wins, load
//!   breaks ties (probes every engine's store directly);
//! * [`RouterPolicy::KvOverlap`] — cost-logit routing against the global
//!   event-driven [`pf_kvcache::KvIndexer`], trading cached overlap
//!   against load in one score;
//!
//! in three deployments (colocated fleet, elastic fleet, disaggregated
//! prefill/decode pools), every instance running the same block-granular
//! prefix store so only the routing signal differs. A fourth colocated
//! row runs prefix affinity over the legacy *whole-prefix* store at the
//! same budget — the pre-block stack — to price block granularity itself.
//!
//! The run asserts the headline (overlap routing reaches at least
//! prefix-affinity's TTFT attainment at matched GPU-seconds with a real
//! hit rate, colocated and disaggregated), replays bit-identically —
//! including softmax routing at nonzero temperature — and sweeps the
//! index event-propagation delay to show how stale overlap scores decay
//! toward load-blind routing.
//!
//! ```text
//! cargo run --release -p pf-bench --bin kv_routing [-- --quick]
//! ```

use pf_autoscale::{AutoscaleConfig, PredictorKind};
use pf_bench::{default_threads, pct, run_parallel, Cli};
use pf_core::SchedulerConfig;
use pf_kvcache::PrefixCacheStats;
use pf_metrics::{Align, SimDuration, SimTime, SlaSpec, Table};
use pf_sim::cluster::{ClusterSimulation, RouterPolicy};
use pf_sim::disagg::{DisaggCluster, DisaggConfig};
use pf_sim::elastic::ElasticCluster;
use pf_sim::{DisaggKvIndex, GpuSpec, ModelSpec, SimConfig};
use pf_workload::{datasets, LengthSampler, RequestSpec};

const CAPACITY: u64 = 48_000;
const PREFIX_BUDGET_FRAC: f64 = 0.5;
const BLOCK_TOKENS: u32 = 64;
const COLOC_INSTANCES: usize = 4;

/// The new stack: overlap scored against the global index, argmin pick.
const KV_OVERLAP: RouterPolicy = RouterPolicy::KvOverlap {
    overlap_weight: 1.0,
    temperature: 0.0,
};

const AFFINITY: RouterPolicy = RouterPolicy::PrefixAffinity {
    load_tiebreak: true,
};

/// Reserved-fraction scheduler as in `prefix_routing`: admission packs
/// request KV into the half of memory the cache does not own.
fn config(delay: SimDuration, blocks: bool) -> SimConfig {
    let builder = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future_reserved(PREFIX_BUDGET_FRAC))
        .capacity_override(CAPACITY)
        .sla(SlaSpec::new(
            SimDuration::from_secs(2),
            SimDuration::from_millis(1_500),
        ))
        .record_series(false)
        .seed(67);
    let builder = if blocks {
        builder.prefix_cache_blocks(PREFIX_BUDGET_FRAC, BLOCK_TOKENS)
    } else {
        builder.prefix_cache(PREFIX_BUDGET_FRAC)
    };
    let mut config = builder.build();
    config.router.kv_event_delay = delay;
    config
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Coloc,
    Elastic,
    Disagg,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Coloc => "coloc-4",
            Mode::Elastic => "elastic-2..4",
            Mode::Disagg => "disagg-2p2d",
        }
    }
}

#[derive(Clone)]
struct RowData {
    mode: Mode,
    router: RouterPolicy,
    store: &'static str,
    delay: SimDuration,
    completed: usize,
    prefix: PrefixCacheStats,
    ttft_attainment: f64,
    sla_attainment: f64,
    gpu_seconds: f64,
    makespan_s: f64,
    /// Routing fingerprint for the determinism check.
    routed: Vec<usize>,
}

struct Job {
    mode: Mode,
    router: RouterPolicy,
    store: &'static str,
    delay: SimDuration,
}

fn run_job(job: &Job, requests: Vec<RequestSpec>, arrivals: Vec<SimTime>) -> RowData {
    let config = config(job.delay, job.store == "blocks");
    match job.mode {
        Mode::Coloc => {
            let report = ClusterSimulation::new(config, COLOC_INSTANCES, job.router)
                .run(requests, arrivals)
                .expect("colocated run");
            let makespan = report.makespan().as_secs_f64();
            RowData {
                mode: job.mode,
                router: job.router,
                store: job.store,
                delay: job.delay,
                completed: report.completed(),
                prefix: report.prefix_stats(),
                ttft_attainment: report.ttft_attainment(),
                sla_attainment: report.satisfied() as f64 / report.completed().max(1) as f64,
                gpu_seconds: COLOC_INSTANCES as f64 * makespan,
                makespan_s: makespan,
                routed: report.routed_per_instance.clone(),
            }
        }
        Mode::Elastic => {
            let autoscale = AutoscaleConfig::bounded(2, COLOC_INSTANCES)
                .interval(SimDuration::from_secs(10))
                .warmup(SimDuration::from_secs(20))
                .predictor(PredictorKind::holt())
                .initial_lengths(900.0, 150.0);
            let report = ElasticCluster::new(config, autoscale, 4)
                .router(job.router)
                .run(requests, arrivals)
                .expect("elastic run");
            RowData {
                mode: job.mode,
                router: job.router,
                store: job.store,
                delay: job.delay,
                completed: report.completed(),
                prefix: report.prefix_stats(),
                ttft_attainment: report.ttft_attainment(),
                sla_attainment: report.sla_attainment(),
                gpu_seconds: report.gpu_seconds(),
                makespan_s: report.makespan.as_secs_f64(),
                routed: report.instances.iter().map(|i| i.routed).collect(),
            }
        }
        Mode::Disagg => {
            // The block-store rows publish real KV events from the prefill
            // pool into the exact global index, so KvOverlap sees true
            // per-member block residency instead of a TTL approximation.
            let mut config = config;
            if job.store == "blocks" {
                config.router.disagg_kv_index = DisaggKvIndex::Exact;
            }
            let report = DisaggCluster::new(DisaggConfig::new(config).router(job.router), 2, 2)
                .run(requests, arrivals)
                .expect("disagg run");
            RowData {
                mode: job.mode,
                router: job.router,
                store: job.store,
                delay: job.delay,
                completed: report.completed(),
                prefix: report.prefix_stats,
                ttft_attainment: report.ttft_attainment(),
                sla_attainment: report.sla_attainment(),
                gpu_seconds: report.gpu_seconds(),
                makespan_s: report.makespan.as_secs_f64(),
                routed: report.prefill.instances.iter().map(|i| i.routed).collect(),
            }
        }
    }
}

fn find<'a>(rows: &'a [RowData], mode: Mode, router: RouterPolicy, store: &str) -> &'a RowData {
    rows.iter()
        .find(|r| r.mode == mode && r.router == router && r.store == store)
        .unwrap_or_else(|| panic!("missing row {} / {}", mode.label(), router.label()))
}

fn main() {
    let cli = Cli::parse();

    // Multi-tenant chat: short sessions (the shape that starves
    // whole-prefix reuse — most requests are session openers) behind long
    // tenant system prompts, so the bulk of every opener's prefill is
    // cross-session reusable at block granularity only.
    let n = cli.size(2_400, 600);
    let spec = datasets::SharedSyspromptSpec {
        tenants: 24,
        system_prompt_len: 768,
        chat: datasets::MultiTurnSpec {
            system_prompt_len: 0, // replaced by the tenant prompt
            user_turn: LengthSampler::uniform(32, 160),
            assistant_turn: LengthSampler::uniform(24, 96),
            continue_prob: 0.6,
            concurrent_sessions: 8,
            max_new_tokens: 128,
            max_context: 2_048,
        },
    };
    // Two load points just past each deployment's prefill knee, as in
    // `prefix_routing`; comparisons are always within one deployment at
    // matched GPU-seconds.
    let coloc = datasets::shared_sysprompt_chat_timed(n, 68, &spec, 30.0, 2.0, 2.0);
    let scaled = datasets::shared_sysprompt_chat_timed(n, 68, &spec, 11.0, 2.0, 2.0);
    let stream = |mode: Mode| match mode {
        Mode::Coloc => coloc.clone(),
        Mode::Elastic | Mode::Disagg => scaled.clone(),
    };

    // 3 routers x 3 deployments on the block store, the legacy
    // whole-prefix affinity stack, and the staleness sweep.
    let mut jobs_spec: Vec<Job> = [Mode::Coloc, Mode::Elastic, Mode::Disagg]
        .into_iter()
        .flat_map(|mode| {
            [RouterPolicy::LeastEstimatedLoad, AFFINITY, KV_OVERLAP]
                .into_iter()
                .map(move |router| Job {
                    mode,
                    router,
                    store: "blocks",
                    delay: SimDuration::ZERO,
                })
        })
        .collect();
    jobs_spec.push(Job {
        mode: Mode::Coloc,
        router: AFFINITY,
        store: "whole",
        delay: SimDuration::ZERO,
    });
    let staleness = [
        SimDuration::from_millis(250),
        SimDuration::from_secs(1),
        SimDuration::from_secs(4),
    ];
    for delay in staleness {
        jobs_spec.push(Job {
            mode: Mode::Coloc,
            router: KV_OVERLAP,
            store: "blocks",
            delay,
        });
    }

    let jobs: Vec<Box<dyn FnOnce() -> RowData + Send>> = jobs_spec
        .into_iter()
        .map(|job| {
            let (requests, arrivals) = stream(job.mode);
            Box::new(move || run_job(&job, requests, arrivals))
                as Box<dyn FnOnce() -> RowData + Send>
        })
        .collect();
    let rows = run_parallel(jobs, default_threads());

    let mut table = Table::new([
        "deployment",
        "router",
        "store",
        "delay",
        "completed",
        "hit rate",
        "saved Mtok",
        "TTFT-ok %",
        "SLA-ok %",
        "GPU-seconds",
        "makespan s",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for row in &rows {
        table.row([
            row.mode.label().to_string(),
            row.router.label().to_string(),
            row.store.to_string(),
            format!("{:.2}s", row.delay.as_secs_f64()),
            row.completed.to_string(),
            pct(row.prefix.hit_rate()),
            format!("{:.2}", row.prefix.hit_tokens as f64 / 1e6),
            format!("{:.1}", row.ttft_attainment * 100.0),
            format!("{:.1}", row.sla_attainment * 100.0),
            format!("{:.0}", row.gpu_seconds),
            format!("{:.0}", row.makespan_s),
        ]);
    }
    cli.emit(
        "kv_routing",
        "Global KV-block overlap routing vs prefix affinity vs least-estimated-load \
         (multi-tenant shared-sysprompt chat)",
        &table,
    );

    // Headline: overlap routing reaches at least prefix-affinity's (and
    // load routing's) TTFT attainment at matched GPU-seconds with a real
    // hit rate, colocated and disaggregated.
    for mode in [Mode::Coloc, Mode::Disagg] {
        let load = find(&rows, mode, RouterPolicy::LeastEstimatedLoad, "blocks");
        let affinity = find(&rows, mode, AFFINITY, "blocks");
        let kv = find(&rows, mode, KV_OVERLAP, "blocks");
        assert_eq!(kv.completed, load.completed, "{}", mode.label());
        // The exact global index must match direct store probes — in the
        // colocated fleet and, now that the prefill pool publishes real
        // KV stored/removed events into an exact index, in the
        // disaggregated one too.
        assert!(
            kv.ttft_attainment >= affinity.ttft_attainment,
            "{}: overlap TTFT attainment {:.3} below prefix-affinity {:.3}",
            mode.label(),
            kv.ttft_attainment,
            affinity.ttft_attainment
        );
        assert!(
            kv.ttft_attainment >= load.ttft_attainment,
            "{}: overlap TTFT attainment {:.3} below least-estimated-load {:.3}",
            mode.label(),
            kv.ttft_attainment,
            load.ttft_attainment
        );
        assert!(
            kv.gpu_seconds <= load.gpu_seconds * 1.02,
            "{}: overlap spent {:.0} GPU-s vs {:.0} — not a matched comparison",
            mode.label(),
            kv.gpu_seconds,
            load.gpu_seconds
        );
        assert!(
            kv.prefix.hit_rate() > 0.0,
            "{}: overlap routing produced no hits",
            mode.label()
        );
        assert!(
            kv.prefix.hit_tokens > load.prefix.hit_tokens,
            "{}: overlap saved {} tokens vs {} under blind routing",
            mode.label(),
            kv.prefix.hit_tokens,
            load.prefix.hit_tokens
        );
    }
    // Block granularity itself: the overlap stack must out-reuse the
    // legacy whole-prefix affinity stack, which cannot see cross-session
    // system-prompt sharing.
    let kv_coloc = find(&rows, Mode::Coloc, KV_OVERLAP, "blocks");
    let whole = find(&rows, Mode::Coloc, AFFINITY, "whole");
    assert!(
        kv_coloc.prefix.hit_tokens > whole.prefix.hit_tokens,
        "block overlap saved {} tokens vs whole-prefix affinity's {}",
        kv_coloc.prefix.hit_tokens,
        whole.prefix.hit_tokens
    );
    // Elastic sanity: the index tracks members behind the autoscaler.
    let elastic = find(&rows, Mode::Elastic, KV_OVERLAP, "blocks");
    assert!(elastic.prefix.hit_rate() > 0.0, "elastic: no cache hits");

    // Staleness: a never-propagating index cannot beat a fresh one. The
    // sweep rows print above; the endpoints must order.
    let stalest = rows
        .iter()
        .filter(|r| r.router == KV_OVERLAP && r.mode == Mode::Coloc)
        .max_by_key(|r| r.delay)
        .expect("sweep rows");
    assert!(
        kv_coloc.prefix.hit_tokens >= stalest.prefix.hit_tokens,
        "fresh index saved {} tokens but {:.2}s-stale saved {}",
        kv_coloc.prefix.hit_tokens,
        stalest.delay.as_secs_f64(),
        stalest.prefix.hit_tokens
    );

    // Deterministic replay: argmin overlap routing in coloc and disagg,
    // and softmax routing (nonzero temperature) in coloc, are all
    // bit-identical across reruns.
    for mode in [Mode::Coloc, Mode::Disagg] {
        let first = find(&rows, mode, KV_OVERLAP, "blocks");
        let (requests, arrivals) = stream(mode);
        let replay = run_job(
            &Job {
                mode,
                router: KV_OVERLAP,
                store: "blocks",
                delay: SimDuration::ZERO,
            },
            requests,
            arrivals,
        );
        assert_eq!(
            replay.makespan_s,
            first.makespan_s,
            "{}: non-deterministic makespan",
            mode.label()
        );
        assert_eq!(
            replay.routed,
            first.routed,
            "{}: non-deterministic routing",
            mode.label()
        );
        assert_eq!(
            replay.prefix,
            first.prefix,
            "{}: non-deterministic prefix-cache stats",
            mode.label()
        );
    }
    let softmax_job = || Job {
        mode: Mode::Coloc,
        router: RouterPolicy::KvOverlap {
            overlap_weight: 1.0,
            temperature: 0.3,
        },
        store: "blocks",
        delay: SimDuration::from_millis(250),
    };
    let (requests, arrivals) = stream(Mode::Coloc);
    let soft_a = run_job(&softmax_job(), requests.clone(), arrivals.clone());
    let soft_b = run_job(&softmax_job(), requests, arrivals);
    assert_eq!(soft_a.routed, soft_b.routed, "softmax routing must replay");
    assert_eq!(soft_a.makespan_s, soft_b.makespan_s);
    assert_eq!(soft_a.prefix, soft_b.prefix);

    let load_coloc = find(
        &rows,
        Mode::Coloc,
        RouterPolicy::LeastEstimatedLoad,
        "blocks",
    );
    println!(
        "[ok] kv-overlap: coloc TTFT-SLA {:.1}% vs affinity {:.1}% vs load {:.1}% at hit rate {}; \
         softmax + argmin replay deterministic; staleness sweep ordered",
        kv_coloc.ttft_attainment * 100.0,
        find(&rows, Mode::Coloc, AFFINITY, "blocks").ttft_attainment * 100.0,
        load_coloc.ttft_attainment * 100.0,
        pct(kv_coloc.prefix.hit_rate()),
    );
}
