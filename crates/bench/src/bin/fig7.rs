//! Figure 7: goodput vs. number of closed-loop clients for the three
//! scheduler classes, across four datasets and three model scales
//! (A100-80G; 4-way tensor parallel for 70B).
//!
//! ```text
//! cargo run --release -p pf-bench --bin fig7 [-- --quick]
//! ```

use pf_bench::{default_threads, output_lengths, run_parallel, Cli};
use pf_core::SchedulerConfig;
use pf_metrics::{Align, SlaSpec, Table};
use pf_sim::{GpuSpec, ModelSpec, SimConfig, SimReport, Simulation};
use pf_workload::{datasets, ClosedLoopClients, RequestSpec};

struct Case {
    model: &'static str,
    dataset: &'static str,
    scheduler: String,
    clients: usize,
    report: SimReport,
}

fn main() {
    let cli = Cli::parse();
    let models: [(&'static str, ModelSpec, u32, SlaSpec, &[usize]); 3] = [
        (
            "Llama2-7B",
            ModelSpec::llama2_7b(),
            1,
            SlaSpec::chat_7b(),
            &[10, 20, 30, 40, 60, 80, 100],
        ),
        (
            "Llama2-13B",
            ModelSpec::llama2_13b(),
            1,
            SlaSpec::chat_7b(),
            &[10, 20, 30, 40, 60, 80, 100],
        ),
        (
            "Llama2-70B (4xA100)",
            ModelSpec::llama2_70b(),
            4,
            SlaSpec::chat_70b(),
            &[100, 200, 300, 400, 500],
        ),
    ];
    type DatasetFn = fn(usize, u64) -> Vec<RequestSpec>;
    let workloads: [(&'static str, DatasetFn); 4] = [
        ("ShareGPT-o1", datasets::sharegpt_o1),
        ("Distribution-1", datasets::distribution_1),
        ("Distribution-2", datasets::distribution_2),
        ("Distribution-3", datasets::distribution_3),
    ];
    let schedulers = [
        SchedulerConfig::conservative(),
        SchedulerConfig::aggressive(0.99),
        SchedulerConfig::past_future_reserved(0.03),
    ];

    let mut jobs: Vec<Box<dyn FnOnce() -> Case + Send>> = Vec::new();
    for (model_name, model, tp, sla, clients_list) in models {
        let clients_list: Vec<usize> = if cli.quick {
            clients_list.iter().copied().step_by(2).collect()
        } else {
            clients_list.to_vec()
        };
        for (dataset_name, builder) in workloads {
            let warmup = output_lengths(&builder(1000, 888));
            for scheduler in schedulers.clone() {
                for &clients in &clients_list {
                    // Fixed workload size per curve (the paper measures a
                    // fixed test window at every concurrency level, which
                    // is what makes goodput plateau beyond saturation).
                    let n_requests = if tp > 1 {
                        cli.size(1000, 250)
                    } else {
                        cli.size(400, 150)
                    };
                    let requests = builder(n_requests, 3);
                    let warmup = warmup.clone();
                    let scheduler = scheduler.clone();
                    jobs.push(Box::new(move || {
                        let config = SimConfig::builder(model, GpuSpec::a100_80g())
                            .tensor_parallel(tp)
                            .scheduler(scheduler)
                            .sla(sla)
                            .history_warmup(warmup)
                            .record_series(false)
                            .seed(40)
                            .build();
                        let report = Simulation::closed_loop(
                            config,
                            requests,
                            ClosedLoopClients::new(clients),
                        )
                        .run()
                        .expect("fig7 simulation");
                        Case {
                            model: model_name,
                            dataset: dataset_name,
                            scheduler: report.scheduler_name.clone(),
                            clients,
                            report,
                        }
                    }));
                }
            }
        }
    }

    let cases = run_parallel(jobs, default_threads());
    let mut table = Table::new([
        "model",
        "dataset",
        "scheduler",
        "clients",
        "goodput tok/s",
        "throughput tok/s",
        "SLA-ok %",
        "evicted %",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for case in &cases {
        table.row([
            case.model.to_string(),
            case.dataset.to_string(),
            case.scheduler.clone(),
            case.clients.to_string(),
            format!("{:.0}", case.report.goodput_tok_per_s()),
            format!("{:.0}", case.report.throughput()),
            format!("{:.0}", case.report.goodput.satisfied_fraction() * 100.0),
            format!("{:.1}", case.report.evicted_request_pct()),
        ]);
    }
    cli.emit("fig7", "Figure 7: goodput vs. concurrent clients", &table);
}
