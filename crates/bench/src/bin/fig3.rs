//! Figure 3: cosine similarity of output-length distributions between time
//! windows (1000 requests, no overlap) across six trace archetypes.
//!
//! Emits the per-trace summary plus the full similarity matrices
//! (`fig3_matrix_<trace>.csv`).
//!
//! ```text
//! cargo run --release -p pf-bench --bin fig3 [-- --quick]
//! ```

use pf_bench::Cli;
use pf_metrics::{Align, Binning, Table, WindowedLengths};
use pf_workload::trace::{generate_output_lengths, TraceArchetype};

fn main() {
    let cli = Cli::parse();
    let n = cli.size(60_000, 12_000);
    let mut summary = Table::new([
        "trace",
        "windows",
        "adjacent (diagonal) sim",
        "global sim",
        "globally stable (paper)",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Left,
    ]);

    for archetype in TraceArchetype::ALL {
        let lengths = generate_output_lengths(archetype, n, 2024);
        let windows = WindowedLengths::partition(&lengths, 1000, Binning::Log2);
        let matrix = windows.similarity_matrix();
        summary.row([
            archetype.label().to_string(),
            windows.n_windows().to_string(),
            format!("{:.3}", matrix.diagonal_mean().unwrap_or(0.0)),
            format!("{:.3}", matrix.off_diagonal_mean().unwrap_or(0.0)),
            if archetype.is_globally_stable() {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);

        // Full matrix for heatmap plotting.
        let k = matrix.len();
        let header: Vec<String> = std::iter::once("window".to_string())
            .chain((0..k).map(|j| format!("w{j}")))
            .collect();
        let mut full = Table::new(header);
        for i in 0..k {
            let row: Vec<String> = std::iter::once(format!("w{i}"))
                .chain((0..k).map(|j| format!("{:.4}", matrix.get(i, j))))
                .collect();
            full.row(row);
        }
        pf_bench::write_artifacts(
            &cli.out_dir,
            &format!("fig3_matrix_{}", archetype.label()),
            &full,
        );
    }
    cli.emit(
        "fig3",
        "Figure 3: window-to-window output-length similarity per trace archetype",
        &summary,
    );
    println!(
        "Adjacent windows are similar everywhere; only the API trace mixes tasks\n\
         whose proportions drift, depressing global similarity (paper panel b)."
    );
}
