//! Multi-seed robustness sweep: every headline scenario × a bank of
//! workload seeds, run on parallel workers, aggregated into per-metric
//! mean/sd/min/max rows.
//!
//! Single-seed experiments answer "what does the policy do"; this harness
//! answers "how stable is that answer across workloads". Results are
//! simulated metrics only (attainment, goodput, memory, makespan) —
//! wall-clock self-profiling lives in `perf_baseline`. The aggregation is
//! a pure function of the run set ([`pf_bench::sweep::aggregate`] sorts
//! by scenario and seed before folding), so the emitted CSV is
//! bit-identical no matter how the worker threads interleave — safe to
//! diff in CI.
//!
//! ```text
//! cargo run --release -p pf-bench --bin sweep [-- --quick] [--seeds N]
//! ```

use pf_autoscale::{AutoscaleConfig, PredictorKind};
use pf_bench::sweep::{aggregate, SeedRun};
use pf_bench::{default_threads, run_parallel, Cli};
use pf_core::SchedulerConfig;
use pf_metrics::{SimDuration, SimTime, Table};
use pf_sim::disagg::{DisaggCluster, DisaggConfig};
use pf_sim::elastic::ElasticCluster;
use pf_sim::{GpuSpec, ModelSpec, SimConfig, Simulation};
use pf_workload::datasets;

fn base_config(capacity: u64, seed: u64) -> SimConfig {
    SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(capacity)
        .record_series(false)
        .seed(seed)
        .build()
}

fn steady_arrivals(n: usize, gap_ms: u64) -> Vec<SimTime> {
    (0..n)
        .map(|i| SimTime::from_millis(gap_ms * i as u64))
        .collect()
}

fn metric(name: &str, value: f64) -> (String, f64) {
    (name.to_string(), value)
}

fn coloc_run(n: usize, seed: u64) -> SeedRun {
    let requests = datasets::sharegpt(n, seed);
    let report = Simulation::offline(base_config(40_000, seed), requests)
        .run()
        .expect("coloc sweep run");
    SeedRun {
        scenario: "coloc".to_string(),
        seed,
        metrics: vec![
            metric("goodput_tok_per_s", report.goodput_tok_per_s()),
            metric("throughput_tok_per_s", report.throughput()),
            metric("sla_attainment", report.goodput.satisfied_fraction()),
            metric("evicted_req_pct", report.evicted_request_pct()),
            metric("avg_consumed_frac", report.avg_consumed_frac),
            metric("makespan_s", report.makespan.as_secs_f64()),
        ],
    }
}

fn disagg_run(n: usize, seed: u64) -> SeedRun {
    let requests = datasets::sharegpt(n, seed);
    let arrivals = steady_arrivals(n, 20);
    let config = DisaggConfig::new(base_config(30_000, seed));
    let report = DisaggCluster::new(config, 2, 2)
        .run(requests, arrivals)
        .expect("disagg sweep run");
    SeedRun {
        scenario: "disagg".to_string(),
        seed,
        metrics: vec![
            metric("goodput_tok_per_s", report.goodput_tok_per_s()),
            metric("sla_attainment", report.sla_attainment()),
            metric("ttft_attainment", report.ttft_attainment()),
            metric("gpu_seconds", report.gpu_seconds()),
            metric("makespan_s", report.makespan.as_secs_f64()),
        ],
    }
}

fn elastic_run(n: usize, seed: u64) -> SeedRun {
    let requests = datasets::sharegpt(n, seed);
    let arrivals = steady_arrivals(n, 30);
    let autoscale = AutoscaleConfig::bounded(1, 4)
        .interval(SimDuration::from_secs(10))
        .warmup(SimDuration::from_secs(15))
        .predictor(PredictorKind::holt())
        .initial_lengths(512.0, 64.0);
    let report = ElasticCluster::new(base_config(20_000, seed), autoscale, 1)
        .run(requests, arrivals)
        .expect("elastic sweep run");
    SeedRun {
        scenario: "elastic".to_string(),
        seed,
        metrics: vec![
            metric("goodput_tok_per_s", report.goodput_tok_per_s()),
            metric("sla_attainment", report.sla_attainment()),
            metric("gpu_seconds", report.gpu_seconds()),
            metric("peak_replicas", report.peak_replicas() as f64),
            metric("makespan_s", report.makespan.as_secs_f64()),
        ],
    }
}

fn main() {
    let (cli, extra) = Cli::parse_extra(&["--seeds"]);
    let seeds: u64 = extra
        .iter()
        .find(|(flag, _)| flag == "--seeds")
        .map_or_else(
            || if cli.quick { 3 } else { 8 },
            |(_, value)| value.parse().expect("--seeds takes a positive integer"),
        )
        .max(1);

    let coloc_n = cli.size(600, 120);
    let pool_n = cli.size(400, 100);
    type Job = Box<dyn FnOnce() -> SeedRun + Send>;
    let mut jobs: Vec<Job> = Vec::new();
    for seed in 1..=seeds {
        jobs.push(Box::new(move || coloc_run(coloc_n, seed)));
        jobs.push(Box::new(move || disagg_run(pool_n, seed)));
        jobs.push(Box::new(move || elastic_run(pool_n, seed)));
    }
    let total = jobs.len();
    let runs = run_parallel(jobs, default_threads());
    let rows = aggregate(&runs);

    let mut table = Table::new(["scenario", "metric", "mean", "sd", "min", "max", "seeds"]);
    for row in &rows {
        table.row([
            row.scenario.clone(),
            row.metric.clone(),
            format!("{:.3}", row.summary.mean),
            format!("{:.3}", row.summary.std_dev),
            format!("{:.3}", row.summary.min),
            format!("{:.3}", row.summary.max),
            row.summary.count.to_string(),
        ]);
    }
    cli.emit(
        "sweep",
        &format!("Multi-seed sweep ({seeds} seeds × 3 scenarios, {total} runs)"),
        &table,
    );
}
