//! Extension: SLA-driven elastic autoscaling versus static fleets.
//!
//! Two load shapes — a smooth diurnal cycle and an on/off bursty square
//! wave — are served by static fleets of 1, 2 and 4 instances and by the
//! elastic planner (`pf-autoscale`) bounded to [1, 4] with each of its
//! predictors. Static fleets are modelled as the degenerate elastic
//! configuration `min == max`, so provisioning cost is accounted
//! identically everywhere.
//!
//! The table reports goodput, SLA attainment and GPU-seconds provisioned.
//! The run asserts the headline claim: on the diurnal scenario the elastic
//! planner matches the static-max fleet's SLA attainment within 5 points
//! while provisioning strictly fewer GPU-seconds — and does so
//! deterministically.
//!
//! ```text
//! cargo run --release -p pf-bench --bin autoscale [-- --quick]
//! ```

use pf_autoscale::{AutoscaleConfig, PredictorKind};
use pf_bench::{default_threads, run_parallel, Cli};
use pf_core::SchedulerConfig;
use pf_metrics::{Align, SimDuration, SimTime, Table};
use pf_sim::elastic::{ElasticCluster, ElasticReport};
use pf_sim::{GpuSpec, ModelSpec, SimConfig};
use pf_workload::{datasets, rng::seeded, RateProfile, RequestSpec};

const MIN_REPLICAS: usize = 1;
const MAX_REPLICAS: usize = 4;
const INTERVAL_S: u64 = 10;
const WARMUP_S: u64 = 20;
const PERIOD_S: u64 = 180;

#[derive(Clone, Copy)]
enum Fleet {
    Static(usize),
    Elastic(PredictorKind),
}

impl Fleet {
    fn label(&self) -> String {
        match self {
            Fleet::Static(n) => format!("static-{n}"),
            Fleet::Elastic(kind) => format!("elastic-{}", kind.label()),
        }
    }
}

fn base_config() -> SimConfig {
    SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(6_000)
        .record_series(false)
        .seed(41)
        .build()
}

fn run_fleet(fleet: Fleet, requests: Vec<RequestSpec>, arrivals: Vec<SimTime>) -> ElasticReport {
    let config = match fleet {
        Fleet::Static(n) => AutoscaleConfig::bounded(n, n),
        Fleet::Elastic(kind) => {
            AutoscaleConfig::bounded(MIN_REPLICAS, MAX_REPLICAS).predictor(kind)
        }
    }
    .interval(SimDuration::from_secs(INTERVAL_S))
    .warmup(SimDuration::from_secs(WARMUP_S))
    .initial_lengths(160.0, 224.0);
    let initial = match fleet {
        Fleet::Static(n) => n,
        Fleet::Elastic(_) => MIN_REPLICAS,
    };
    ElasticCluster::new(base_config(), config, initial)
        .run(requests, arrivals)
        .expect("fleet run")
}

fn fleets() -> Vec<Fleet> {
    vec![
        Fleet::Static(1),
        Fleet::Static(2),
        Fleet::Static(MAX_REPLICAS),
        Fleet::Elastic(PredictorKind::Constant),
        Fleet::Elastic(PredictorKind::ewma()),
        Fleet::Elastic(PredictorKind::holt()),
        Fleet::Elastic(PredictorKind::holt_winters(
            (PERIOD_S / INTERVAL_S) as usize,
        )),
    ]
}

fn scenario_table(
    cli: &Cli,
    name: &str,
    title: &str,
    requests: &[RequestSpec],
    arrivals: &[SimTime],
) -> Vec<(String, ElasticReport)> {
    let jobs: Vec<Box<dyn FnOnce() -> (String, ElasticReport) + Send>> = fleets()
        .into_iter()
        .map(|fleet| {
            let requests = requests.to_vec();
            let arrivals = arrivals.to_vec();
            Box::new(move || (fleet.label(), run_fleet(fleet, requests, arrivals)))
                as Box<dyn FnOnce() -> (String, ElasticReport) + Send>
        })
        .collect();
    let reports = run_parallel(jobs, default_threads());

    let mut table = Table::new([
        "fleet",
        "completed",
        "SLA-ok %",
        "goodput tok/s",
        "GPU-seconds",
        "peak",
        "makespan s",
        "scaling events",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for (label, report) in &reports {
        table.row([
            label.clone(),
            report.completed().to_string(),
            format!("{:.1}", report.sla_attainment() * 100.0),
            format!("{:.0}", report.goodput_tok_per_s()),
            format!("{:.0}", report.gpu_seconds()),
            report.peak_replicas().to_string(),
            format!("{:.0}", report.makespan.as_secs_f64()),
            report.events.len().to_string(),
        ]);
    }
    cli.emit(name, title, &table);
    reports
}

fn main() {
    let cli = Cli::parse();

    // Diurnal: three cycles from 2 to 12 req/s (one instance saturates
    // near 7 req/s of this workload).
    let n_diurnal = cli.size(3_600, 700);
    let diurnal_requests = datasets::short_chat(n_diurnal, 42);
    let diurnal = RateProfile::diurnal(2.0, 12.0, SimDuration::from_secs(PERIOD_S));
    let diurnal_arrivals = diurnal.assign(&mut seeded(43), n_diurnal);
    let diurnal_reports = scenario_table(
        &cli,
        "autoscale_diurnal",
        "Elastic autoscaling: diurnal load (2 -> 12 req/s, 180 s period)",
        &diurnal_requests,
        &diurnal_arrivals,
    );

    // Bursty: 12 req/s bursts of 40 s every 180 s over a 1 req/s floor.
    let n_bursty = cli.size(1_800, 400);
    let bursty_requests = datasets::short_chat(n_bursty, 44);
    let bursty = RateProfile::bursty(
        1.0,
        12.0,
        SimDuration::from_secs(40),
        SimDuration::from_secs(PERIOD_S),
    );
    let bursty_arrivals = bursty.assign(&mut seeded(45), n_bursty);
    let bursty_reports = scenario_table(
        &cli,
        "autoscale_bursty",
        "Elastic autoscaling: bursty load (1 req/s floor, 12 req/s bursts)",
        &bursty_requests,
        &bursty_arrivals,
    );

    // Headline checks (diurnal): the trend-following elastic fleet matches
    // the static-max fleet's SLA attainment within 5 points at strictly
    // lower provisioned cost, and the run replays bit-identically.
    let by_label = |label: &str| {
        diurnal_reports
            .iter()
            .find(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("missing fleet {label}"))
    };
    let static_max = &by_label(&format!("static-{MAX_REPLICAS}")).1;
    let elastic = &by_label("elastic-holt").1;
    let attainment_gap = static_max.sla_attainment() - elastic.sla_attainment();
    assert!(
        attainment_gap <= 0.05,
        "elastic SLA attainment {:.3} trails static-max {:.3} by more than 5 points",
        elastic.sla_attainment(),
        static_max.sla_attainment()
    );
    assert!(
        elastic.gpu_seconds() < static_max.gpu_seconds(),
        "elastic provisioned {:.0} GPU-s, static-max {:.0}",
        elastic.gpu_seconds(),
        static_max.gpu_seconds()
    );
    // Bursty checks: the planner forecasts `warmup/interval + 1` steps
    // ahead and provisions against the horizon maximum, so the
    // trend-extrapolating predictor must beat the one-step-lagging EWMA on
    // step bursts (a burst still ramping at planning time is extrapolated
    // across the warm-up delay instead of chased one interval at a time) —
    // while still provisioning strictly fewer GPU-seconds than static-max.
    let bursty_by_label = |label: &str| {
        &bursty_reports
            .iter()
            .find(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("missing fleet {label}"))
            .1
    };
    let bursty_holt = bursty_by_label("elastic-holt");
    let bursty_ewma = bursty_by_label("elastic-ewma");
    let bursty_static_max = bursty_by_label(&format!("static-{MAX_REPLICAS}"));
    if cli.quick {
        // The quick run sees a single burst, which no predictor can
        // anticipate cold: require parity only.
        assert!(
            bursty_holt.sla_attainment() >= bursty_ewma.sla_attainment(),
            "horizon-forecasting holt ({:.3}) fell below one-step ewma ({:.3}) on step bursts",
            bursty_holt.sla_attainment(),
            bursty_ewma.sla_attainment()
        );
    } else {
        assert!(
            bursty_holt.sla_attainment() > bursty_ewma.sla_attainment(),
            "horizon-forecasting holt ({:.3}) no longer beats one-step ewma ({:.3}) on step bursts",
            bursty_holt.sla_attainment(),
            bursty_ewma.sla_attainment()
        );
    }
    assert!(
        bursty_holt.gpu_seconds() < bursty_static_max.gpu_seconds(),
        "elastic-holt provisioned {:.0} GPU-s on bursty, static-max {:.0}",
        bursty_holt.gpu_seconds(),
        bursty_static_max.gpu_seconds()
    );
    let replay = run_fleet(
        Fleet::Elastic(PredictorKind::holt()),
        diurnal_requests.clone(),
        diurnal_arrivals.clone(),
    );
    assert_eq!(
        replay.makespan, elastic.makespan,
        "non-deterministic makespan"
    );
    assert_eq!(
        replay.gpu_seconds(),
        elastic.gpu_seconds(),
        "non-deterministic GPU-seconds"
    );
    assert_eq!(replay.events, elastic.events, "non-deterministic scaling");
    println!(
        "[ok] bursty: horizon-forecasting holt {:.1}% vs ewma {:.1}% SLA at {:.0} GPU-s (static-{} {:.0})",
        bursty_holt.sla_attainment() * 100.0,
        bursty_ewma.sla_attainment() * 100.0,
        bursty_holt.gpu_seconds(),
        MAX_REPLICAS,
        bursty_static_max.gpu_seconds(),
    );
    println!(
        "[ok] elastic-holt: SLA {:.1}% (static-{} {:.1}%), {:.0} GPU-s vs {:.0} ({:.0}% saved), deterministic replay",
        elastic.sla_attainment() * 100.0,
        MAX_REPLICAS,
        static_max.sla_attainment() * 100.0,
        elastic.gpu_seconds(),
        static_max.gpu_seconds(),
        (1.0 - elastic.gpu_seconds() / static_max.gpu_seconds()) * 100.0,
    );
}
