//! Extension: slack-aware deadline scheduling across the cluster runners.
//!
//! PR 4 gave requests deadlines but only as a guillotine: engines cancel
//! expired queued requests. This scenario exercises the scheduling move on
//! top — `QueueOrder::LeastSlackFirst` admits by *remaining deadline
//! slack* (and early-drops requests that can no longer make it) — on
//! mixed-deadline traffic: tight-deadline interactive chat interleaved
//! with lax batch summarization (`datasets::mixed_deadline`). Under FIFO
//! a chat request milliseconds from its deadline waits behind a 3k-token
//! document with a minute of slack, and the chat class dies in the queue.
//!
//! The comparison runs at matched provisioning in all three topologies —
//! a fixed 2-instance colocated cluster, a fixed 1-prefill/1-decode
//! disaggregated split, and a fixed-size (min = max = 2) elastic fleet —
//! and asserts, per topology:
//!
//! * LeastSlackFirst times out strictly fewer requests than FIFO;
//! * deadline attainment (fraction of requests whose first token landed
//!   within their own deadline; timed-out and unserved requests count as
//!   misses) does not drop;
//! * replay is bit-identical (same workload, same report, twice).
//!
//! ```text
//! cargo run --release -p pf-bench --bin deadline_sched [-- --quick]
//! ```

use std::collections::HashMap;

use pf_autoscale::{AutoscaleConfig, PredictorKind};
use pf_bench::{pct, Cli};
use pf_core::SchedulerConfig;
use pf_metrics::{Align, SimDuration, SimTime, Table};
use pf_sim::cluster::{ClusterSimulation, RouterPolicy};
use pf_sim::disagg::{DisaggCluster, DisaggConfig};
use pf_sim::elastic::ElasticCluster;
use pf_sim::{GpuSpec, ModelSpec, QueueOrder, RequestOutcome, SimConfig};
use pf_workload::{datasets, RequestSpec};

/// One topology × queue-order measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RunResult {
    completed: usize,
    timed_out: usize,
    /// Fraction of all issued requests whose first token landed within
    /// their own deadline (timed-out / unserved requests are misses).
    attainment: f64,
    gpu_seconds: f64,
    makespan_s: f64,
}

/// Deadline attainment over every issued request: an outcome attains iff
/// its TTFT is within the deadline its spec carried; requests without an
/// outcome (timed out, unserved) are misses.
fn deadline_attainment<'a>(
    outcomes: impl Iterator<Item = &'a RequestOutcome>,
    requests: &[RequestSpec],
) -> f64 {
    let deadlines: HashMap<u64, SimDuration> = requests
        .iter()
        .filter_map(|r| r.deadline.map(|d| (r.id.raw(), d)))
        .collect();
    let attained = outcomes
        .filter(|o| {
            let Some(deadline) = deadlines.get(&o.id) else {
                return true;
            };
            o.timing.ttft().is_some_and(|ttft| ttft <= *deadline)
        })
        .count();
    attained as f64 / requests.len() as f64
}

fn base_config(order: QueueOrder) -> SimConfig {
    SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(8_000)
        .record_series(false)
        .queue_order(order)
        .seed(72)
        .build()
}

fn steady(n: usize, gap_ms: u64) -> Vec<SimTime> {
    (0..n)
        .map(|i| SimTime::from_millis(gap_ms * i as u64))
        .collect()
}

fn coloc_run(order: QueueOrder, requests: &[RequestSpec], arrivals: &[SimTime]) -> RunResult {
    let report = ClusterSimulation::new(base_config(order), 2, RouterPolicy::LeastEstimatedLoad)
        .run(requests.to_vec(), arrivals.to_vec())
        .expect("colocated run");
    let makespan_s = report.makespan().as_secs_f64();
    RunResult {
        completed: report.completed(),
        timed_out: report.instances.iter().map(|r| r.timed_out).sum(),
        attainment: deadline_attainment(
            report.instances.iter().flat_map(|r| r.outcomes.iter()),
            requests,
        ),
        // Fixed fleet: both instances are provisioned for the whole run.
        gpu_seconds: 2.0 * makespan_s,
        makespan_s,
    }
}

fn disagg_run(order: QueueOrder, requests: &[RequestSpec], arrivals: &[SimTime]) -> RunResult {
    let mut base = base_config(order);
    base.capacity_override = Some(12_000);
    let report = DisaggCluster::new(DisaggConfig::new(base), 1, 1)
        .run(requests.to_vec(), arrivals.to_vec())
        .expect("disagg run");
    RunResult {
        completed: report.completed(),
        timed_out: report.timed_out,
        attainment: deadline_attainment(report.outcomes.iter(), requests),
        gpu_seconds: report.gpu_seconds(),
        makespan_s: report.makespan.as_secs_f64(),
    }
}

fn elastic_run(order: QueueOrder, requests: &[RequestSpec], arrivals: &[SimTime]) -> RunResult {
    let autoscale = AutoscaleConfig::bounded(2, 2)
        .interval(SimDuration::from_secs(10))
        .warmup(SimDuration::from_secs(20))
        .predictor(PredictorKind::holt())
        .initial_lengths(160.0, 224.0);
    let report = ElasticCluster::new(base_config(order), autoscale, 2)
        .run(requests.to_vec(), arrivals.to_vec())
        .expect("elastic run");
    RunResult {
        completed: report.completed(),
        timed_out: report.timed_out(),
        attainment: deadline_attainment(
            report
                .instances
                .iter()
                .flat_map(|i| i.report.outcomes.iter()),
            requests,
        ),
        gpu_seconds: report.gpu_seconds(),
        makespan_s: report.makespan.as_secs_f64(),
    }
}

fn main() {
    let cli = Cli::parse();

    // (label, workload seed, (n, gap ms) full, (n, gap ms) quick,
    // runner). Rates are tuned so each topology's queue transiently
    // outruns the tight 5 s chat deadline under FIFO while the lax 60 s
    // class stays feasible.
    type Runner = fn(QueueOrder, &[RequestSpec], &[SimTime]) -> RunResult;
    type Scenario = (&'static str, u64, (usize, u64), (usize, u64), Runner);
    let scenarios: [Scenario; 3] = [
        ("coloc-2x", 71, (300, 60), (140, 50), coloc_run),
        ("disagg-1p1d", 33, (300, 25), (150, 25), disagg_run),
        ("elastic-2", 73, (400, 60), (200, 50), elastic_run),
    ];

    let mut table = Table::new([
        "topology",
        "order",
        "completed",
        "timed out",
        "deadline att.",
        "GPU-seconds",
        "makespan s",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);

    for (label, seed, full, quick, runner) in scenarios {
        let (n, gap_ms) = if cli.quick { quick } else { full };
        let requests = datasets::mixed_deadline(n, seed);
        let arrivals = steady(n, gap_ms);
        let fifo = runner(QueueOrder::Fifo, &requests, &arrivals);
        let lsf = runner(QueueOrder::least_slack(), &requests, &arrivals);

        // Deterministic replay: the identical run must reproduce the
        // identical report, bit for bit.
        for (order, first) in [(QueueOrder::Fifo, fifo), (QueueOrder::least_slack(), lsf)] {
            let replay = runner(order, &requests, &arrivals);
            assert_eq!(replay, first, "{label}/{} replay diverged", order.label());
        }

        assert!(
            fifo.timed_out > 0,
            "{label}: the scenario must pressure deadlines under FIFO"
        );
        assert!(
            lsf.timed_out < fifo.timed_out,
            "{label}: least-slack-first timed out {} vs FIFO {}",
            lsf.timed_out,
            fifo.timed_out
        );
        assert!(
            lsf.attainment >= fifo.attainment,
            "{label}: least-slack-first attainment {:.3} fell below FIFO {:.3}",
            lsf.attainment,
            fifo.attainment
        );
        // Matched provisioning: identical fleet sizes; the provisioned
        // time may stretch only by what serving the rescued requests
        // costs.
        assert!(
            lsf.gpu_seconds <= fifo.gpu_seconds * 1.25,
            "{label}: least-slack-first spent {:.0} GPU-s vs FIFO {:.0}",
            lsf.gpu_seconds,
            fifo.gpu_seconds
        );

        for (order, result) in [("fifo", fifo), ("least-slack", lsf)] {
            table.row([
                label.to_string(),
                order.to_string(),
                result.completed.to_string(),
                result.timed_out.to_string(),
                pct(result.attainment),
                format!("{:.0}", result.gpu_seconds),
                format!("{:.0}", result.makespan_s),
            ]);
        }
    }

    cli.emit(
        "deadline_sched",
        "Slack-aware deadline scheduling: FIFO vs LeastSlackFirst on mixed-deadline traffic",
        &table,
    );
    println!(
        "[ok] least-slack-first strictly reduced timeouts and held deadline attainment \
         in all three topologies, with bit-identical replay"
    );
}
