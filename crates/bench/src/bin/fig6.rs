//! Figure 6: behaviour of the three scheduler classes on the paper's toy
//! scenario — system token capacity 21, two requests mid-flight, one
//! queued request arriving at time t.
//!
//! * the **aggressive** scheduler admits at `t` and later pays an eviction;
//! * the **conservative** scheduler waits until its worst-case budget fits
//!   (long after a request has finished);
//! * the **Past-Future** scheduler admits at the earliest step whose future
//!   required memory fits — a few steps of queueing, zero evictions.
//!
//! The timeline is replayed at decode-step granularity against the real
//! `Scheduler` implementations.
//!
//! ```text
//! cargo run --release -p pf-bench --bin fig6
//! ```

use pf_bench::Cli;
use pf_core::{MemoryState, QueuedRequest, RunningRequest, Scheduler, SchedulerConfig};
use pf_metrics::{Align, Table};

const CAPACITY: u64 = 21;
const MAX_NEW: u32 = 8;

#[derive(Debug, Clone, Copy)]
struct ToyRequest {
    id: u64,
    input: u32,
    output: u32,
    generated: u32,
}

impl ToyRequest {
    fn committed(&self) -> u64 {
        u64::from(self.input + self.generated)
    }
}

#[derive(Debug, Default)]
struct Outcome {
    admit_step: Option<u32>,
    evictions: u32,
    finish_step: u32,
}

/// Replays the toy timeline: requests A and B are mid-flight at step 0, the
/// new request N is queued. Decode-step granularity, LIFO eviction,
/// admission modelled at the post-prefill state (like the engine).
fn replay(scheduler: &mut dyn Scheduler, log: &mut Table) -> Outcome {
    let mut running = vec![
        ToyRequest {
            id: 0,
            input: 3,
            output: 4,
            generated: 2,
        }, // A
        ToyRequest {
            id: 1,
            input: 3,
            output: 6,
            generated: 1,
        }, // B
    ];
    let mut queued = Some(ToyRequest {
        id: 2,
        input: 6,
        output: 6,
        generated: 0,
    }); // N
    let mut outcome = Outcome::default();
    for step in 0u32..32 {
        // Admission attempt.
        if let Some(n) = queued {
            let running_views: Vec<RunningRequest> = running
                .iter()
                .map(|r| RunningRequest {
                    id: r.id,
                    input_len: r.input,
                    generated: r.generated,
                    max_new_tokens: MAX_NEW,
                    oracle_remaining: Some(r.output - r.generated),
                })
                .collect();
            let queue_views = [QueuedRequest {
                id: n.id,
                input_len: n.input,
                generated: n.generated,
                max_new_tokens: MAX_NEW,
                oracle_remaining: Some(n.output - n.generated),
            }];
            let used: u64 = running.iter().map(ToyRequest::committed).sum();
            let memory = MemoryState {
                capacity_tokens: CAPACITY,
                used_tokens: used,
            };
            if scheduler.plan_admission(&running_views, &queue_views, &memory) > 0 {
                let mut admitted = n;
                admitted.generated += 1; // prefill emits the first token
                running.push(admitted);
                queued = None;
                if outcome.admit_step.is_none() {
                    outcome.admit_step = Some(step);
                }
                log.row([
                    scheduler.name().to_string(),
                    format!("t+{step}"),
                    "admit N".to_string(),
                    running
                        .iter()
                        .map(ToyRequest::committed)
                        .sum::<u64>()
                        .to_string(),
                ]);
            }
        }
        if running.is_empty() && queued.is_none() {
            outcome.finish_step = step;
            break;
        }
        // Decode step: one token per running request; evict LIFO if short.
        while !running.is_empty() {
            let used: u64 = running.iter().map(ToyRequest::committed).sum();
            if used + running.len() as u64 <= CAPACITY {
                break;
            }
            let victim = running.pop().expect("non-empty");
            scheduler.on_eviction(victim.id);
            outcome.evictions += 1;
            queued = Some(victim); // re-queued with generated tokens kept
            log.row([
                scheduler.name().to_string(),
                format!("t+{step}"),
                format!("evict req#{}", victim.id),
                running
                    .iter()
                    .map(ToyRequest::committed)
                    .sum::<u64>()
                    .to_string(),
            ]);
        }
        for r in &mut running {
            r.generated += 1;
        }
        let finished: Vec<ToyRequest> = running
            .iter()
            .copied()
            .filter(|r| r.generated >= r.output)
            .collect();
        running.retain(|r| r.generated < r.output);
        for f in finished {
            scheduler.on_request_finished(f.output);
            log.row([
                scheduler.name().to_string(),
                format!("t+{}", step + 1),
                format!("req#{} finishes", f.id),
                running
                    .iter()
                    .map(ToyRequest::committed)
                    .sum::<u64>()
                    .to_string(),
            ]);
        }
    }
    outcome
}

fn main() {
    let cli = Cli::parse();
    let mut log = Table::new(["scheduler", "step", "event", "used tokens after"]).with_aligns(&[
        Align::Left,
        Align::Left,
        Align::Left,
        Align::Right,
    ]);
    let mut summary = Table::new(["scheduler", "admits N at", "evictions", "all done at"])
        .with_aligns(&[Align::Left, Align::Right, Align::Right, Align::Right]);

    let configs = [
        SchedulerConfig::aggressive(0.99),
        SchedulerConfig::past_future_reserved(0.03),
        SchedulerConfig::conservative(),
        SchedulerConfig::Oracle,
    ];
    let mut outcomes = Vec::new();
    for config in configs {
        let mut scheduler = config.build(1);
        // Warm the Past-Future history with this service's typical outputs.
        for len in [4u32, 5, 6, 4, 5, 6, 4, 5, 6, 4, 5, 6] {
            scheduler.on_request_finished(len);
        }
        let outcome = replay(scheduler.as_mut(), &mut log);
        summary.row([
            scheduler.name().to_string(),
            format!("t+{}", outcome.admit_step.expect("N admitted")),
            outcome.evictions.to_string(),
            format!("t+{}", outcome.finish_step),
        ]);
        outcomes.push((config, outcome));
    }

    cli.emit(
        "fig6",
        "Figure 6: scheduler behaviour at capacity 21 (timeline summary)",
        &summary,
    );
    pf_bench::write_artifacts(&cli.out_dir, "fig6_timeline", &log);
    println!("{}", log.to_text());

    // The paper's qualitative claims, asserted.
    let admit = |i: usize| outcomes[i].1.admit_step.unwrap();
    assert_eq!(admit(0), 0, "aggressive admits immediately");
    assert!(outcomes[0].1.evictions >= 1, "aggressive pays an eviction");
    assert!(admit(1) > admit(0), "past-future waits a few steps");
    assert_eq!(outcomes[1].1.evictions, 0, "past-future avoids eviction");
    assert!(admit(2) > admit(1), "conservative waits longest");
    assert_eq!(outcomes[2].1.evictions, 0);
    assert!(admit(3) <= admit(1), "oracle admits at the optimal step");
    assert_eq!(outcomes[3].1.evictions, 0);
    println!("qualitative ordering matches the paper: aggressive (t, evicts) < oracle <= past-future < conservative.");
}
