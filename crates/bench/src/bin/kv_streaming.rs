//! Extension: layer-wise streaming KV transfer versus the atomic
//! prefill→decode handoff, swept across shared-link bandwidths.
//!
//! Both modes serve the same prefill-heavy stream (long prompts, terse
//! answers — the regime disaggregation targets) through a 1-prefill +
//! 1-decode split joined by one honest serialized wire (a single
//! transfer slot, so neither mode ever overcommits the link). The atomic
//! path parks each request's whole KV footprint on the prefill engine
//! until the full post-hoc transfer drains; the streamed path ships each
//! layer's KV as the producing pass emits it, so the hold releases at
//! roughly the pass end plus a small tail and the prefill engine's
//! memory turns over link-latency sooner.
//!
//! Under a tight TTFT budget that backpressure relief is the whole
//! story: the table sweeps the link from comfortable to starved and
//! reports TTFT-SLA attainment for both modes at matched GPU-seconds.
//! The run asserts the tentpole claim — streamed attainment strictly
//! beats atomic at every width, the margin grows as the link narrows,
//! and the streamed run replays bit-identically.
//!
//! ```text
//! cargo run --release -p pf-bench --bin kv_streaming [-- --quick]
//! ```

use pf_bench::{default_threads, run_parallel, Cli};
use pf_metrics::{Align, SimDuration, SimTime, SlaSpec, Table};
use pf_sim::disagg::{DisaggCluster, DisaggConfig, KvTransferSpec};
use pf_sim::{GpuSpec, ModelSpec, SimConfig};
use pf_workload::{datasets, LengthSampler, RequestSpec};

/// Link widths swept, widest first. 8 GB/s comfortably clears the
/// stream's aggregate KV demand (~4.3 GB/s); 5 GB/s barely does, so the
/// atomic path's post-hoc serialization compounds into queueing.
const LINK_GBPS: [f64; 4] = [8.0, 7.0, 6.0, 5.0];

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Atomic,
    Streamed,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Atomic => "atomic",
            Mode::Streamed => "streamed",
        }
    }
}

#[derive(Clone)]
struct RowData {
    gbps: f64,
    mode: Mode,
    completed: usize,
    ttft_attainment: f64,
    tail_secs: f64,
    link_secs: f64,
    wait_secs: f64,
    total_bytes: u64,
    transfers: usize,
    gpu_seconds: f64,
    makespan_s: f64,
}

/// Long prompts, terse answers, arriving every 250 ms: steady pressure
/// that keeps the prefill pass busy without drowning either pool.
fn workload(n: usize) -> (Vec<RequestSpec>, Vec<SimTime>) {
    let input = LengthSampler::uniform(1024, 3072);
    let output = LengthSampler::uniform(8, 48);
    let requests = datasets::from_samplers(n, 5, &input, &output, 64);
    let arrivals = (0..n)
        .map(|i| SimTime::from_millis(250 * i as u64))
        .collect();
    (requests, arrivals)
}

fn run_mode(gbps: f64, mode: Mode, requests: Vec<RequestSpec>, arrivals: Vec<SimTime>) -> RowData {
    let transfer = KvTransferSpec::new(gbps, SimDuration::from_micros(200), 1);
    let transfer = match mode {
        Mode::Atomic => transfer,
        Mode::Streamed => transfer.streamed(),
    };
    let base = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .capacity_override(4_500)
        .sla(SlaSpec::new(
            SimDuration::from_millis(1_500),
            SimDuration::from_millis(1_500),
        ))
        .record_series(false)
        .seed(5)
        .build();
    let report = DisaggCluster::new(DisaggConfig::new(base).transfer(transfer), 1, 1)
        .run(requests, arrivals)
        .expect("disagg run");
    RowData {
        gbps,
        mode,
        completed: report.completed(),
        ttft_attainment: report.ttft_attainment(),
        tail_secs: report.transfers.total_tail_secs,
        link_secs: report.transfers.total_link_secs,
        wait_secs: report.transfers.total_wait_secs,
        total_bytes: report.transfers.total_bytes,
        transfers: report.transfers.transfers,
        gpu_seconds: report.gpu_seconds(),
        makespan_s: report.makespan.as_secs_f64(),
    }
}

fn find(rows: &[RowData], gbps: f64, mode: Mode) -> &RowData {
    rows.iter()
        .find(|r| r.gbps == gbps && r.mode == mode)
        .unwrap_or_else(|| panic!("missing row {gbps} GB/s {}", mode.label()))
}

fn main() {
    let cli = Cli::parse();
    let n = cli.size(240, 160);
    let (requests, arrivals) = workload(n);

    let jobs: Vec<Box<dyn FnOnce() -> RowData + Send>> = LINK_GBPS
        .iter()
        .flat_map(|&gbps| {
            [Mode::Atomic, Mode::Streamed]
                .into_iter()
                .map(move |mode| (gbps, mode))
        })
        .map(|(gbps, mode)| {
            let requests = requests.clone();
            let arrivals = arrivals.clone();
            Box::new(move || run_mode(gbps, mode, requests, arrivals))
                as Box<dyn FnOnce() -> RowData + Send>
        })
        .collect();
    let rows = run_parallel(jobs, default_threads());

    let mut table = Table::new([
        "link GB/s",
        "mode",
        "completed",
        "TTFT-ok %",
        "tail s",
        "wire s",
        "wait s",
        "GPU-seconds",
        "makespan s",
    ])
    .with_aligns(&[
        Align::Right,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for row in &rows {
        table.row([
            format!("{:.0}", row.gbps),
            row.mode.label().to_string(),
            row.completed.to_string(),
            format!("{:.1}", row.ttft_attainment * 100.0),
            format!("{:.1}", row.tail_secs),
            format!("{:.1}", row.link_secs),
            format!("{:.1}", row.wait_secs),
            format!("{:.0}", row.gpu_seconds),
            format!("{:.0}", row.makespan_s),
        ]);
    }
    cli.emit(
        "kv_streaming",
        "Layer-streamed vs atomic KV transfer across shared-link bandwidths \
         (prefill-heavy, 1p+1d, 1.5 s TTFT budget)",
        &table,
    );

    // Tentpole claims: streamed strictly beats atomic at every width, at
    // matched GPU cost and identical payloads, and the margin grows as
    // the link narrows.
    let mut margins = Vec::new();
    for &gbps in &LINK_GBPS {
        let atomic = find(&rows, gbps, Mode::Atomic);
        let streamed = find(&rows, gbps, Mode::Streamed);
        assert_eq!(streamed.completed, atomic.completed, "{gbps} GB/s");
        assert_eq!(streamed.total_bytes, atomic.total_bytes, "{gbps} GB/s");
        assert_eq!(streamed.transfers, atomic.transfers, "{gbps} GB/s");
        assert!(
            streamed.ttft_attainment > atomic.ttft_attainment,
            "{gbps} GB/s: streamed attainment {:.3} did not beat atomic {:.3}",
            streamed.ttft_attainment,
            atomic.ttft_attainment
        );
        assert!(
            streamed.gpu_seconds <= atomic.gpu_seconds * 1.02,
            "{gbps} GB/s: streamed spent {:.0} GPU-s vs {:.0} — not a matched comparison",
            streamed.gpu_seconds,
            atomic.gpu_seconds
        );
        // Streaming hides the wire behind the pass: most of each
        // transfer lands while prefill still runs (the tail fraction
        // grows as the link starves but stays under half the wire), and
        // the fluid link never queues a stream behind a slot.
        assert!(
            streamed.tail_secs < 0.5 * atomic.link_secs,
            "{gbps} GB/s: tail {:.3}s vs atomic wire {:.3}s",
            streamed.tail_secs,
            atomic.link_secs
        );
        assert_eq!(streamed.wait_secs, 0.0, "{gbps} GB/s: streams queued");
        margins.push(streamed.ttft_attainment - atomic.ttft_attainment);
    }
    assert!(
        margins.last().expect("sweep") > margins.first().expect("sweep"),
        "margin did not grow as the link narrowed: {margins:?}"
    );

    // Deterministic replay at the narrowest link.
    let narrowest = *LINK_GBPS.last().expect("sweep");
    let first = find(&rows, narrowest, Mode::Streamed);
    let replay = run_mode(narrowest, Mode::Streamed, requests, arrivals);
    assert_eq!(
        replay.makespan_s, first.makespan_s,
        "non-deterministic makespan"
    );
    assert_eq!(
        replay.ttft_attainment, first.ttft_attainment,
        "non-deterministic attainment"
    );
    assert_eq!(replay.tail_secs, first.tail_secs, "non-deterministic tail");

    let widest = find(&rows, LINK_GBPS[0], Mode::Streamed);
    let widest_atomic = find(&rows, LINK_GBPS[0], Mode::Atomic);
    println!(
        "[ok] kv-streaming: TTFT-SLA {:.1}% vs atomic {:.1}% at {:.0} GB/s, \
         margin {:.1}pp -> {:.1}pp as the link narrows to {:.0} GB/s; replay deterministic",
        widest.ttft_attainment * 100.0,
        widest_atomic.ttft_attainment * 100.0,
        LINK_GBPS[0],
        margins[0] * 100.0,
        margins.last().expect("sweep") * 100.0,
        narrowest,
    );
}
