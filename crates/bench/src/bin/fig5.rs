//! Figure 5: the memory demand of a running batch depends on *when* a
//! queued request is scheduled — admitting the same request one step later
//! lowers the peak (19 → 18 tokens in the paper's illustration).
//!
//! ```text
//! cargo run --release -p pf-bench --bin fig5
//! ```

use pf_bench::Cli;
use pf_core::{BatchEntry, FutureMemoryEstimator};
use pf_metrics::{Align, Table};

fn profile_rows(table: &mut Table, label: &str, entries: &[BatchEntry]) -> u64 {
    let profile = FutureMemoryEstimator::memory_profile(entries);
    let peak = FutureMemoryEstimator::peak_memory(entries);
    for point in &profile {
        table.row([
            label.to_string(),
            format!("t+{}", point.steps_from_now),
            point.memory.to_string(),
            if point.memory == peak { "<- peak" } else { "" }.to_string(),
        ]);
    }
    peak
}

fn main() {
    let cli = Cli::parse();
    // The Figure 5 batch: two running requests plus one queued request
    // (input 3, predicted output 5).
    //   scheduled at t:   running (5,2), (5,4) + new (3,5)
    //   scheduled at t+1: running have each grown one token and are one
    //                     step closer to completion.
    let at_t = [
        BatchEntry {
            committed: 5,
            remaining: 2,
        },
        BatchEntry {
            committed: 5,
            remaining: 4,
        },
        BatchEntry {
            committed: 3,
            remaining: 5,
        },
    ];
    let at_t1 = [
        BatchEntry {
            committed: 6,
            remaining: 1,
        },
        BatchEntry {
            committed: 6,
            remaining: 3,
        },
        BatchEntry {
            committed: 3,
            remaining: 5,
        },
    ];

    let mut table = Table::new(["schedule at", "completion point", "memory (tokens)", ""])
        .with_aligns(&[Align::Left, Align::Left, Align::Right, Align::Left]);
    let peak_t = profile_rows(&mut table, "t", &at_t);
    let peak_t1 = profile_rows(&mut table, "t+1", &at_t1);
    cli.emit(
        "fig5",
        "Figure 5: memory demand when scheduling the queued request at t vs t+1",
        &table,
    );
    println!("max memory usage: schedule at t = {peak_t}, schedule at t+1 = {peak_t1}");
    assert_eq!(peak_t, 19, "Figure 5 peak at t");
    assert_eq!(peak_t1, 18, "Figure 5 peak at t+1");
    println!("matches the paper's 19 vs 18 illustration.");
}
