//! Extension: KV-aware prefix-affinity routing versus pure load routing
//! on multi-turn chat.
//!
//! Multi-turn chat traffic repeats each conversation's whole history as
//! the prompt prefix of the next turn. An instance that still caches the
//! session's KV can skip re-prefilling it — but only if the router sends
//! the turn back to that instance. This experiment serves the same
//! session-structured stream (`datasets::multi_turn_chat`) under
//! [`RouterPolicy::LeastEstimatedLoad`] (the paper's §7 signal, blind to
//! prefixes) and [`RouterPolicy::PrefixAffinity`] (longest cached prefix
//! wins, load breaks ties), in three deployments:
//!
//! * **colocated** — a fixed [`ClusterSimulation`] fleet;
//! * **elastic** — an autoscaled [`ElasticCluster`];
//! * **disagg** — a fixed [`DisaggCluster`], where prefix hits shrink the
//!   dedicated prefill pool's passes directly.
//!
//! Every instance runs the same prefix cache (half the KV pool); only
//! the routing signal differs, so the delta isolates what *routing*
//! awareness is worth. The run asserts the headline: prefix affinity reaches at
//! least least-estimated-load's TTFT-SLA attainment at equal GPU-seconds
//! with a nonzero hit rate, in both the colocated and disaggregated
//! deployments, and replays bit-identically.
//!
//! ```text
//! cargo run --release -p pf-bench --bin prefix_routing [-- --quick]
//! ```

use pf_autoscale::{AutoscaleConfig, PredictorKind};
use pf_bench::{default_threads, pct, run_parallel, Cli};
use pf_core::SchedulerConfig;
use pf_kvcache::PrefixCacheStats;
use pf_metrics::{Align, SimDuration, SimTime, SlaSpec, Table};
use pf_sim::cluster::{ClusterSimulation, RouterPolicy};
use pf_sim::disagg::{DisaggCluster, DisaggConfig};
use pf_sim::elastic::ElasticCluster;
use pf_sim::{GpuSpec, ModelSpec, SimConfig};
use pf_workload::{datasets, LengthSampler, RequestSpec};

const CAPACITY: u64 = 48_000;
const PREFIX_BUDGET_FRAC: f64 = 0.5;
const COLOC_INSTANCES: usize = 4;

/// The scheduler's reserved fraction matches the cache budget: admission
/// packs request KV into the other half of memory, so a saturated queue
/// does not squeeze the prefix cache to zero (the same split a real
/// deployment makes when it provisions prefix-cache blocks).
fn base_config() -> SimConfig {
    SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future_reserved(PREFIX_BUDGET_FRAC))
        .capacity_override(CAPACITY)
        .prefix_cache(PREFIX_BUDGET_FRAC)
        // Interactive-chat TTFT bound: multi-turn users notice first-token
        // stalls far sooner than the 10 s batch-style default.
        .sla(SlaSpec::new(
            SimDuration::from_secs(2),
            SimDuration::from_millis(1_500),
        ))
        .record_series(false)
        .seed(61)
        .build()
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Coloc,
    Elastic,
    Disagg,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Coloc => "coloc-4",
            Mode::Elastic => "elastic-1..4",
            Mode::Disagg => "disagg-2p2d",
        }
    }
}

#[derive(Clone)]
struct RowData {
    mode: Mode,
    router: RouterPolicy,
    completed: usize,
    prefix: PrefixCacheStats,
    ttft_attainment: f64,
    ttft_p99_secs: f64,
    sla_attainment: f64,
    gpu_seconds: f64,
    makespan_s: f64,
    /// Routing fingerprint for the determinism check (requests per
    /// instance, in spawn order).
    routed: Vec<usize>,
}

fn run_mode(
    mode: Mode,
    router: RouterPolicy,
    requests: Vec<RequestSpec>,
    arrivals: Vec<SimTime>,
) -> RowData {
    match mode {
        Mode::Coloc => {
            let report = ClusterSimulation::new(base_config(), COLOC_INSTANCES, router)
                .run(requests, arrivals)
                .expect("colocated run");
            let makespan = report.makespan().as_secs_f64();
            RowData {
                mode,
                router,
                completed: report.completed(),
                prefix: report.prefix_stats(),
                ttft_attainment: report.ttft_attainment(),
                ttft_p99_secs: ttft_p99(&report.instances),
                sla_attainment: report.satisfied() as f64 / report.completed().max(1) as f64,
                // A fixed fleet is provisioned for the whole run.
                gpu_seconds: COLOC_INSTANCES as f64 * makespan,
                makespan_s: makespan,
                routed: report.routed_per_instance.clone(),
            }
        }
        Mode::Elastic => {
            let autoscale = AutoscaleConfig::bounded(2, COLOC_INSTANCES)
                .interval(SimDuration::from_secs(10))
                .warmup(SimDuration::from_secs(20))
                .predictor(PredictorKind::holt())
                .initial_lengths(900.0, 150.0);
            let report = ElasticCluster::new(base_config(), autoscale, 4)
                .router(router)
                .run(requests, arrivals)
                .expect("elastic run");
            RowData {
                mode,
                router,
                completed: report.completed(),
                prefix: report.prefix_stats(),
                ttft_attainment: report.ttft_attainment(),
                ttft_p99_secs: report.goodput.ttft_secs.p99,
                sla_attainment: report.sla_attainment(),
                gpu_seconds: report.gpu_seconds(),
                makespan_s: report.makespan.as_secs_f64(),
                routed: report.instances.iter().map(|i| i.routed).collect(),
            }
        }
        Mode::Disagg => {
            let report = DisaggCluster::new(DisaggConfig::new(base_config()).router(router), 2, 2)
                .run(requests, arrivals)
                .expect("disagg run");
            RowData {
                mode,
                router,
                completed: report.completed(),
                prefix: report.prefix_stats,
                ttft_attainment: report.ttft_attainment(),
                ttft_p99_secs: report.goodput.ttft_secs.p99,
                sla_attainment: report.sla_attainment(),
                gpu_seconds: report.gpu_seconds(),
                makespan_s: report.makespan.as_secs_f64(),
                routed: report.prefill.instances.iter().map(|i| i.routed).collect(),
            }
        }
    }
}

fn ttft_p99(instances: &[pf_sim::SimReport]) -> f64 {
    let mut ttfts: Vec<f64> = instances
        .iter()
        .flat_map(|r| r.outcomes.iter())
        .filter_map(|o| o.timing.ttft().map(|t| t.as_secs_f64()))
        .collect();
    ttfts.sort_by(f64::total_cmp);
    if ttfts.is_empty() {
        return 0.0;
    }
    let rank = ((ttfts.len() as f64) * 0.99).ceil() as usize;
    ttfts[rank.saturating_sub(1).min(ttfts.len() - 1)]
}

fn find(rows: &[RowData], mode: Mode, router: RouterPolicy) -> &RowData {
    rows.iter()
        .find(|r| r.mode == mode && r.router == router)
        .unwrap_or_else(|| panic!("missing row {} / {}", mode.label(), router.label()))
}

fn main() {
    let cli = Cli::parse();

    // Session-structured chat at a rate that pressures prefill: the
    // conversation prefixes grow to ~3k tokens, so blind routing pays a
    // full re-prefill of the history almost every turn.
    let n = cli.size(2_400, 600);
    let spec = datasets::MultiTurnSpec {
        // Prefill-bound chat: deep conversations with terse answers (the
        // RAG/agent-loop shape). Decode barely loads the fleet, so TTFT
        // is governed by prompt processing — the work prefix hits remove.
        system_prompt_len: 384,
        user_turn: LengthSampler::uniform(32, 160),
        assistant_turn: LengthSampler::uniform(24, 96),
        continue_prob: 0.78,
        concurrent_sessions: 8,
        max_new_tokens: 128,
        max_context: 2_048,
    };
    // Sessions arrive Poisson; follow-up turns wait for the previous
    // answer plus think time, as real users do (open-loop assignment would
    // deliver turn k+1 before turn k finished at exactly the loads where
    // TTFT matters, making prefix reuse impossible for any router).
    //
    // Two load points, each just past its deployment's prefill knee: the
    // 4-engine colocated fleet takes the full stream; the disaggregated
    // split (only two prefill GPUs) and the elastic fleet (averages fewer
    // than four live replicas) take a 0.8x stream. Comparisons are always
    // within one deployment at matched GPU-seconds.
    let coloc = datasets::multi_turn_chat_timed(n, 62, &spec, 10.5, 2.0, 2.0);
    let scaled = datasets::multi_turn_chat_timed(n, 62, &spec, 7.2, 2.0, 2.0);
    let stream = |mode: Mode| match mode {
        Mode::Coloc => coloc.clone(),
        Mode::Elastic | Mode::Disagg => scaled.clone(),
    };

    let affinity = RouterPolicy::PrefixAffinity {
        load_tiebreak: true,
    };
    let combos: Vec<(Mode, RouterPolicy)> = [Mode::Coloc, Mode::Elastic, Mode::Disagg]
        .into_iter()
        .flat_map(|mode| [(mode, RouterPolicy::LeastEstimatedLoad), (mode, affinity)])
        .collect();
    let jobs: Vec<Box<dyn FnOnce() -> RowData + Send>> = combos
        .iter()
        .map(|&(mode, router)| {
            let (requests, arrivals) = stream(mode);
            Box::new(move || run_mode(mode, router, requests, arrivals))
                as Box<dyn FnOnce() -> RowData + Send>
        })
        .collect();
    let rows = run_parallel(jobs, default_threads());

    let mut table = Table::new([
        "deployment",
        "router",
        "completed",
        "hit rate",
        "saved Mtok",
        "TTFT-ok %",
        "TTFT p99 s",
        "SLA-ok %",
        "GPU-seconds",
        "makespan s",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for row in &rows {
        table.row([
            row.mode.label().to_string(),
            row.router.label().to_string(),
            row.completed.to_string(),
            pct(row.prefix.hit_rate()),
            format!("{:.2}", row.prefix.hit_tokens as f64 / 1e6),
            format!("{:.1}", row.ttft_attainment * 100.0),
            format!("{:.2}", row.ttft_p99_secs),
            format!("{:.1}", row.sla_attainment * 100.0),
            format!("{:.0}", row.gpu_seconds),
            format!("{:.0}", row.makespan_s),
        ]);
    }
    cli.emit(
        "prefix_routing",
        "KV-aware prefix-affinity routing vs least-estimated-load (multi-turn chat)",
        &table,
    );

    // Headline assertions: affinity wins TTFT attainment at equal
    // GPU-seconds with a real hit rate, in the colocated fleet and in the
    // disaggregated prefill pool.
    for mode in [Mode::Coloc, Mode::Disagg] {
        let load = find(&rows, mode, RouterPolicy::LeastEstimatedLoad);
        let prefix = find(&rows, mode, affinity);
        assert_eq!(prefix.completed, load.completed, "{}", mode.label());
        assert!(
            prefix.ttft_attainment >= load.ttft_attainment,
            "{}: prefix-affinity TTFT attainment {:.3} below least-estimated-load {:.3}",
            mode.label(),
            prefix.ttft_attainment,
            load.ttft_attainment
        );
        assert!(
            prefix.gpu_seconds <= load.gpu_seconds * 1.02,
            "{}: prefix-affinity spent {:.0} GPU-s vs {:.0} — not a matched comparison",
            mode.label(),
            prefix.gpu_seconds,
            load.gpu_seconds
        );
        assert!(
            prefix.prefix.hit_rate() > 0.0,
            "{}: prefix-affinity produced no cache hits",
            mode.label()
        );
        assert!(
            prefix.prefix.hit_tokens > load.prefix.hit_tokens,
            "{}: affinity saved {} tokens vs {} under blind routing",
            mode.label(),
            prefix.prefix.hit_tokens,
            load.prefix.hit_tokens
        );
    }
    // Elastic sanity: the cache works behind the autoscaler too.
    let elastic = find(&rows, Mode::Elastic, affinity);
    assert!(elastic.prefix.hit_rate() > 0.0, "elastic: no cache hits");

    // Deterministic replay: same inputs, bit-identical outcome.
    for mode in [Mode::Coloc, Mode::Disagg] {
        let first = find(&rows, mode, affinity);
        let (requests, arrivals) = stream(mode);
        let replay = run_mode(mode, affinity, requests, arrivals);
        assert_eq!(
            replay.makespan_s,
            first.makespan_s,
            "{}: non-deterministic makespan",
            mode.label()
        );
        assert_eq!(
            replay.routed,
            first.routed,
            "{}: non-deterministic routing",
            mode.label()
        );
        assert_eq!(
            replay.prefix,
            first.prefix,
            "{}: non-deterministic prefix-cache stats",
            mode.label()
        );
    }

    let coloc_load = find(&rows, Mode::Coloc, RouterPolicy::LeastEstimatedLoad);
    let coloc_prefix = find(&rows, Mode::Coloc, affinity);
    println!(
        "[ok] prefix-affinity: coloc TTFT-SLA {:.1}% vs {:.1}% at hit rate {}; \
         replay deterministic in coloc and disagg",
        coloc_prefix.ttft_attainment * 100.0,
        coloc_load.ttft_attainment * 100.0,
        pct(coloc_prefix.prefix.hit_rate()),
    );
}
