//! Figure 8: decoding steps vs. evicted requests across scheduler
//! parameters on a varying-load workload (ShareGPT-o1 ∥ Distribution-1 ∥
//! Distribution-2 ∥ Distribution-3 concatenated).
//!
//! Each scheduler family traces a parameter curve; the Past-Future curve
//! should dominate (fewer decoding steps at the same eviction level), with
//! the theoretical optimum as the anchor point.
//!
//! ```text
//! cargo run --release -p pf-bench --bin fig8 [-- --quick]
//! ```

use pf_bench::{default_threads, output_lengths, run_parallel, Cli};
use pf_core::SchedulerConfig;
use pf_metrics::{Align, Table};
use pf_sim::{GpuSpec, ModelSpec, SimConfig, SimReport, Simulation};
use pf_workload::datasets;

fn main() {
    let cli = Cli::parse();
    let n_per_phase = cli.size(500, 80);
    let requests = datasets::mixed_phase(n_per_phase, 4);
    // History warmed on the first phase's service (the workload then
    // drifts through D1→D2→D3 — exactly the regime the sliding window is
    // built for).
    let warmup = output_lengths(&datasets::sharegpt_o1(1000, 999));

    let mut configs: Vec<SchedulerConfig> = vec![SchedulerConfig::Oracle];
    for overcommit in [1.0, 1.05, 1.10, 1.15, 1.20, 1.22] {
        configs.push(SchedulerConfig::conservative_overcommit(overcommit));
    }
    for watermark in [0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90] {
        configs.push(SchedulerConfig::aggressive(watermark));
    }
    for reserved in [0.03, 0.05, 0.10, 0.15, 0.20] {
        configs.push(SchedulerConfig::past_future_reserved(reserved));
    }

    let jobs: Vec<Box<dyn FnOnce() -> SimReport + Send>> = configs
        .into_iter()
        .map(|scheduler| {
            let requests = requests.clone();
            let warmup = warmup.clone();
            Box::new(move || {
                let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
                    .scheduler(scheduler)
                    .history_warmup(warmup)
                    .record_series(false)
                    .seed(50)
                    .build();
                Simulation::offline(config, requests)
                    .run()
                    .expect("fig8 simulation")
            }) as Box<dyn FnOnce() -> SimReport + Send>
        })
        .collect();
    let reports = run_parallel(jobs, default_threads());

    let mut table = Table::new(["scheduler", "decoding steps", "evicted reqs %"]).with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
    ]);
    for report in &reports {
        table.row([
            report.scheduler_name.clone(),
            report.decode_steps.to_string(),
            format!("{:.2}", report.evicted_request_pct()),
        ]);
    }
    cli.emit(
        "fig8",
        "Figure 8: decoding steps vs. evictions across scheduler parameters (varying load)",
        &table,
    );
    println!(
        "Reading the scatter: down-left is better. Aggressive and conservative\n\
         trade decoding steps against evictions along their parameter curves;\n\
         the Past-Future points sit near the theoretical optimum."
    );
}
