//! Ablation: Past-Future history window size under a drifting workload.
//!
//! The paper (Section 4) reports that window sizes from hundreds to
//! thousands all work well and fixes w = 1000. This ablation quantifies
//! that: tiny windows are noisy (per-sample variance), huge windows lag the
//! drift of a phase-changing workload; both ends raise evictions or waste
//! memory.
//!
//! ```text
//! cargo run --release -p pf-bench --bin ablation_window [-- --quick]
//! ```

use pf_bench::{default_threads, output_lengths, pct, run_parallel, Cli};
use pf_core::SchedulerConfig;
use pf_metrics::{Align, Table};
use pf_sim::{GpuSpec, ModelSpec, SimConfig, SimReport, Simulation};
use pf_workload::datasets;

fn main() {
    let cli = Cli::parse();
    let n_per_phase = cli.size(500, 100);
    let requests = datasets::mixed_phase(n_per_phase, 8);
    let warmup = output_lengths(&datasets::sharegpt_o1(1000, 81));
    let windows = [50usize, 100, 200, 500, 1000, 2000, 5000];

    let jobs: Vec<Box<dyn FnOnce() -> (usize, SimReport) + Send>> = windows
        .iter()
        .map(|&window| {
            let requests = requests.clone();
            let warmup = warmup.clone();
            Box::new(move || {
                let scheduler = SchedulerConfig::PastFuture {
                    window,
                    reserved_frac: 0.05,
                    sample_repeats: 4,
                };
                let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
                    .scheduler(scheduler)
                    .history_warmup(warmup)
                    .record_series(false)
                    .seed(70)
                    .build();
                let report = Simulation::offline(config, requests)
                    .run()
                    .expect("window ablation run");
                (window, report)
            }) as Box<dyn FnOnce() -> (usize, SimReport) + Send>
        })
        .collect();
    let results = run_parallel(jobs, default_threads());

    let mut table = Table::new([
        "history window",
        "decoding steps",
        "avg consumed",
        "evicted reqs %",
    ])
    .with_aligns(&[Align::Right, Align::Right, Align::Right, Align::Right]);
    for (window, report) in &results {
        table.row([
            window.to_string(),
            report.decode_steps.to_string(),
            pct(report.avg_consumed_frac),
            format!("{:.2}", report.evicted_request_pct()),
        ]);
    }
    cli.emit(
        "ablation_window",
        "Ablation: history window size on the phase-drifting workload",
        &table,
    );
}
