//! Ablation: number of Past-Future sampling passes (`sample_repeats`).
//!
//! Algorithm 1 samples predicted lengths; a single pass admits on lucky
//! draws, which matters exactly when the batch is small and individual
//! errors do not average out. The paper repeats the sampling "several
//! times" for small batches; this ablation shows the eviction/utilization
//! trade-off of 1..16 passes at small and large KV capacity.
//!
//! ```text
//! cargo run --release -p pf-bench --bin ablation_repeats [-- --quick]
//! ```

use pf_bench::{default_threads, output_lengths, pct, run_parallel, Cli};
use pf_core::SchedulerConfig;
use pf_metrics::{Align, Table};
use pf_sim::{GpuSpec, ModelSpec, SimConfig, SimReport, Simulation};
use pf_workload::datasets;

fn main() {
    let cli = Cli::parse();
    let n = cli.size(800, 150);
    let repeats = [1usize, 2, 4, 8, 16];
    // Small capacity: ~8 concurrent requests (high sampling variance).
    // Large capacity: ~50 concurrent requests (errors average out).
    let capacities = [
        ("small batch (15k tokens)", 15_000u64),
        ("large batch (90k tokens)", 90_000),
    ];

    type Job = Box<dyn FnOnce() -> (&'static str, usize, SimReport) + Send>;
    let mut jobs: Vec<Job> = Vec::new();
    for (cap_label, capacity) in capacities {
        for &sample_repeats in &repeats {
            let requests = datasets::sharegpt_o1(n, 9);
            let warmup = output_lengths(&datasets::sharegpt_o1(1000, 91));
            jobs.push(Box::new(move || {
                let scheduler = SchedulerConfig::PastFuture {
                    window: 1000,
                    reserved_frac: 0.05,
                    sample_repeats,
                };
                let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
                    .scheduler(scheduler)
                    .capacity_override(capacity)
                    .history_warmup(warmup)
                    .record_series(false)
                    .seed(71)
                    .build();
                let report = Simulation::offline(config, requests)
                    .run()
                    .expect("repeats ablation run");
                (cap_label, sample_repeats, report)
            }));
        }
    }
    let results = run_parallel(jobs, default_threads());

    let mut table = Table::new([
        "capacity",
        "sampling passes",
        "decoding steps",
        "avg consumed",
        "evicted reqs %",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for (cap_label, sample_repeats, report) in &results {
        table.row([
            cap_label.to_string(),
            sample_repeats.to_string(),
            report.decode_steps.to_string(),
            pct(report.avg_consumed_frac),
            format!("{:.2}", report.evicted_request_pct()),
        ]);
    }
    cli.emit(
        "ablation_repeats",
        "Ablation: Past-Future sampling passes vs. batch scale",
        &table,
    );
}
