//! Extension: trace replay through the cluster runners.
//!
//! Real deployments are steered by recorded traffic, not synthetic
//! generators. This scenario exports a generated diurnal chat workload to
//! the `trace_io` CSV schema — including the `arrival_us` timestamp
//! column — reads it back, and drives both the elastic cluster and a
//! disaggregated split from the replayed trace. It asserts the round trip
//! is lossless (specs and timestamps bit-identical) and that the replayed
//! runs reproduce the direct runs exactly: same completions, same
//! GPU-seconds, same scaling events, same makespan.
//!
//! ```text
//! cargo run --release -p pf-bench --bin trace_replay [-- --quick]
//! ```

use pf_autoscale::{AutoscaleConfig, PredictorKind};
use pf_bench::Cli;
use pf_core::SchedulerConfig;
use pf_metrics::{Align, SimDuration, SimTime, Table};
use pf_sim::disagg::{DisaggCluster, DisaggConfig};
use pf_sim::elastic::{ElasticCluster, ElasticReport};
use pf_sim::{GpuSpec, ModelSpec, SimConfig};
use pf_workload::trace_io::{
    arrival_times_from_records, read_trace_csv, records_from_timed_requests, requests_from_records,
    write_trace_csv,
};
use pf_workload::{datasets, rng::seeded, RateProfile, RequestSpec};

/// `datasets::short_chat`'s generation cap — replayed requests must carry
/// the same `max_new_tokens` for the rebuilt specs to be bit-identical.
const SHORT_CHAT_CAP: u32 = 512;

fn base_config() -> SimConfig {
    SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
        .scheduler(SchedulerConfig::past_future())
        .capacity_override(6_000)
        .record_series(false)
        .seed(61)
        .build()
}

fn elastic_run(requests: Vec<RequestSpec>, arrivals: Vec<SimTime>) -> ElasticReport {
    let autoscale = AutoscaleConfig::bounded(1, 4)
        .interval(SimDuration::from_secs(10))
        .warmup(SimDuration::from_secs(20))
        .predictor(PredictorKind::holt())
        .initial_lengths(160.0, 224.0);
    ElasticCluster::new(base_config(), autoscale, 1)
        .run(requests, arrivals)
        .expect("elastic run")
}

fn main() {
    let cli = Cli::parse();

    // The workload a production gateway would have logged: three diurnal
    // cycles of short chat.
    let n = cli.size(1_200, 300);
    let requests = datasets::short_chat(n, 62);
    let arrivals =
        RateProfile::diurnal(2.0, 10.0, SimDuration::from_secs(180)).assign(&mut seeded(63), n);

    // Export → CSV on disk → import. The CSV is the real artifact: users
    // replace it with their own traces in the same schema.
    let records = records_from_timed_requests(&requests, &arrivals);
    std::fs::create_dir_all(&cli.out_dir).expect("create results directory");
    let trace_path = cli.out_dir.join("trace_replay_trace.csv");
    let mut buffer = Vec::new();
    write_trace_csv(&mut buffer, &records).expect("serialize trace");
    std::fs::write(&trace_path, &buffer).expect("write trace csv");
    let parsed = read_trace_csv(std::fs::File::open(&trace_path).expect("reopen trace csv"))
        .expect("parse trace csv");
    assert_eq!(parsed, records, "csv round trip must be lossless");
    let replayed_requests = requests_from_records(&parsed, SHORT_CHAT_CAP);
    let replayed_arrivals = arrival_times_from_records(&parsed).expect("trace carries timestamps");
    assert_eq!(
        replayed_requests, requests,
        "replayed specs must be bit-identical"
    );
    assert_eq!(
        replayed_arrivals, arrivals,
        "replayed timestamps must be microsecond-exact"
    );

    // Drive both cluster runners from the original stream and from the
    // replayed trace; the pairs must agree exactly.
    let elastic_direct = elastic_run(requests.clone(), arrivals.clone());
    let elastic_replay = elastic_run(replayed_requests.clone(), replayed_arrivals.clone());
    assert_eq!(
        elastic_direct.makespan, elastic_replay.makespan,
        "elastic replay diverged on makespan"
    );
    assert_eq!(
        elastic_direct.gpu_seconds(),
        elastic_replay.gpu_seconds(),
        "elastic replay diverged on GPU-seconds"
    );
    assert_eq!(
        elastic_direct.events, elastic_replay.events,
        "elastic replay diverged on scaling events"
    );
    assert_eq!(elastic_direct.completed(), elastic_replay.completed());

    let disagg = |requests: Vec<RequestSpec>, arrivals: Vec<SimTime>| {
        DisaggCluster::new(DisaggConfig::new(base_config()), 2, 2)
            .run(requests, arrivals)
            .expect("disagg run")
    };
    let disagg_direct = disagg(requests, arrivals);
    let disagg_replay = disagg(replayed_requests, replayed_arrivals);
    assert_eq!(
        disagg_direct.makespan, disagg_replay.makespan,
        "disagg replay diverged on makespan"
    );
    assert_eq!(
        disagg_direct.transfers, disagg_replay.transfers,
        "disagg replay diverged on KV transfers"
    );
    assert_eq!(disagg_direct.completed(), disagg_replay.completed());

    let mut table = Table::new([
        "cluster",
        "path",
        "completed",
        "SLA-ok %",
        "GPU-seconds",
        "makespan s",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let mut elastic_row = |label: &str, report: &ElasticReport| {
        table.row([
            "elastic-1..4".to_string(),
            label.to_string(),
            report.completed().to_string(),
            format!("{:.1}", report.sla_attainment() * 100.0),
            format!("{:.0}", report.gpu_seconds()),
            format!("{:.0}", report.makespan.as_secs_f64()),
        ]);
    };
    elastic_row("direct", &elastic_direct);
    elastic_row("trace-replay", &elastic_replay);
    for (label, report) in [("direct", &disagg_direct), ("trace-replay", &disagg_replay)] {
        table.row([
            "disagg-2p2d".to_string(),
            label.to_string(),
            report.completed().to_string(),
            format!("{:.1}", report.sla_attainment() * 100.0),
            format!("{:.0}", report.gpu_seconds()),
            format!("{:.0}", report.makespan.as_secs_f64()),
        ]);
    }
    cli.emit(
        "trace_replay",
        "Trace replay: direct stream vs arrival_us CSV round trip",
        &table,
    );
    println!(
        "[ok] trace round-trips losslessly through {} and replays bit-identically \
         (elastic {:.0} GPU-s, disagg {} transfers)",
        trace_path.display(),
        elastic_replay.gpu_seconds(),
        disagg_replay.transfers.transfers,
    );
}
