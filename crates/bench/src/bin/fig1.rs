//! Figure 1: current consumed memory vs. future required memory and
//! eviction rate for the three scheduler classes, under a prefill-heavy
//! and a decode-heavy distribution.
//!
//! Emits a summary table plus downsampled time series
//! (`fig1_series_<dataset>.csv`) for plotting the solid/dashed curves.
//!
//! ```text
//! cargo run --release -p pf-bench --bin fig1 [-- --quick]
//! ```

use pf_bench::{default_threads, output_lengths, pct, run_parallel, Cli};
use pf_core::SchedulerConfig;
use pf_metrics::{Align, Table};
use pf_sim::{GpuSpec, ModelSpec, SimConfig, SimReport, Simulation};
use pf_workload::{datasets, RequestSpec};

fn main() {
    let cli = Cli::parse();
    let n = cli.size(1200, 200);
    type DatasetFn = fn(usize, u64) -> Vec<RequestSpec>;
    let cases: [(&'static str, DatasetFn); 2] = [
        ("decode-heavy (Distribution-1)", datasets::distribution_1),
        ("prefill-heavy (Distribution-3)", datasets::distribution_3),
    ];
    let schedulers = [
        SchedulerConfig::conservative(),
        SchedulerConfig::aggressive(0.99),
        SchedulerConfig::past_future_reserved(0.03),
    ];

    let mut jobs: Vec<Box<dyn FnOnce() -> (&'static str, SimReport) + Send>> = Vec::new();
    for (name, builder) in cases {
        let warmup = output_lengths(&builder(1000, 555));
        for scheduler in schedulers.clone() {
            let requests = builder(n, 2);
            let warmup = warmup.clone();
            jobs.push(Box::new(move || {
                let config = SimConfig::builder(ModelSpec::llama2_7b(), GpuSpec::a100_80g())
                    .scheduler(scheduler)
                    .history_warmup(warmup)
                    .record_series(true)
                    .seed(30)
                    .build();
                let report = Simulation::offline(config, requests)
                    .run()
                    .expect("fig1 simulation");
                (name, report)
            }));
        }
    }
    let results = run_parallel(jobs, default_threads());

    let mut summary = Table::new([
        "dataset",
        "scheduler",
        "avg consumed",
        "avg future required",
        "peak future required",
        "evicted reqs",
    ])
    .with_aligns(&[
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let mut series = Table::new([
        "dataset",
        "scheduler",
        "t_secs",
        "consumed",
        "future_required",
    ]);
    for (dataset, report) in &results {
        summary.row([
            dataset.to_string(),
            report.scheduler_name.clone(),
            pct(report.avg_consumed_frac),
            pct(report.avg_future_required_frac),
            pct(report.future_required_series.max_value().unwrap_or(0.0)),
            format!("{:.2}%", report.evicted_request_pct()),
        ]);
        let consumed = report.consumed_series.downsample(240);
        let future = report.future_required_series.downsample(240);
        for ((t, c), (_, f)) in consumed.iter().zip(future.iter()) {
            series.row([
                dataset.to_string(),
                report.scheduler_name.clone(),
                format!("{:.2}", t.as_secs_f64()),
                format!("{c:.4}"),
                format!("{f:.4}"),
            ]);
        }
    }
    cli.emit(
        "fig1",
        "Figure 1: consumed vs. future required memory and evictions per scheduler",
        &summary,
    );
    pf_bench::write_artifacts(&cli.out_dir, "fig1_series", &series);
    println!("[wrote {}/fig1_series.csv]", cli.out_dir.display());
}
