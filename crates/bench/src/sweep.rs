//! Multi-seed sweep aggregation.
//!
//! The `sweep` binary runs every headline scenario across a bank of
//! workload seeds on parallel workers ([`crate::run_parallel`]) and folds
//! the per-seed simulated metrics into per-metric [`Summary`] rows. The
//! fold here is deliberately a pure function of the *set* of runs: inputs
//! are sorted by `(scenario, seed)` before any floating-point arithmetic,
//! so whatever order the worker threads happened to finish in, the
//! aggregate — and the CSV committed from it — is bit-identical.

use pf_metrics::Summary;

/// One scenario × seed simulation outcome.
///
/// Only *simulated* metrics belong here (attainment, goodput, memory
/// fractions, makespan); wall-clock self-profiling is `perf_baseline`'s
/// job. Every seed of a scenario reports the same metric set.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedRun {
    /// Scenario label (groups runs).
    pub scenario: String,
    /// Workload seed that produced this run.
    pub seed: u64,
    /// `(metric, value)` pairs, in display order.
    pub metrics: Vec<(String, f64)>,
}

/// Per-scenario, per-metric summary across the seed bank.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateRow {
    /// Scenario label.
    pub scenario: String,
    /// Metric name.
    pub metric: String,
    /// Summary over the metric's per-seed values, in seed order.
    pub summary: Summary,
}

/// Aggregates seed runs into per-metric summaries, independent of input
/// order.
///
/// Runs are sorted by `(scenario, seed)` first, so every permutation of
/// `runs` — serial, or parallel under any thread interleaving — folds the
/// same values in the same order and returns bit-identical summaries.
/// Metric display order follows the lowest-seed run of each scenario;
/// scenarios appear alphabetically.
pub fn aggregate(runs: &[SeedRun]) -> Vec<AggregateRow> {
    let mut ordered: Vec<&SeedRun> = runs.iter().collect();
    ordered.sort_by(|a, b| (a.scenario.as_str(), a.seed).cmp(&(b.scenario.as_str(), b.seed)));
    let mut out = Vec::new();
    let mut i = 0;
    while i < ordered.len() {
        let scenario = &ordered[i].scenario;
        let mut j = i;
        while j < ordered.len() && ordered[j].scenario == *scenario {
            j += 1;
        }
        let group = &ordered[i..j];
        for (metric, _) in &group[0].metrics {
            let values: Vec<f64> = group
                .iter()
                .filter_map(|run| {
                    run.metrics
                        .iter()
                        .find(|(name, _)| name == metric)
                        .map(|(_, value)| *value)
                })
                .collect();
            out.push(AggregateRow {
                scenario: scenario.clone(),
                metric: metric.clone(),
                summary: Summary::of(&values),
            });
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(scenario: &str, seed: u64, metrics: &[(&str, f64)]) -> SeedRun {
        SeedRun {
            scenario: scenario.to_string(),
            seed,
            metrics: metrics
                .iter()
                .map(|(name, value)| (name.to_string(), *value))
                .collect(),
        }
    }

    #[test]
    fn aggregates_per_scenario_and_metric() {
        let runs = [
            run("coloc", 1, &[("goodput", 10.0), ("evicted", 0.0)]),
            run("coloc", 2, &[("goodput", 14.0), ("evicted", 2.0)]),
            run("disagg", 1, &[("sla", 0.9)]),
        ];
        let agg = aggregate(&runs);
        assert_eq!(agg.len(), 3);
        assert_eq!(agg[0].scenario, "coloc");
        assert_eq!(agg[0].metric, "goodput");
        assert_eq!(agg[0].summary.mean, 12.0);
        assert_eq!(agg[0].summary.count, 2);
        assert_eq!(agg[1].metric, "evicted");
        assert_eq!(agg[2].scenario, "disagg");
        assert_eq!(agg[2].summary.mean, 0.9);
    }

    #[test]
    fn empty_input_aggregates_to_nothing() {
        assert!(aggregate(&[]).is_empty());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn runs_strategy() -> impl Strategy<Value = Vec<SeedRun>> {
            let scenario = (0usize..3).prop_map(|k| ["coloc", "disagg", "elastic"][k].to_string());
            let metrics = proptest::collection::vec(
                (0usize..4, -1e6f64..1e6).prop_map(|(k, v)| (format!("m{k}"), v)),
                1..5,
            );
            proptest::collection::vec(
                (scenario, 0u64..16, metrics).prop_map(|(scenario, seed, metrics)| SeedRun {
                    scenario,
                    seed,
                    metrics,
                }),
                0..24,
            )
        }

        proptest! {
            /// The aggregate is invariant under any permutation of the
            /// runs — the order parallel workers deliver results in can
            /// never change the output.
            #[test]
            fn aggregate_is_order_independent(
                runs in runs_strategy(),
                keys in proptest::collection::vec(0u64..1_000_000, 32),
            ) {
                let mut shuffled: Vec<(u64, SeedRun)> = runs
                    .iter()
                    .cloned()
                    .enumerate()
                    .map(|(i, r)| (keys[i % keys.len()] ^ (i as u64) << 20, r))
                    .collect();
                shuffled.sort_by_key(|(k, _)| *k);
                let shuffled: Vec<SeedRun> = shuffled.into_iter().map(|(_, r)| r).collect();
                prop_assert_eq!(aggregate(&runs), aggregate(&shuffled));
            }

            /// Aggregating results collected from parallel workers — with
            /// adversarial per-job delays to scramble completion order —
            /// equals aggregating a serial run of the same jobs.
            #[test]
            fn parallel_aggregation_equals_serial(
                runs in runs_strategy(),
                delays in proptest::collection::vec(0u64..80, 32),
                threads in 1usize..5,
            ) {
                let serial: Vec<SeedRun> = runs.clone();
                let jobs: Vec<Box<dyn FnOnce() -> SeedRun + Send>> = runs
                    .into_iter()
                    .enumerate()
                    .map(|(i, r)| {
                        let delay = delays[i % delays.len()];
                        Box::new(move || {
                            std::thread::sleep(std::time::Duration::from_micros(delay));
                            r
                        }) as Box<dyn FnOnce() -> SeedRun + Send>
                    })
                    .collect();
                let parallel = crate::run_parallel(jobs, threads);
                prop_assert_eq!(aggregate(&serial), aggregate(&parallel));
            }
        }
    }
}
