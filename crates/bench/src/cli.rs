//! Command-line parsing shared by every experiment binary.
//!
//! All binaries accept `--quick` and `--out <dir>`; binaries with extra
//! options (e.g. `perf_baseline --gate <path>`) layer them on top via
//! [`Cli::try_parse_extra`] so the common flags behave identically
//! everywhere.

use std::path::PathBuf;

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Reduced workload sizes for smoke runs.
    pub quick: bool,
    /// Output directory for CSV/markdown artifacts.
    pub out_dir: PathBuf,
}

/// Usage text printed on argument errors.
const USAGE: &str = "usage: <binary> [--quick] [--out <dir> | --out=<dir>]\n\
     --quick      reduced workload sizes for smoke runs\n\
     --out <dir>  output directory for CSV/markdown artifacts (default: results)";

impl Cli {
    /// Parses `--quick` and `--out <dir>` / `--out=<dir>` from
    /// `std::env::args`. Unknown or malformed arguments print the usage
    /// to stderr and exit with code 2 (the conventional CLI-misuse
    /// status), so a typo in a CI pipeline fails fast instead of
    /// panicking with a backtrace.
    pub fn parse() -> Cli {
        match Cli::try_parse(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(message) => exit_usage(&message),
        }
    }

    /// [`Cli::parse`] plus binary-specific `--flag <value>` options.
    ///
    /// `extra_value_flags` lists flag names (with leading dashes) that
    /// take one value, accepted as either `--flag value` or
    /// `--flag=value`. Returns the parsed common options and the
    /// `(flag, value)` pairs in argument order. Errors exit with code 2
    /// like [`Cli::parse`].
    pub fn parse_extra(extra_value_flags: &[&str]) -> (Cli, Vec<(String, String)>) {
        match Cli::try_parse_extra(std::env::args().skip(1), extra_value_flags) {
            Ok(parsed) => parsed,
            Err(message) => exit_usage(&message),
        }
    }

    /// Argument-parsing core, separated from process exit for testing.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown arguments or a
    /// missing `--out` value.
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
        let (cli, extra) = Cli::try_parse_extra(args, &[])?;
        debug_assert!(extra.is_empty());
        Ok(cli)
    }

    /// [`Cli::try_parse`] with binary-specific value flags, separated
    /// from process exit for testing.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown arguments or a flag
    /// missing its value.
    pub fn try_parse_extra(
        args: impl IntoIterator<Item = String>,
        extra_value_flags: &[&str],
    ) -> Result<(Cli, Vec<(String, String)>), String> {
        let mut quick = false;
        let mut out_dir = PathBuf::from("results");
        let mut extra = Vec::new();
        let mut args = args.into_iter();
        'next_arg: while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => quick = true,
                "--out" => {
                    out_dir = PathBuf::from(
                        args.next()
                            .ok_or_else(|| "--out requires a directory argument".to_string())?,
                    );
                }
                other => {
                    if let Some(dir) = other.strip_prefix("--out=") {
                        if dir.is_empty() {
                            return Err("--out= requires a directory argument".to_string());
                        }
                        out_dir = PathBuf::from(dir);
                        continue;
                    }
                    for flag in extra_value_flags {
                        if other == *flag {
                            let value = args
                                .next()
                                .ok_or_else(|| format!("{flag} requires a value"))?;
                            extra.push(((*flag).to_string(), value));
                            continue 'next_arg;
                        }
                        if let Some(value) = other
                            .strip_prefix(flag)
                            .and_then(|rest| rest.strip_prefix('='))
                        {
                            if value.is_empty() {
                                return Err(format!("{flag}= requires a value"));
                            }
                            extra.push(((*flag).to_string(), value.to_string()));
                            continue 'next_arg;
                        }
                    }
                    return Err(format!("unknown argument: {other}"));
                }
            }
        }
        Ok((Cli { quick, out_dir }, extra))
    }

    /// Picks between the full and quick size of a workload parameter.
    pub fn size(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Writes a table as `<name>.csv` and `<name>.md` under the output
    /// directory and prints it to stdout with a heading.
    ///
    /// # Panics
    ///
    /// Panics if the output directory cannot be created or written.
    pub fn emit(&self, name: &str, title: &str, table: &pf_metrics::Table) {
        println!("== {title} ==");
        println!("{}", table.to_text());
        crate::write_artifacts(&self.out_dir, name, table);
        println!("[wrote {}/{name}.csv and .md]\n", self.out_dir.display());
    }
}

fn exit_usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::try_parse(args.iter().map(|s| s.to_string()))
    }

    fn parse_extra(args: &[&str], flags: &[&str]) -> Result<(Cli, Vec<(String, String)>), String> {
        Cli::try_parse_extra(args.iter().map(|s| s.to_string()), flags)
    }

    #[test]
    fn cli_parses_flags_and_both_out_forms() {
        let cli = parse(&[]).unwrap();
        assert!(!cli.quick);
        assert_eq!(cli.out_dir, PathBuf::from("results"));
        let cli = parse(&["--quick", "--out", "artifacts"]).unwrap();
        assert!(cli.quick);
        assert_eq!(cli.out_dir, PathBuf::from("artifacts"));
        let cli = parse(&["--out=elsewhere"]).unwrap();
        assert_eq!(cli.out_dir, PathBuf::from("elsewhere"));
    }

    #[test]
    fn cli_rejects_bad_arguments_with_messages() {
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("unknown argument: --frobnicate"));
        assert!(parse(&["--out"]).unwrap_err().contains("--out requires"));
        assert!(parse(&["--out="]).unwrap_err().contains("--out= requires"));
    }

    #[test]
    fn extra_value_flags_accept_both_forms() {
        let (cli, extra) =
            parse_extra(&["--gate", "BENCH_core.json", "--quick"], &["--gate"]).unwrap();
        assert!(cli.quick);
        assert_eq!(
            extra,
            vec![("--gate".to_string(), "BENCH_core.json".to_string())]
        );
        let (_, extra) = parse_extra(&["--gate=base.json"], &["--gate"]).unwrap();
        assert_eq!(extra, vec![("--gate".to_string(), "base.json".to_string())]);
    }

    #[test]
    fn extra_value_flags_report_missing_values() {
        assert!(parse_extra(&["--gate"], &["--gate"])
            .unwrap_err()
            .contains("--gate requires"));
        assert!(parse_extra(&["--gate="], &["--gate"])
            .unwrap_err()
            .contains("--gate= requires"));
        assert!(parse_extra(&["--gatecrash"], &["--gate"])
            .unwrap_err()
            .contains("unknown argument"));
    }
}
