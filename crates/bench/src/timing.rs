//! The workspace's only wall-clock site outside the shims.
//!
//! Simulated time is the repository's currency everywhere else — replay
//! from a seed must reproduce every number bit-identically, and host time
//! cannot be replayed. Self-profiling (`perf_baseline`) is the one
//! legitimate consumer of wall time, and it goes through this module so
//! the `pf-lint` D2 rule can allowlist exactly one file instead of
//! whitelisting call sites ad hoc. Do not read `Instant`/`SystemTime`
//! anywhere else; measured durations must never feed back into simulation
//! state.

use std::time::Instant;

/// Wall-clock seconds `f` takes to run once.
pub fn wall_secs(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

/// Best-of-`reps` wall-clock seconds for `f` (the minimum filters OS
/// scheduler noise, the standard practice for micro-gates).
///
/// # Panics
///
/// Panics if `reps` is zero.
pub fn best_wall_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    assert!(reps > 0, "need at least one repetition");
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        best = best.min(wall_secs(&mut f));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_secs_is_nonnegative_and_best_is_min() {
        let one = wall_secs(|| {});
        assert!(one >= 0.0);
        let mut calls = 0;
        let best = best_wall_secs(3, || calls += 1);
        assert_eq!(calls, 3);
        assert!(best >= 0.0 && best.is_finite());
    }
}
