//! Future required memory (paper Eq. 2–4, the "Future").
//!
//! The memory a running batch will occupy peaks at a *request-completion
//! moment*: between completions every surviving request grows by one token
//! per decode step, so occupancy rises monotonically until something
//! finishes and releases its cache. It is therefore sufficient to evaluate
//! memory at each future completion point and take the maximum.
//!
//! With requests sorted by estimated remaining generation length in
//! descending order (Eq. 2), the occupancy when request `i` finishes is
//!
//! ```text
//! M_i = Σ_{j≤i} (l_p^j + l_t^j)  +  (l̂_i − l_i) · i        (Eq. 3)
//! ```
//!
//! (requests `j > i` have shorter remaining lengths and have already
//! released their memory), and the future required memory is
//! `M* = max_i M_i` (Eq. 4).

/// One request's contribution to the future-memory computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BatchEntry {
    /// Tokens already committed to the KV cache: input length plus tokens
    /// generated so far (`l_p + l_t`).
    pub committed: u64,
    /// Estimated remaining generation length (`l̂_t − l_t`).
    pub remaining: u64,
}

impl BatchEntry {
    /// Total footprint this request will have reached when it finishes.
    pub fn total_at_completion(&self) -> u64 {
        self.committed + self.remaining
    }
}

/// Memory occupancy at one future request-completion point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CompletionPoint {
    /// Decode steps from now until this completion (the finishing request's
    /// remaining length).
    pub steps_from_now: u64,
    /// Batch memory occupancy at that moment (`M_i`, Eq. 3).
    pub memory: u64,
}

/// Stateless implementation of Eq. 2–4.
#[derive(Debug, Clone, Copy, Default)]
pub struct FutureMemoryEstimator;

impl FutureMemoryEstimator {
    /// Future required memory `M*` of a batch (Eq. 4). Zero for an empty
    /// batch.
    ///
    /// # Example
    ///
    /// ```
    /// use pf_core::{BatchEntry, FutureMemoryEstimator};
    ///
    /// let batch = [
    ///     BatchEntry { committed: 5, remaining: 2 },
    ///     BatchEntry { committed: 5, remaining: 4 },
    /// ];
    /// assert_eq!(FutureMemoryEstimator::peak_memory(&batch), 14);
    /// ```
    pub fn peak_memory(entries: &[BatchEntry]) -> u64 {
        let mut sorted: Vec<BatchEntry> = entries.to_vec();
        Self::sort_by_remaining_desc(&mut sorted);
        Self::peak_memory_sorted(&sorted)
    }

    /// `M*` for entries already sorted by `remaining` descending (Eq. 2
    /// order). Useful for incremental admission loops that maintain the
    /// sorted batch themselves.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the slice is not sorted descending.
    pub fn peak_memory_sorted(sorted: &[BatchEntry]) -> u64 {
        debug_assert!(
            sorted.windows(2).all(|w| w[0].remaining >= w[1].remaining),
            "entries must be sorted by remaining length, descending"
        );
        let mut prefix_committed = 0u64;
        let mut peak = 0u64;
        for (i, entry) in sorted.iter().enumerate() {
            prefix_committed += entry.committed;
            let m_i = prefix_committed + entry.remaining * (i as u64 + 1);
            peak = peak.max(m_i);
        }
        peak
    }

    /// The full occupancy profile: one [`CompletionPoint`] per request, in
    /// completion order (soonest first). Exposes the intermediate `M_i`
    /// values behind Eq. 4 for figures and diagnostics.
    pub fn memory_profile(entries: &[BatchEntry]) -> Vec<CompletionPoint> {
        let mut sorted: Vec<BatchEntry> = entries.to_vec();
        Self::sort_by_remaining_desc(&mut sorted);
        let mut prefix_committed = 0u64;
        let mut profile: Vec<CompletionPoint> = sorted
            .iter()
            .enumerate()
            .map(|(i, entry)| {
                prefix_committed += entry.committed;
                CompletionPoint {
                    steps_from_now: entry.remaining,
                    memory: prefix_committed + entry.remaining * (i as u64 + 1),
                }
            })
            .collect();
        profile.reverse(); // soonest completion first
        profile
    }

    /// Whether the batch plus capacity constraint admits completion without
    /// a future shortfall.
    pub fn fits(entries: &[BatchEntry], capacity: u64) -> bool {
        Self::peak_memory(entries) <= capacity
    }

    fn sort_by_remaining_desc(entries: &mut [BatchEntry]) {
        entries.sort_unstable_by_key(|e| std::cmp::Reverse(e.remaining));
    }

    /// The running batch advanced by `steps` synchronized decode steps:
    /// every entry grows by one token per step and leaves once its
    /// remaining length is exhausted.
    pub fn advance(entries: &[BatchEntry], steps: u64) -> Vec<BatchEntry> {
        entries
            .iter()
            .filter(|e| e.remaining > steps)
            .map(|e| BatchEntry {
                committed: e.committed + steps,
                remaining: e.remaining - steps,
            })
            .collect()
    }

    /// The paper's "optimal time point" (Figures 5 and 6): the smallest
    /// number of future decode steps after which `candidate` can join
    /// `running` without the batch's future required memory exceeding
    /// `capacity`.
    ///
    /// Pass the candidate in whichever form matches the model in use: the
    /// raw `(input, predicted_output)` entry for the paper's synchronized
    /// decode model, or [`QueuedRequest::post_prefill_entry`] for
    /// engine-accurate accounting (where the admission prefill emits the
    /// first token while the batch is paused).
    ///
    /// Returns `None` when the candidate cannot fit even on an empty
    /// system. Cost is O(max_remaining × k log k) — this is an analysis
    /// helper, not a per-step scheduler primitive (the scheduler only
    /// needs the δ = 0 test).
    ///
    /// [`QueuedRequest::post_prefill_entry`]: crate::QueuedRequest::post_prefill_entry
    pub fn earliest_admission_step(
        running: &[BatchEntry],
        candidate: BatchEntry,
        capacity: u64,
    ) -> Option<u64> {
        if candidate.total_at_completion() > capacity {
            return None;
        }
        let horizon = running.iter().map(|e| e.remaining).max().unwrap_or(0);
        for steps in 0..=horizon {
            let mut batch = Self::advance(running, steps);
            batch.push(candidate);
            if Self::peak_memory(&batch) <= capacity {
                return Some(steps);
            }
        }
        // Past the horizon the batch has fully drained.
        Some(horizon + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(committed: u64, remaining: u64) -> BatchEntry {
        BatchEntry {
            committed,
            remaining,
        }
    }

    #[test]
    fn empty_batch_needs_nothing() {
        assert_eq!(FutureMemoryEstimator::peak_memory(&[]), 0);
        assert!(FutureMemoryEstimator::memory_profile(&[]).is_empty());
        assert!(FutureMemoryEstimator::fits(&[], 0));
    }

    #[test]
    fn single_request_peaks_at_completion() {
        // One request: peak is its own total footprint.
        assert_eq!(FutureMemoryEstimator::peak_memory(&[e(10, 5)]), 15);
        let profile = FutureMemoryEstimator::memory_profile(&[e(10, 5)]);
        assert_eq!(
            profile,
            vec![CompletionPoint {
                steps_from_now: 5,
                memory: 15
            }]
        );
    }

    #[test]
    fn paper_figure_5_scenario() {
        // Scheduling the queued request (input 3, predicted output 5) into a
        // batch of two running requests at time t peaks at 19 tokens; one
        // step later the peak is 18 (Figure 5's "Max Memory Usage" 19 vs 18).
        let at_t = [e(5, 2), e(5, 4), e(3, 5)];
        assert_eq!(FutureMemoryEstimator::peak_memory(&at_t), 19);
        // At t+1 both running requests have grown by one token and are one
        // step closer to finishing.
        let at_t1 = [e(6, 1), e(6, 3), e(3, 5)];
        assert_eq!(FutureMemoryEstimator::peak_memory(&at_t1), 18);
    }

    #[test]
    fn profile_matches_hand_computation() {
        // Entries sorted desc by remaining: (3,5), (5,4), (5,2).
        // M_1 = 3 + 5*1 = 8; M_2 = 3+5 + 4*2 = 16; M_3 = 13 + 2*3 = 19.
        let profile = FutureMemoryEstimator::memory_profile(&[e(5, 2), e(5, 4), e(3, 5)]);
        assert_eq!(
            profile,
            vec![
                CompletionPoint {
                    steps_from_now: 2,
                    memory: 19
                },
                CompletionPoint {
                    steps_from_now: 4,
                    memory: 16
                },
                CompletionPoint {
                    steps_from_now: 5,
                    memory: 8
                },
            ]
        );
    }

    #[test]
    fn peak_is_max_of_profile() {
        let batch = [e(7, 3), e(2, 9), e(4, 4), e(1, 1)];
        let peak = FutureMemoryEstimator::peak_memory(&batch);
        let profile_max = FutureMemoryEstimator::memory_profile(&batch)
            .iter()
            .map(|p| p.memory)
            .max()
            .unwrap();
        assert_eq!(peak, profile_max);
    }

    #[test]
    fn zero_remaining_finishes_now() {
        // A request finishing immediately still holds its memory at the
        // moment it completes.
        assert_eq!(FutureMemoryEstimator::peak_memory(&[e(10, 0)]), 10);
        assert_eq!(
            FutureMemoryEstimator::peak_memory(&[e(10, 0), e(5, 3)]),
            // Sorted: (5,3),(10,0): M1 = 5+3 = 8, M2 = 15 + 0 = 15.
            15
        );
    }

    #[test]
    fn sorted_variant_matches_unsorted() {
        let mut batch = vec![e(7, 3), e(2, 9), e(4, 4), e(1, 1)];
        let peak = FutureMemoryEstimator::peak_memory(&batch);
        batch.sort_unstable_by_key(|e| std::cmp::Reverse(e.remaining));
        assert_eq!(FutureMemoryEstimator::peak_memory_sorted(&batch), peak);
    }

    #[test]
    fn fits_is_inclusive() {
        let batch = [e(5, 2), e(5, 4), e(3, 5)];
        assert!(FutureMemoryEstimator::fits(&batch, 19));
        assert!(!FutureMemoryEstimator::fits(&batch, 18));
    }

    #[test]
    fn conservative_bound_recovered_with_equal_remaining() {
        // When all requests finish simultaneously no memory is ever
        // released early, so M* equals the sum of total footprints — the
        // conservative scheduler's estimate.
        let batch = [e(4, 6), e(9, 6), e(2, 6)];
        let sum_totals: u64 = batch.iter().map(|b| b.total_at_completion()).sum();
        assert_eq!(FutureMemoryEstimator::peak_memory(&batch), sum_totals);
    }

    #[test]
    fn advance_grows_and_retires() {
        let batch = [e(5, 2), e(5, 4)];
        assert_eq!(
            FutureMemoryEstimator::advance(&batch, 1),
            vec![e(6, 1), e(6, 3)]
        );
        // After 2 steps the first request has finished and released.
        assert_eq!(FutureMemoryEstimator::advance(&batch, 2), vec![e(7, 2)]);
        assert!(FutureMemoryEstimator::advance(&batch, 4).is_empty());
    }

    #[test]
    fn earliest_admission_matches_figure_5() {
        // Figure 5's batch (synchronized model, candidate = input 3 with
        // predicted output 5): peak 19 if admitted now, 18 one step later.
        let running = [e(5, 2), e(5, 4)];
        let candidate = e(3, 5);
        assert_eq!(
            FutureMemoryEstimator::earliest_admission_step(&running, candidate, 19),
            Some(0)
        );
        assert_eq!(
            FutureMemoryEstimator::earliest_admission_step(&running, candidate, 18),
            Some(1)
        );
    }

    #[test]
    fn earliest_admission_matches_figure_6() {
        // Figure 6's capacity-21 scenario: the optimal admission step for
        // the new request is t+1 (where the oracle admits it).
        let running = [e(5, 2), e(4, 5)];
        let candidate = e(7, 5);
        assert_eq!(
            FutureMemoryEstimator::earliest_admission_step(&running, candidate, 21),
            Some(1)
        );
    }

    #[test]
    fn earliest_admission_impossible_candidate() {
        assert_eq!(
            FutureMemoryEstimator::earliest_admission_step(&[], e(10, 20), 29),
            None
        );
        assert_eq!(
            FutureMemoryEstimator::earliest_admission_step(&[], e(10, 20), 30),
            Some(0)
        );
    }

    #[test]
    fn earliest_admission_waits_for_drain_when_tight() {
        // Capacity only fits the candidate alone: it must wait until the
        // last running request finishes.
        let running = [e(10, 7)];
        let candidate = e(10, 8);
        let capacity = 18; // candidate total, exactly
                           // The running request emits its last token at step 7 and releases
                           // at that boundary, which is when the candidate can enter.
        assert_eq!(
            FutureMemoryEstimator::earliest_admission_step(&running, candidate, capacity),
            Some(7)
        );
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn entries_strategy() -> impl Strategy<Value = Vec<BatchEntry>> {
            proptest::collection::vec(
                (0u64..10_000, 0u64..5_000).prop_map(|(committed, remaining)| BatchEntry {
                    committed,
                    remaining,
                }),
                0..64,
            )
        }

        proptest! {
            /// M* is at least the current occupancy (nothing is released
            /// before the first completion) and at most the sum of total
            /// footprints (the no-release worst case).
            #[test]
            fn peak_bounded_by_current_and_sum(entries in entries_strategy()) {
                let peak = FutureMemoryEstimator::peak_memory(&entries);
                let current: u64 = entries.iter().map(|e| e.committed).sum();
                let sum_totals: u64 = entries.iter().map(|e| e.total_at_completion()).sum();
                prop_assert!(peak >= current);
                prop_assert!(peak <= sum_totals);
                // Peak also dominates every individual request's own total.
                for e in &entries {
                    prop_assert!(peak >= e.total_at_completion());
                }
            }

            /// Permuting the batch never changes M* (Eq. 2 sorts internally).
            #[test]
            fn permutation_invariant(entries in entries_strategy(), seed in 0u64..100) {
                use rand::seq::SliceRandom;
                use rand::SeedableRng;
                let peak = FutureMemoryEstimator::peak_memory(&entries);
                let mut shuffled = entries.clone();
                shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
                prop_assert_eq!(FutureMemoryEstimator::peak_memory(&shuffled), peak);
            }

            /// Adding a request can only increase M* (admission monotonicity
            /// — this is what makes Algorithm 1's first-reject cutoff sound).
            #[test]
            fn monotone_in_batch_extension(
                entries in entries_strategy(),
                extra_committed in 0u64..10_000,
                extra_remaining in 0u64..5_000,
            ) {
                let before = FutureMemoryEstimator::peak_memory(&entries);
                let mut extended = entries.clone();
                extended.push(BatchEntry {
                    committed: extra_committed,
                    remaining: extra_remaining,
                });
                let after = FutureMemoryEstimator::peak_memory(&extended);
                prop_assert!(after >= before);
            }

            /// The earliest admission step is truly minimal: the batch fits
            /// at the returned step and not one step earlier.
            #[test]
            fn earliest_admission_is_minimal(
                entries in entries_strategy(),
                committed in 0u64..2_000,
                remaining in 0u64..1_000,
                slack in 0u64..10_000,
            ) {
                let candidate = BatchEntry { committed, remaining };
                // Capacity somewhere between "candidate alone" and "whole
                // batch at once".
                let capacity = candidate.total_at_completion() + slack;
                let Some(step) =
                    FutureMemoryEstimator::earliest_admission_step(&entries, candidate, capacity)
                else {
                    prop_assert!(candidate.total_at_completion() > capacity);
                    return Ok(());
                };
                let mut at_step = FutureMemoryEstimator::advance(&entries, step);
                at_step.push(candidate);
                prop_assert!(FutureMemoryEstimator::peak_memory(&at_step) <= capacity);
                if step > 0 {
                    let mut earlier = FutureMemoryEstimator::advance(&entries, step - 1);
                    earlier.push(candidate);
                    prop_assert!(
                        FutureMemoryEstimator::peak_memory(&earlier) > capacity,
                        "step {step} is not minimal"
                    );
                }
            }

            /// M* exactly simulates the step-by-step token growth: replaying
            /// the batch decode-by-decode and releasing each request as it
            /// finishes never exceeds M*, and touches it at some step.
            #[test]
            fn matches_step_replay(entries in entries_strategy()) {
                let peak = FutureMemoryEstimator::peak_memory(&entries);
                // Brute-force replay. A request's memory counts up to and
                // including the step at which it emits its final token, and
                // is released before the next step.
                let mut live: Vec<BatchEntry> = entries.clone();
                let mut replay_peak: u64 = live.iter().map(|e| e.committed).sum();
                live.retain(|e| e.remaining > 0);
                while !live.is_empty() {
                    // Every live request generates one token.
                    for e in &mut live {
                        e.committed += 1;
                        e.remaining -= 1;
                    }
                    let occupancy: u64 = live.iter().map(|e| e.committed).sum();
                    replay_peak = replay_peak.max(occupancy);
                    live.retain(|e| e.remaining > 0);
                }
                prop_assert_eq!(replay_peak, peak);
            }
        }
    }
}
