//! Future required memory (paper Eq. 2–4, the "Future").
//!
//! The memory a running batch will occupy peaks at a *request-completion
//! moment*: between completions every surviving request grows by one token
//! per decode step, so occupancy rises monotonically until something
//! finishes and releases its cache. It is therefore sufficient to evaluate
//! memory at each future completion point and take the maximum.
//!
//! With requests sorted by estimated remaining generation length in
//! descending order (Eq. 2), the occupancy when request `i` finishes is
//!
//! ```text
//! M_i = Σ_{j≤i} (l_p^j + l_t^j)  +  (l̂_i − l_i) · i        (Eq. 3)
//! ```
//!
//! (requests `j > i` have shorter remaining lengths and have already
//! released their memory), and the future required memory is
//! `M* = max_i M_i` (Eq. 4).

/// One request's contribution to the future-memory computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BatchEntry {
    /// Tokens already committed to the KV cache: input length plus tokens
    /// generated so far (`l_p + l_t`).
    pub committed: u64,
    /// Estimated remaining generation length (`l̂_t − l_t`).
    pub remaining: u64,
}

impl BatchEntry {
    /// Total footprint this request will have reached when it finishes.
    pub fn total_at_completion(&self) -> u64 {
        self.committed + self.remaining
    }
}

/// Memory occupancy at one future request-completion point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CompletionPoint {
    /// Decode steps from now until this completion (the finishing request's
    /// remaining length).
    pub steps_from_now: u64,
    /// Batch memory occupancy at that moment (`M_i`, Eq. 3).
    pub memory: u64,
}

/// Stateless implementation of Eq. 2–4.
#[derive(Debug, Clone, Copy, Default)]
pub struct FutureMemoryEstimator;

impl FutureMemoryEstimator {
    /// Future required memory `M*` of a batch (Eq. 4). Zero for an empty
    /// batch.
    ///
    /// # Example
    ///
    /// ```
    /// use pf_core::{BatchEntry, FutureMemoryEstimator};
    ///
    /// let batch = [
    ///     BatchEntry { committed: 5, remaining: 2 },
    ///     BatchEntry { committed: 5, remaining: 4 },
    /// ];
    /// assert_eq!(FutureMemoryEstimator::peak_memory(&batch), 14);
    /// ```
    pub fn peak_memory(entries: &[BatchEntry]) -> u64 {
        let mut sorted: Vec<BatchEntry> = entries.to_vec();
        Self::sort_by_remaining_desc(&mut sorted);
        Self::peak_memory_sorted(&sorted)
    }

    /// `M*` for entries already sorted by `remaining` descending (Eq. 2
    /// order). Useful for incremental admission loops that maintain the
    /// sorted batch themselves.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the slice is not sorted descending.
    pub fn peak_memory_sorted(sorted: &[BatchEntry]) -> u64 {
        debug_assert!(
            sorted.windows(2).all(|w| w[0].remaining >= w[1].remaining),
            "entries must be sorted by remaining length, descending"
        );
        let mut prefix_committed = 0u64;
        let mut peak = 0u64;
        for (i, entry) in sorted.iter().enumerate() {
            prefix_committed += entry.committed;
            let m_i = prefix_committed + entry.remaining * (i as u64 + 1);
            peak = peak.max(m_i);
        }
        peak
    }

    /// The full occupancy profile: one [`CompletionPoint`] per request, in
    /// completion order (soonest first). Exposes the intermediate `M_i`
    /// values behind Eq. 4 for figures and diagnostics.
    pub fn memory_profile(entries: &[BatchEntry]) -> Vec<CompletionPoint> {
        let mut sorted: Vec<BatchEntry> = entries.to_vec();
        Self::sort_by_remaining_desc(&mut sorted);
        let mut prefix_committed = 0u64;
        let mut profile: Vec<CompletionPoint> = sorted
            .iter()
            .enumerate()
            .map(|(i, entry)| {
                prefix_committed += entry.committed;
                CompletionPoint {
                    steps_from_now: entry.remaining,
                    memory: prefix_committed + entry.remaining * (i as u64 + 1),
                }
            })
            .collect();
        profile.reverse(); // soonest completion first
        profile
    }

    /// Whether the batch plus capacity constraint admits completion without
    /// a future shortfall.
    pub fn fits(entries: &[BatchEntry], capacity: u64) -> bool {
        Self::peak_memory(entries) <= capacity
    }

    /// `M*` computed by sorting `entries` in place — the allocation-free
    /// variant of [`peak_memory`](Self::peak_memory) for callers that own
    /// a reusable scratch buffer. Leaves the slice in Eq. 2 order.
    pub fn peak_memory_in_place(entries: &mut [BatchEntry]) -> u64 {
        Self::sort_by_remaining_desc(entries);
        Self::peak_memory_sorted(entries)
    }

    /// Sorts entries into Eq. 2 order (`remaining` descending), the order
    /// [`peak_memory_sorted`](Self::peak_memory_sorted) requires.
    pub fn sort_by_remaining_desc(entries: &mut [BatchEntry]) {
        entries.sort_unstable_by_key(|e| std::cmp::Reverse(e.remaining));
    }

    /// The running batch advanced by `steps` synchronized decode steps:
    /// every entry grows by one token per step and leaves once its
    /// remaining length is exhausted.
    pub fn advance(entries: &[BatchEntry], steps: u64) -> Vec<BatchEntry> {
        entries
            .iter()
            .filter(|e| e.remaining > steps)
            .map(|e| BatchEntry {
                committed: e.committed + steps,
                remaining: e.remaining - steps,
            })
            .collect()
    }

    /// Builds an [`AdmissionIndex`] over a batch in Eq. 2 order — see the
    /// index type for the O(log n) candidate-probe contract.
    pub fn admission_index(sorted: &[BatchEntry]) -> AdmissionIndex {
        let mut index = AdmissionIndex::default();
        index.rebuild(sorted);
        index
    }

    /// The paper's "optimal time point" (Figures 5 and 6): the smallest
    /// number of future decode steps after which `candidate` can join
    /// `running` without the batch's future required memory exceeding
    /// `capacity`.
    ///
    /// Pass the candidate in whichever form matches the model in use: the
    /// raw `(input, predicted_output)` entry for the paper's synchronized
    /// decode model, or [`QueuedRequest::post_prefill_entry`] for
    /// engine-accurate accounting (where the admission prefill emits the
    /// first token while the batch is paused).
    ///
    /// Returns `None` when the candidate cannot fit even on an empty
    /// system. Cost is O(max_remaining × k log k) — this is an analysis
    /// helper, not a per-step scheduler primitive (the scheduler only
    /// needs the δ = 0 test).
    ///
    /// [`QueuedRequest::post_prefill_entry`]: crate::QueuedRequest::post_prefill_entry
    pub fn earliest_admission_step(
        running: &[BatchEntry],
        candidate: BatchEntry,
        capacity: u64,
    ) -> Option<u64> {
        if candidate.total_at_completion() > capacity {
            return None;
        }
        let horizon = running.iter().map(|e| e.remaining).max().unwrap_or(0);
        for steps in 0..=horizon {
            let mut batch = Self::advance(running, steps);
            batch.push(candidate);
            if Self::peak_memory(&batch) <= capacity {
                return Some(steps);
            }
        }
        // Past the horizon the batch has fully drained.
        Some(horizon + 1)
    }
}

/// Precomputed Eq. 2–4 state of one running batch, answering "what would
/// `M*` be if `candidate` joined the batch `steps` synchronized decode
/// steps from now?" in O(log n) instead of a fresh O(n log n)
/// clone-and-sort per probe.
///
/// The trick: with the batch fixed and sorted by `remaining` descending,
/// each entry's completion-point term `M_i = Σ_{k≤i} committed_k +
/// remaining_i · (i+1)` is *invariant* under synchronized decode steps —
/// every step adds `i+1` committed tokens to the prefix and removes
/// exactly `i+1` from the remaining term. A candidate inserted at
/// position `p` therefore splits the peak into three closed forms:
///
/// * entries before `p` keep their invariant terms (a prefix maximum);
/// * the candidate's own term is `Σ_{k<p} committed_k + p·steps +
///   committed_c + remaining_c · (p+1)`;
/// * entries at or past `p` shift one slot and gain the candidate's
///   committed tokens: their term becomes `M_i + remaining_i +
///   committed_c − steps` (a suffix maximum over `M_i + remaining_i`).
///
/// `rebuild` is O(n); every probe after it is a binary search for `p`
/// plus constant work, and returns *exactly* what
/// [`FutureMemoryEstimator::peak_memory`] would on the advanced batch
/// plus candidate. The index is valid while the batch's membership is
/// unchanged and no member has finished (`steps` below the smallest
/// remaining length) — callers rebuild on any admission or completion.
#[derive(Debug, Clone)]
pub struct AdmissionIndex {
    /// Per-entry `remaining` as of the index's reference step, descending
    /// (the Eq. 2 key).
    remaining: Vec<u64>,
    /// Per-entry `committed` as of the reference step, parallel to
    /// `remaining`.
    committed: Vec<u64>,
    /// `prefix_committed[i]` = Σ committed of entries `0..i` (length n+1).
    prefix_committed: Vec<u64>,
    /// `prefix_term_max[i]` = max of the invariant terms over `0..i`
    /// (length n+1, zero at 0).
    prefix_term_max: Vec<u64>,
    /// `suffix_term_rem_max[i]` = max of `term_k + remaining_k` over
    /// `i..n` (length n+1, zero at n).
    suffix_term_rem_max: Vec<u64>,
}

impl Default for AdmissionIndex {
    /// A valid index over the empty batch (the prefix arrays carry their
    /// length-`n+1` sentinel zeros even at `n = 0`).
    fn default() -> Self {
        AdmissionIndex {
            remaining: Vec::new(),
            committed: Vec::new(),
            prefix_committed: vec![0],
            prefix_term_max: vec![0],
            suffix_term_rem_max: vec![0],
        }
    }
}

impl AdmissionIndex {
    /// Recomputes the index from a batch in Eq. 2 order, reusing the
    /// existing allocations. The batch's values become the new reference
    /// step (`steps = 0` in subsequent probes).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the slice is not sorted descending.
    pub fn rebuild(&mut self, sorted: &[BatchEntry]) {
        debug_assert!(
            sorted.windows(2).all(|w| w[0].remaining >= w[1].remaining),
            "entries must be sorted by remaining length, descending"
        );
        self.remaining.clear();
        self.remaining.extend(sorted.iter().map(|e| e.remaining));
        self.committed.clear();
        self.committed.extend(sorted.iter().map(|e| e.committed));
        self.recompute_derived();
    }

    /// Entries the index currently covers.
    pub fn len(&self) -> usize {
        self.remaining.len()
    }

    /// Whether the index covers an empty batch.
    pub fn is_empty(&self) -> bool {
        self.remaining.is_empty()
    }

    /// `M*` of the indexed batch advanced by `steps` synchronized decode
    /// steps with `candidate` inserted at its Eq. 2 position — exactly
    /// [`FutureMemoryEstimator::peak_memory`] on that merged batch, in
    /// O(log n).
    ///
    /// `steps` counts decode steps since the reference step and must stay
    /// below every indexed entry's remaining length (a completion changes
    /// membership — apply [`retire_due`](Self::retire_due) first); debug
    /// builds assert this.
    pub fn peak_with(&self, candidate: BatchEntry, steps: u64) -> u64 {
        debug_assert!(
            self.remaining.last().is_none_or(|&min| min > steps),
            "index stale: a member finished within {steps} steps"
        );
        let n = self.remaining.len();
        // Position by *current* remaining: r0 − steps ≥ r_c ⟺ r0 ≥ r_c + steps.
        let threshold = candidate.remaining.saturating_add(steps);
        let p = self.remaining.partition_point(|&r| r >= threshold);
        let mut peak = self.prefix_term_max[p];
        let candidate_term = self.prefix_committed[p]
            + p as u64 * steps
            + candidate.committed
            + candidate.remaining * (p as u64 + 1);
        peak = peak.max(candidate_term);
        if p < n {
            peak = peak.max(self.suffix_term_rem_max[p] - steps + candidate.committed);
        }
        peak
    }

    /// Admits `candidate` into the indexed batch `steps` decode steps
    /// after the reference step: rebases every entry to the current step,
    /// inserts the candidate at its Eq. 2 position and re-derives the
    /// probe arrays — O(n), no sorting. The current step becomes the new
    /// reference (`steps = 0` afterwards).
    pub fn admit(&mut self, candidate: BatchEntry, steps: u64) {
        self.rebase(steps);
        let p = self
            .remaining
            .partition_point(|&r| r >= candidate.remaining);
        self.remaining.insert(p, candidate.remaining);
        self.committed.insert(p, candidate.committed);
        self.recompute_derived();
    }

    /// Retires every entry finishing exactly at `steps` decode steps past
    /// the reference step (their remaining length is exhausted — they are
    /// the tail of the Eq. 2 order), rebases the survivors to the current
    /// step and re-derives the probe arrays — O(n), no sorting. Returns
    /// the number retired; the current step becomes the new reference.
    ///
    /// Debug builds assert no entry finished *before* `steps` (callers
    /// retire at every completion step, so earlier finishers are already
    /// gone).
    pub fn retire_due(&mut self, steps: u64) -> usize {
        debug_assert!(
            self.remaining.last().is_none_or(|&min| min >= steps),
            "index stale: a member finished before {steps} steps"
        );
        self.rebase(steps);
        let keep = self.remaining.partition_point(|&r| r > 0);
        let retired = self.remaining.len() - keep;
        self.remaining.truncate(keep);
        self.committed.truncate(keep);
        self.recompute_derived();
        retired
    }

    /// Advances every entry's values by `steps` synchronized decode steps
    /// (committed grows, remaining shrinks; descending order survives the
    /// uniform shift).
    fn rebase(&mut self, steps: u64) {
        if steps == 0 {
            return;
        }
        for r in &mut self.remaining {
            *r -= steps;
        }
        for c in &mut self.committed {
            *c += steps;
        }
    }

    /// Recomputes the prefix/suffix probe arrays from the raw entry
    /// values.
    fn recompute_derived(&mut self) {
        let n = self.remaining.len();
        self.prefix_committed.clear();
        self.prefix_committed.push(0);
        self.prefix_term_max.clear();
        self.prefix_term_max.push(0);
        let mut committed_sum = 0u64;
        let mut term_max = 0u64;
        let mut terms = std::mem::take(&mut self.suffix_term_rem_max);
        terms.clear();
        for i in 0..n {
            committed_sum += self.committed[i];
            self.prefix_committed.push(committed_sum);
            let term = committed_sum + self.remaining[i] * (i as u64 + 1);
            term_max = term_max.max(term);
            self.prefix_term_max.push(term_max);
            terms.push(term + self.remaining[i]);
        }
        // Turn the per-entry `term + remaining` values into a suffix max.
        terms.push(0);
        for i in (0..n).rev() {
            terms[i] = terms[i].max(terms[i + 1]);
        }
        self.suffix_term_rem_max = terms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(committed: u64, remaining: u64) -> BatchEntry {
        BatchEntry {
            committed,
            remaining,
        }
    }

    #[test]
    fn empty_batch_needs_nothing() {
        assert_eq!(FutureMemoryEstimator::peak_memory(&[]), 0);
        assert!(FutureMemoryEstimator::memory_profile(&[]).is_empty());
        assert!(FutureMemoryEstimator::fits(&[], 0));
    }

    #[test]
    fn single_request_peaks_at_completion() {
        // One request: peak is its own total footprint.
        assert_eq!(FutureMemoryEstimator::peak_memory(&[e(10, 5)]), 15);
        let profile = FutureMemoryEstimator::memory_profile(&[e(10, 5)]);
        assert_eq!(
            profile,
            vec![CompletionPoint {
                steps_from_now: 5,
                memory: 15
            }]
        );
    }

    #[test]
    fn paper_figure_5_scenario() {
        // Scheduling the queued request (input 3, predicted output 5) into a
        // batch of two running requests at time t peaks at 19 tokens; one
        // step later the peak is 18 (Figure 5's "Max Memory Usage" 19 vs 18).
        let at_t = [e(5, 2), e(5, 4), e(3, 5)];
        assert_eq!(FutureMemoryEstimator::peak_memory(&at_t), 19);
        // At t+1 both running requests have grown by one token and are one
        // step closer to finishing.
        let at_t1 = [e(6, 1), e(6, 3), e(3, 5)];
        assert_eq!(FutureMemoryEstimator::peak_memory(&at_t1), 18);
    }

    #[test]
    fn profile_matches_hand_computation() {
        // Entries sorted desc by remaining: (3,5), (5,4), (5,2).
        // M_1 = 3 + 5*1 = 8; M_2 = 3+5 + 4*2 = 16; M_3 = 13 + 2*3 = 19.
        let profile = FutureMemoryEstimator::memory_profile(&[e(5, 2), e(5, 4), e(3, 5)]);
        assert_eq!(
            profile,
            vec![
                CompletionPoint {
                    steps_from_now: 2,
                    memory: 19
                },
                CompletionPoint {
                    steps_from_now: 4,
                    memory: 16
                },
                CompletionPoint {
                    steps_from_now: 5,
                    memory: 8
                },
            ]
        );
    }

    #[test]
    fn peak_is_max_of_profile() {
        let batch = [e(7, 3), e(2, 9), e(4, 4), e(1, 1)];
        let peak = FutureMemoryEstimator::peak_memory(&batch);
        let profile_max = FutureMemoryEstimator::memory_profile(&batch)
            .iter()
            .map(|p| p.memory)
            .max()
            .unwrap();
        assert_eq!(peak, profile_max);
    }

    #[test]
    fn zero_remaining_finishes_now() {
        // A request finishing immediately still holds its memory at the
        // moment it completes.
        assert_eq!(FutureMemoryEstimator::peak_memory(&[e(10, 0)]), 10);
        assert_eq!(
            FutureMemoryEstimator::peak_memory(&[e(10, 0), e(5, 3)]),
            // Sorted: (5,3),(10,0): M1 = 5+3 = 8, M2 = 15 + 0 = 15.
            15
        );
    }

    #[test]
    fn sorted_variant_matches_unsorted() {
        let mut batch = vec![e(7, 3), e(2, 9), e(4, 4), e(1, 1)];
        let peak = FutureMemoryEstimator::peak_memory(&batch);
        batch.sort_unstable_by_key(|e| std::cmp::Reverse(e.remaining));
        assert_eq!(FutureMemoryEstimator::peak_memory_sorted(&batch), peak);
    }

    #[test]
    fn fits_is_inclusive() {
        let batch = [e(5, 2), e(5, 4), e(3, 5)];
        assert!(FutureMemoryEstimator::fits(&batch, 19));
        assert!(!FutureMemoryEstimator::fits(&batch, 18));
    }

    #[test]
    fn conservative_bound_recovered_with_equal_remaining() {
        // When all requests finish simultaneously no memory is ever
        // released early, so M* equals the sum of total footprints — the
        // conservative scheduler's estimate.
        let batch = [e(4, 6), e(9, 6), e(2, 6)];
        let sum_totals: u64 = batch.iter().map(|b| b.total_at_completion()).sum();
        assert_eq!(FutureMemoryEstimator::peak_memory(&batch), sum_totals);
    }

    #[test]
    fn advance_grows_and_retires() {
        let batch = [e(5, 2), e(5, 4)];
        assert_eq!(
            FutureMemoryEstimator::advance(&batch, 1),
            vec![e(6, 1), e(6, 3)]
        );
        // After 2 steps the first request has finished and released.
        assert_eq!(FutureMemoryEstimator::advance(&batch, 2), vec![e(7, 2)]);
        assert!(FutureMemoryEstimator::advance(&batch, 4).is_empty());
    }

    #[test]
    fn earliest_admission_matches_figure_5() {
        // Figure 5's batch (synchronized model, candidate = input 3 with
        // predicted output 5): peak 19 if admitted now, 18 one step later.
        let running = [e(5, 2), e(5, 4)];
        let candidate = e(3, 5);
        assert_eq!(
            FutureMemoryEstimator::earliest_admission_step(&running, candidate, 19),
            Some(0)
        );
        assert_eq!(
            FutureMemoryEstimator::earliest_admission_step(&running, candidate, 18),
            Some(1)
        );
    }

    #[test]
    fn earliest_admission_matches_figure_6() {
        // Figure 6's capacity-21 scenario: the optimal admission step for
        // the new request is t+1 (where the oracle admits it).
        let running = [e(5, 2), e(4, 5)];
        let candidate = e(7, 5);
        assert_eq!(
            FutureMemoryEstimator::earliest_admission_step(&running, candidate, 21),
            Some(1)
        );
    }

    #[test]
    fn earliest_admission_impossible_candidate() {
        assert_eq!(
            FutureMemoryEstimator::earliest_admission_step(&[], e(10, 20), 29),
            None
        );
        assert_eq!(
            FutureMemoryEstimator::earliest_admission_step(&[], e(10, 20), 30),
            Some(0)
        );
    }

    #[test]
    fn earliest_admission_waits_for_drain_when_tight() {
        // Capacity only fits the candidate alone: it must wait until the
        // last running request finishes.
        let running = [e(10, 7)];
        let candidate = e(10, 8);
        let capacity = 18; // candidate total, exactly
                           // The running request emits its last token at step 7 and releases
                           // at that boundary, which is when the candidate can enter.
        assert_eq!(
            FutureMemoryEstimator::earliest_admission_step(&running, candidate, capacity),
            Some(7)
        );
    }

    #[test]
    fn admission_index_matches_direct_peak() {
        // Figure 5's batch: probing the candidate now and one step later
        // must reproduce the direct Eq. 2–4 computation (19, then 18).
        let mut running = vec![e(5, 2), e(5, 4)];
        FutureMemoryEstimator::sort_by_remaining_desc(&mut running);
        let index = FutureMemoryEstimator::admission_index(&running);
        let candidate = e(3, 5);
        assert_eq!(index.peak_with(candidate, 0), 19);
        assert_eq!(index.peak_with(candidate, 1), 18);
    }

    #[test]
    fn admission_index_empty_batch() {
        let index = FutureMemoryEstimator::admission_index(&[]);
        assert!(index.is_empty());
        // The never-rebuilt default is the same valid empty index.
        assert_eq!(
            AdmissionIndex::default().peak_with(e(10, 5), 0),
            index.peak_with(e(10, 5), 0)
        );
        // A candidate alone peaks at its own total footprint.
        assert_eq!(index.peak_with(e(10, 5), 0), 15);
        assert_eq!(index.peak_with(e(10, 5), 7), 15);
    }

    #[test]
    fn admission_index_rebuild_reuses_allocations() {
        let mut index = AdmissionIndex::default();
        index.rebuild(&[e(5, 4), e(5, 2)]);
        assert_eq!(index.len(), 2);
        index.rebuild(&[e(7, 3)]);
        assert_eq!(index.len(), 1);
        // Sorted merge [(7,3), (2,1)]: M_1 = 7+3·1 = 10, M_2 = 9+1·2 = 11.
        assert_eq!(index.peak_with(e(2, 1), 0), 11);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn entries_strategy() -> impl Strategy<Value = Vec<BatchEntry>> {
            proptest::collection::vec(
                (0u64..10_000, 0u64..5_000).prop_map(|(committed, remaining)| BatchEntry {
                    committed,
                    remaining,
                }),
                0..64,
            )
        }

        proptest! {
            /// M* is at least the current occupancy (nothing is released
            /// before the first completion) and at most the sum of total
            /// footprints (the no-release worst case).
            #[test]
            fn peak_bounded_by_current_and_sum(entries in entries_strategy()) {
                let peak = FutureMemoryEstimator::peak_memory(&entries);
                let current: u64 = entries.iter().map(|e| e.committed).sum();
                let sum_totals: u64 = entries.iter().map(|e| e.total_at_completion()).sum();
                prop_assert!(peak >= current);
                prop_assert!(peak <= sum_totals);
                // Peak also dominates every individual request's own total.
                for e in &entries {
                    prop_assert!(peak >= e.total_at_completion());
                }
            }

            /// Permuting the batch never changes M* (Eq. 2 sorts internally).
            #[test]
            fn permutation_invariant(entries in entries_strategy(), seed in 0u64..100) {
                use rand::seq::SliceRandom;
                use rand::SeedableRng;
                let peak = FutureMemoryEstimator::peak_memory(&entries);
                let mut shuffled = entries.clone();
                shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
                prop_assert_eq!(FutureMemoryEstimator::peak_memory(&shuffled), peak);
            }

            /// Adding a request can only increase M* (admission monotonicity
            /// — this is what makes Algorithm 1's first-reject cutoff sound).
            #[test]
            fn monotone_in_batch_extension(
                entries in entries_strategy(),
                extra_committed in 0u64..10_000,
                extra_remaining in 0u64..5_000,
            ) {
                let before = FutureMemoryEstimator::peak_memory(&entries);
                let mut extended = entries.clone();
                extended.push(BatchEntry {
                    committed: extra_committed,
                    remaining: extra_remaining,
                });
                let after = FutureMemoryEstimator::peak_memory(&extended);
                prop_assert!(after >= before);
            }

            /// The earliest admission step is truly minimal: the batch fits
            /// at the returned step and not one step earlier.
            #[test]
            fn earliest_admission_is_minimal(
                entries in entries_strategy(),
                committed in 0u64..2_000,
                remaining in 0u64..1_000,
                slack in 0u64..10_000,
            ) {
                let candidate = BatchEntry { committed, remaining };
                // Capacity somewhere between "candidate alone" and "whole
                // batch at once".
                let capacity = candidate.total_at_completion() + slack;
                let Some(step) =
                    FutureMemoryEstimator::earliest_admission_step(&entries, candidate, capacity)
                else {
                    prop_assert!(candidate.total_at_completion() > capacity);
                    return Ok(());
                };
                let mut at_step = FutureMemoryEstimator::advance(&entries, step);
                at_step.push(candidate);
                prop_assert!(FutureMemoryEstimator::peak_memory(&at_step) <= capacity);
                if step > 0 {
                    let mut earlier = FutureMemoryEstimator::advance(&entries, step - 1);
                    earlier.push(candidate);
                    prop_assert!(
                        FutureMemoryEstimator::peak_memory(&earlier) > capacity,
                        "step {step} is not minimal"
                    );
                }
            }

            /// The O(log n) admission index returns exactly what a direct
            /// advance-insert-and-sort Eq. 2–4 evaluation returns, for any
            /// batch, candidate and in-validity-window step offset.
            #[test]
            fn admission_index_matches_naive(
                entries in entries_strategy(),
                committed in 0u64..10_000,
                remaining in 0u64..5_000,
                steps_seed in 0u64..5_000,
            ) {
                let mut batch: Vec<BatchEntry> =
                    entries.into_iter().filter(|e| e.remaining > 0).collect();
                FutureMemoryEstimator::sort_by_remaining_desc(&mut batch);
                let index = FutureMemoryEstimator::admission_index(&batch);
                // Any step strictly below the smallest remaining keeps the
                // index valid (no member finishes).
                let min_remaining = batch.iter().map(|e| e.remaining).min().unwrap_or(u64::MAX);
                let steps = steps_seed % min_remaining.min(5_000);
                let candidate = BatchEntry { committed, remaining };
                let mut merged = FutureMemoryEstimator::advance(&batch, steps);
                merged.push(candidate);
                prop_assert_eq!(
                    index.peak_with(candidate, steps),
                    FutureMemoryEstimator::peak_memory(&merged)
                );
            }

            /// The index stays exact through an arbitrary
            /// admit/step/retire lifecycle — the maintenance the decode
            /// engines perform: after every operation an admission probe
            /// returns the same Eq. 2–4 peak as a from-scratch
            /// evaluation of the live batch.
            #[test]
            fn admission_index_lifecycle_matches_naive(
                ops in proptest::collection::vec((0u8..4, 0u64..200, 1u64..40), 1..60),
                probe_committed in 0u64..500,
                probe_remaining in 0u64..50,
            ) {
                let mut index = AdmissionIndex::default();
                // The live batch at *current* values; the index's
                // reference step trails it by `steps`.
                let mut live: Vec<BatchEntry> = Vec::new();
                let mut steps = 0u64;
                for (op, committed, remaining) in ops {
                    if op == 0 || live.is_empty() {
                        let cand = BatchEntry { committed, remaining };
                        index.admit(cand, steps);
                        steps = 0;
                        live.push(cand);
                    } else {
                        // One synchronized decode step; finishers retire.
                        for e in &mut live {
                            e.committed += 1;
                            e.remaining -= 1;
                        }
                        steps += 1;
                        let finished = live.iter().filter(|e| e.remaining == 0).count();
                        if finished > 0 {
                            live.retain(|e| e.remaining > 0);
                            prop_assert_eq!(index.retire_due(steps), finished);
                            steps = 0;
                        }
                    }
                    prop_assert_eq!(index.len(), live.len());
                    let probe = BatchEntry {
                        committed: probe_committed,
                        remaining: probe_remaining,
                    };
                    let mut merged = live.clone();
                    merged.push(probe);
                    prop_assert_eq!(
                        index.peak_with(probe, steps),
                        FutureMemoryEstimator::peak_memory(&merged)
                    );
                }
            }

            /// M* exactly simulates the step-by-step token growth: replaying
            /// the batch decode-by-decode and releasing each request as it
            /// finishes never exceeds M*, and touches it at some step.
            #[test]
            fn matches_step_replay(entries in entries_strategy()) {
                let peak = FutureMemoryEstimator::peak_memory(&entries);
                // Brute-force replay. A request's memory counts up to and
                // including the step at which it emits its final token, and
                // is released before the next step.
                let mut live: Vec<BatchEntry> = entries.clone();
                let mut replay_peak: u64 = live.iter().map(|e| e.committed).sum();
                live.retain(|e| e.remaining > 0);
                while !live.is_empty() {
                    // Every live request generates one token.
                    for e in &mut live {
                        e.committed += 1;
                        e.remaining -= 1;
                    }
                    let occupancy: u64 = live.iter().map(|e| e.committed).sum();
                    replay_peak = replay_peak.max(occupancy);
                    live.retain(|e| e.remaining > 0);
                }
                prop_assert_eq!(replay_peak, peak);
            }
        }
    }
}
