//! The oracle scheduler — the paper's "theoretical optimum" baseline.

use crate::estimator::{BatchEntry, FutureMemoryEstimator};
use crate::scheduler::{MemoryState, QueuedRequest, RunningRequest, Scheduler};

/// Admission with perfect knowledge of every request's true output length.
///
/// This is the upper bound the paper's Table 1 calls *theoretical optimum*:
/// it runs the same future-required-memory machinery (Eq. 2–4) as the
/// Past-Future scheduler, but with the ground-truth remaining lengths
/// instead of sampled predictions, and with no reserved-memory safety
/// margin. Under the simulator's exact token accounting it never evicts and
/// achieves the best possible memory utilization. Impossible in production
/// — output lengths are unknowable in advance — but it calibrates how close
/// the Past-Future scheduler gets.
#[derive(Debug, Clone, Default)]
pub struct OracleScheduler;

impl OracleScheduler {
    /// Creates the oracle.
    pub fn new() -> Self {
        OracleScheduler
    }

    fn entry_for_running(request: &RunningRequest) -> BatchEntry {
        let remaining = request
            .oracle_remaining
            .map(u64::from)
            .unwrap_or_else(|| request.worst_case_remaining());
        BatchEntry {
            committed: request.committed(),
            remaining,
        }
    }

    fn entry_for_queued(request: &QueuedRequest) -> BatchEntry {
        // Model the candidate at its post-prefill state: the prefill emits
        // the first token during a step in which the running batch does not
        // grow (see `QueuedRequest::post_prefill_entry`).
        let predicted_total = request
            .oracle_remaining
            .map(|r| request.generated + r)
            .unwrap_or(request.max_new_tokens);
        let (committed, remaining) = request.post_prefill_entry(predicted_total);
        BatchEntry {
            committed,
            remaining,
        }
    }
}

impl Scheduler for OracleScheduler {
    fn name(&self) -> &str {
        "theoretical-optimum"
    }

    fn plan_admission(
        &mut self,
        running: &[RunningRequest],
        queue: &[QueuedRequest],
        memory: &MemoryState,
    ) -> usize {
        let mut entries: Vec<BatchEntry> = running.iter().map(Self::entry_for_running).collect();
        let mut admitted = 0;
        for candidate in queue {
            entries.push(Self::entry_for_queued(candidate));
            if FutureMemoryEstimator::peak_memory(&entries) <= memory.capacity_tokens {
                admitted += 1;
            } else {
                break;
            }
        }
        admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queued(id: u64, input: u32, true_out: u32) -> QueuedRequest {
        QueuedRequest {
            id,
            input_len: input,
            generated: 0,
            max_new_tokens: 10_000,
            oracle_remaining: Some(true_out),
        }
    }

    #[test]
    fn admits_to_exact_capacity() {
        let mut s = OracleScheduler::new();
        // Two requests, each peaking at input 10 + output 40 = 50; they
        // finish simultaneously, so M* = 100 exactly.
        let queue = [queued(0, 10, 40), queued(1, 10, 40)];
        let exact = MemoryState {
            capacity_tokens: 100,
            used_tokens: 0,
        };
        assert_eq!(s.plan_admission(&[], &queue, &exact), 2);
        let short = MemoryState {
            capacity_tokens: 99,
            used_tokens: 0,
        };
        assert_eq!(s.plan_admission(&[], &queue, &short), 1);
    }

    #[test]
    fn exploits_staggered_completions() {
        let mut s = OracleScheduler::new();
        // A short request can ride along with a long one because it
        // releases memory early: entries (10,2) and (10,50).
        // Sorted desc: (10,50),(10,2): M1 = 60, M2 = 20 + 2*2 = 24 → M* = 60.
        let queue = [queued(0, 10, 50), queued(1, 10, 2)];
        let memory = MemoryState {
            capacity_tokens: 72,
            used_tokens: 0,
        };
        // Sum of totals would be 72 — conservative admits both only at 72.
        // The oracle needs just M* = max(60, 24+?) …
        assert_eq!(s.plan_admission(&[], &queue, &memory), 2);
        let tight = MemoryState {
            capacity_tokens: 60,
            used_tokens: 0,
        };
        assert_eq!(s.plan_admission(&[], &queue, &tight), 2, "M* is only 60");
    }

    #[test]
    fn uses_true_remaining_for_running() {
        let mut s = OracleScheduler::new();
        let running = [RunningRequest {
            id: 0,
            input_len: 50,
            generated: 10,
            max_new_tokens: 10_000,
            oracle_remaining: Some(5),
        }];
        // Running truly needs 60 + 5 = 65 peak. The queued candidate is
        // modelled post-prefill as (21, 19): its prefill emits one token
        // while the running request is paused. Batch peak: sorted
        // (21,19),(60,5): M1 = 21 + 19 = 40, M2 = 81 + 5·2 = 91.
        let queue = [queued(1, 20, 20)];
        let fits = MemoryState {
            capacity_tokens: 91,
            used_tokens: 60,
        };
        assert_eq!(s.plan_admission(&running, &queue, &fits), 1);
        let no = MemoryState {
            capacity_tokens: 90,
            used_tokens: 60,
        };
        assert_eq!(s.plan_admission(&running, &queue, &no), 0);
    }

    #[test]
    fn falls_back_to_worst_case_without_oracle_data() {
        let mut s = OracleScheduler::new();
        let queue = [QueuedRequest {
            id: 0,
            input_len: 10,
            generated: 0,
            max_new_tokens: 100,
            oracle_remaining: None,
        }];
        let memory = MemoryState {
            capacity_tokens: 109,
            used_tokens: 0,
        };
        assert_eq!(s.plan_admission(&[], &queue, &memory), 0);
        let memory = MemoryState {
            capacity_tokens: 110,
            used_tokens: 0,
        };
        assert_eq!(s.plan_admission(&[], &queue, &memory), 1);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(OracleScheduler::new().name(), "theoretical-optimum");
    }
}
