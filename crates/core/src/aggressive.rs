//! The aggressive baseline scheduler (vLLM-style).

use crate::scheduler::{MemoryState, QueuedRequest, RunningRequest, Scheduler};

/// Aggressive admission: batch requests based on *current* memory only,
/// ignoring the memory their outputs will need (paper Section 2.4).
///
/// A queued request is admitted while current usage plus the prompts of the
/// newly admitted requests stays below `watermark × capacity`. This is the
/// vLLM-style policy: it maximizes instantaneous utilization but routinely
/// discovers mid-decode that the batch has outgrown memory, forcing request
/// evictions (recompute preemption) that stall outputs and break the MTPOT
/// SLA under load.
#[derive(Debug, Clone)]
pub struct AggressiveScheduler {
    watermark: f64,
    name: String,
}

impl AggressiveScheduler {
    /// Creates a scheduler admitting up to `watermark × capacity` tokens
    /// (the paper evaluates 0.90/0.95/0.99).
    ///
    /// # Panics
    ///
    /// Panics if `watermark` is not within `(0, 1]`.
    pub fn new(watermark: f64) -> Self {
        assert!(
            watermark > 0.0 && watermark <= 1.0,
            "watermark {watermark} outside (0, 1]"
        );
        AggressiveScheduler {
            watermark,
            name: format!("aggressive(watermark={:.0}%)", watermark * 100.0),
        }
    }

    /// The admission watermark.
    pub fn watermark(&self) -> f64 {
        self.watermark
    }
}

impl Default for AggressiveScheduler {
    /// vLLM's default watermark behaviour (admit close to full capacity).
    fn default() -> Self {
        AggressiveScheduler::new(0.99)
    }
}

impl Scheduler for AggressiveScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn plan_admission(
        &mut self,
        _running: &[RunningRequest],
        queue: &[QueuedRequest],
        memory: &MemoryState,
    ) -> usize {
        let budget = (memory.capacity_tokens as f64 * self.watermark) as u64;
        let mut used = memory.used_tokens;
        let mut admitted = 0;
        for candidate in queue {
            let need = candidate.committed_on_admission();
            if used + need <= budget {
                used += need;
                admitted += 1;
            } else {
                break;
            }
        }
        admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queued(id: u64, input: u32) -> QueuedRequest {
        QueuedRequest {
            id,
            input_len: input,
            generated: 0,
            max_new_tokens: 10_000,
            oracle_remaining: None,
        }
    }

    #[test]
    fn admits_until_watermark() {
        let mut s = AggressiveScheduler::new(0.9);
        let queue: Vec<QueuedRequest> = (0..10).map(|i| queued(i, 100)).collect();
        let memory = MemoryState {
            capacity_tokens: 1000,
            used_tokens: 500,
        };
        // Budget 900; 500 used; each prompt 100 → admit 4.
        assert_eq!(s.plan_admission(&[], &queue, &memory), 4);
    }

    #[test]
    fn ignores_output_requirements_entirely() {
        // Even though every request may generate 10k tokens, the aggressive
        // scheduler only counts the 1-token prompts.
        let mut s = AggressiveScheduler::new(1.0);
        let queue: Vec<QueuedRequest> = (0..50).map(|i| queued(i, 1)).collect();
        let memory = MemoryState {
            capacity_tokens: 50,
            used_tokens: 0,
        };
        assert_eq!(s.plan_admission(&[], &queue, &memory), 50);
    }

    #[test]
    fn requeued_requests_count_their_generated_tokens() {
        let mut s = AggressiveScheduler::new(1.0);
        let queue = [QueuedRequest {
            id: 0,
            input_len: 40,
            generated: 30,
            max_new_tokens: 100,
            oracle_remaining: None,
        }];
        let tight = MemoryState {
            capacity_tokens: 69,
            used_tokens: 0,
        };
        assert_eq!(s.plan_admission(&[], &queue, &tight), 0);
        let enough = MemoryState {
            capacity_tokens: 70,
            used_tokens: 0,
        };
        assert_eq!(s.plan_admission(&[], &queue, &enough), 1);
    }

    #[test]
    fn stops_at_first_reject() {
        let mut s = AggressiveScheduler::new(1.0);
        let queue = [queued(0, 80), queued(1, 10)];
        let memory = MemoryState {
            capacity_tokens: 50,
            used_tokens: 0,
        };
        // First doesn't fit → FCFS stops even though the second would fit.
        assert_eq!(s.plan_admission(&[], &queue, &memory), 0);
    }

    #[test]
    fn name_and_default() {
        assert_eq!(
            AggressiveScheduler::new(0.95).name(),
            "aggressive(watermark=95%)"
        );
        assert_eq!(AggressiveScheduler::default().watermark(), 0.99);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn invalid_watermark_panics() {
        let _ = AggressiveScheduler::new(1.5);
    }
}
