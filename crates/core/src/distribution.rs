//! Empirical output-length distribution `P(l)` (paper Eq. 1).

use rand::Rng;

/// Empirical distribution over historical output lengths.
///
/// `P(l) = C(l, L_h) / w` where `C` counts occurrences of `l` in the window
/// (Eq. 1). Stored as a sorted sample vector, which makes both the
/// unconditional draw (uniform index) and the conditional draw from
/// `P(l > threshold)` (uniform index over a suffix found by binary search)
/// O(log n).
///
/// # Example
///
/// ```
/// use pf_core::OutputLengthDistribution;
/// use rand::SeedableRng;
///
/// let d = OutputLengthDistribution::from_lengths([40u32, 10, 20, 30]).unwrap();
/// assert_eq!(d.min(), 10);
/// assert_eq!(d.max(), 40);
/// assert_eq!(d.fraction_greater_than(20), 0.5);
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let sample = d.sample_greater_than(&mut rng, 25).unwrap();
/// assert!(sample > 25);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputLengthDistribution {
    sorted: Vec<u32>,
}

impl OutputLengthDistribution {
    /// Builds a distribution from observed lengths; `None` when empty.
    pub fn from_lengths<I: IntoIterator<Item = u32>>(lengths: I) -> Option<Self> {
        let mut sorted: Vec<u32> = lengths.into_iter().collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_unstable();
        Some(OutputLengthDistribution { sorted })
    }

    /// Number of observations backing the distribution (`w` in Eq. 1).
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// An empirical distribution is never empty (see
    /// [`OutputLengthDistribution::from_lengths`]).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Smallest observed length.
    pub fn min(&self) -> u32 {
        self.sorted[0]
    }

    /// Largest observed length.
    pub fn max(&self) -> u32 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Mean observed length.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().map(|&v| v as f64).sum::<f64>() / self.sorted.len() as f64
    }

    /// Probability mass at exactly `l`: `C(l, L_h) / w` (Eq. 1).
    pub fn prob_of(&self, l: u32) -> f64 {
        let lo = self.sorted.partition_point(|&v| v < l);
        let hi = self.sorted.partition_point(|&v| v <= l);
        (hi - lo) as f64 / self.sorted.len() as f64
    }

    /// Fraction of observations strictly greater than `threshold`
    /// (the normalizer of `P(l > threshold)`).
    pub fn fraction_greater_than(&self, threshold: u32) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= threshold);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile (`q` in `[0, 1]`), by nearest-rank.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u32 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        self.sorted[idx]
    }

    /// Draws a length from `P(l)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        self.sorted[rng.gen_range(0..self.sorted.len())]
    }

    /// Draws a length from the conditional `P(l | l > threshold)`.
    ///
    /// Returns `None` when no observation exceeds `threshold` — the caller
    /// must fall back to another bound (the Past-Future scheduler falls back
    /// to the request's `max_new_tokens`).
    pub fn sample_greater_than<R: Rng + ?Sized>(&self, rng: &mut R, threshold: u32) -> Option<u32> {
        let idx = self.sorted.partition_point(|&v| v <= threshold);
        if idx == self.sorted.len() {
            return None;
        }
        Some(self.sorted[rng.gen_range(idx..self.sorted.len())])
    }

    /// The sorted backing sample (primarily for tests and diagnostics).
    pub fn as_sorted_slice(&self) -> &[u32] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn from_empty_is_none() {
        assert!(OutputLengthDistribution::from_lengths(std::iter::empty()).is_none());
    }

    #[test]
    fn order_statistics() {
        let d = OutputLengthDistribution::from_lengths([5u32, 1, 3, 3]).unwrap();
        assert_eq!(d.len(), 4);
        assert_eq!(d.min(), 1);
        assert_eq!(d.max(), 5);
        assert_eq!(d.mean(), 3.0);
        assert_eq!(d.as_sorted_slice(), &[1, 3, 3, 5]);
    }

    #[test]
    fn prob_of_counts_duplicates() {
        let d = OutputLengthDistribution::from_lengths([2u32, 2, 2, 8]).unwrap();
        assert_eq!(d.prob_of(2), 0.75);
        assert_eq!(d.prob_of(8), 0.25);
        assert_eq!(d.prob_of(5), 0.0);
    }

    #[test]
    fn fraction_greater_than_boundaries() {
        let d = OutputLengthDistribution::from_lengths([10u32, 20, 30, 40]).unwrap();
        assert_eq!(d.fraction_greater_than(0), 1.0);
        assert_eq!(d.fraction_greater_than(10), 0.75);
        assert_eq!(d.fraction_greater_than(39), 0.25);
        assert_eq!(d.fraction_greater_than(40), 0.0);
    }

    #[test]
    fn quantiles() {
        let d = OutputLengthDistribution::from_lengths(1..=100u32).unwrap();
        assert_eq!(d.quantile(0.0), 1);
        assert_eq!(d.quantile(1.0), 100);
        assert_eq!(d.quantile(0.5), 51); // nearest rank of 49.5 → index 50
    }

    #[test]
    fn sample_stays_in_support() {
        let d = OutputLengthDistribution::from_lengths([4u32, 8, 15]).unwrap();
        let mut r = rng();
        for _ in 0..200 {
            assert!([4, 8, 15].contains(&d.sample(&mut r)));
        }
    }

    #[test]
    fn conditional_sampling_respects_threshold() {
        let d = OutputLengthDistribution::from_lengths([10u32, 20, 30]).unwrap();
        let mut r = rng();
        for _ in 0..200 {
            let s = d.sample_greater_than(&mut r, 15).unwrap();
            assert!(s == 20 || s == 30);
        }
        assert_eq!(d.sample_greater_than(&mut r, 30), None);
        assert_eq!(d.sample_greater_than(&mut r, 100), None);
    }

    #[test]
    fn conditional_sampling_matches_conditional_mass() {
        // With [10, 20, 20, 40] and threshold 15, P(20)=2/3, P(40)=1/3.
        let d = OutputLengthDistribution::from_lengths([10u32, 20, 20, 40]).unwrap();
        let mut r = rng();
        let n = 30_000;
        let mut count_20 = 0;
        for _ in 0..n {
            if d.sample_greater_than(&mut r, 15).unwrap() == 20 {
                count_20 += 1;
            }
        }
        let frac = count_20 as f64 / n as f64;
        assert!((frac - 2.0 / 3.0).abs() < 0.02, "P(20|>15) = {frac}");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_range_checked() {
        let d = OutputLengthDistribution::from_lengths([1u32]).unwrap();
        let _ = d.quantile(1.5);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn conditional_always_exceeds_threshold(
                lengths in proptest::collection::vec(0u32..10_000, 1..200),
                threshold in 0u32..10_000,
                seed in 0u64..500,
            ) {
                let d = OutputLengthDistribution::from_lengths(lengths.iter().copied()).unwrap();
                let mut r = StdRng::seed_from_u64(seed);
                match d.sample_greater_than(&mut r, threshold) {
                    Some(v) => prop_assert!(v > threshold),
                    None => prop_assert!(d.max() <= threshold),
                }
            }

            #[test]
            fn prob_masses_sum_to_one(
                lengths in proptest::collection::vec(0u32..100, 1..100),
            ) {
                let d = OutputLengthDistribution::from_lengths(lengths.iter().copied()).unwrap();
                let distinct: std::collections::BTreeSet<u32> = lengths.iter().copied().collect();
                let sum: f64 = distinct.iter().map(|&l| d.prob_of(l)).sum();
                prop_assert!((sum - 1.0).abs() < 1e-9);
            }

            #[test]
            fn quantile_monotone(
                lengths in proptest::collection::vec(0u32..10_000, 1..100),
                q1 in 0.0f64..1.0,
                q2 in 0.0f64..1.0,
            ) {
                let d = OutputLengthDistribution::from_lengths(lengths.iter().copied()).unwrap();
                let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
                prop_assert!(d.quantile(lo) <= d.quantile(hi));
            }
        }
    }
}
