//! The Past-Future scheduler (paper Algorithm 1).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::distribution::OutputLengthDistribution;
use crate::estimator::{BatchEntry, FutureMemoryEstimator};
use crate::history::OutputLengthHistory;
use crate::scheduler::{MemoryState, QueuedRequest, RunningRequest, Scheduler};

/// Output-length prediction based on the historical distribution
/// (paper Section 3.2).
///
/// For a queued request the predicted total output length is a draw from
/// `P(l)`; for a request that has already generated `l_t` tokens it is a
/// draw from the conditional `P(l | l > l_t)`, refreshed at every
/// scheduling step so the prediction tracks reality as the request keeps
/// generating. When the history cannot answer (cold start, or `l_t` beyond
/// every historical length) the predictor falls back to the request's
/// `max_new_tokens` cap — exactly the paper's service-startup
/// initialization.
#[derive(Debug, Clone)]
pub struct OutputLengthPredictor {
    history: OutputLengthHistory,
}

impl OutputLengthPredictor {
    /// Creates a predictor with the given history window size.
    pub fn new(window: usize) -> Self {
        OutputLengthPredictor {
            history: OutputLengthHistory::new(window),
        }
    }

    /// Records a finished request's actual output length.
    pub fn record(&mut self, output_len: u32) {
        self.history.record(output_len);
    }

    /// Read access to the backing history.
    pub fn history(&self) -> &OutputLengthHistory {
        &self.history
    }

    /// Builds the current `P(l)`, or `None` before any completion.
    pub fn distribution(&self) -> Option<OutputLengthDistribution> {
        self.history.distribution()
    }

    /// Predicts the total output length of a request that has generated
    /// `generated` tokens so far, clamped to its `max_new_tokens` cap.
    ///
    /// A still-running request always gets a prediction strictly greater
    /// than `generated` (it must emit at least one more token), except when
    /// it has reached the cap, in which case the prediction equals the cap.
    pub fn predict<R: rand::Rng + ?Sized>(
        &self,
        rng: &mut R,
        distribution: Option<&OutputLengthDistribution>,
        generated: u32,
        max_new_tokens: u32,
    ) -> u32 {
        let fallback = max_new_tokens;
        let Some(dist) = distribution else {
            return fallback;
        };
        let sampled = if generated == 0 {
            dist.sample(rng)
        } else {
            match dist.sample_greater_than(rng, generated) {
                Some(v) => v,
                None => return fallback,
            }
        };
        sampled.clamp(generated.saturating_add(1), max_new_tokens.max(1))
    }
}

/// The Past-Future scheduler (paper Algorithm 1, deployed in LightLLM).
///
/// At every admission opportunity it:
///
/// 1. builds `P(l)` from the sliding window of recently finished requests;
/// 2. samples a fresh predicted output length for every running request
///    from `P(l > l_t)` and for every queue candidate from `P(l)`;
/// 3. walks the queue in FCFS order, admitting each candidate only while
///    the future required memory `M*` (Eq. 2–4) of the would-be batch stays
///    within `capacity × (1 − reserved_frac)`.
///
/// `sample_repeats` full passes are evaluated and the most conservative
/// admission count wins, which is the paper's "repeat the sampling
/// prediction several times when the running batch is small" refinement —
/// it suppresses the variance of single draws.
#[derive(Debug)]
pub struct PastFutureScheduler {
    predictor: OutputLengthPredictor,
    reserved_frac: f64,
    sample_repeats: usize,
    rng: StdRng,
    name: String,
    /// `P(l)` cache: rebuilding (and re-sorting) the distribution from the
    /// history ring is the scheduler's dominant cost, yet it only changes
    /// when a request finishes. Invalidated by `on_request_finished`.
    dist_cache: Option<OutputLengthDistribution>,
    dist_dirty: bool,
    /// Reusable admission batch, kept in Eq. 2 order (`remaining`
    /// descending) so each candidate probe is a binary insertion plus a
    /// linear `peak_memory_sorted` scan instead of a clone + full sort.
    entries: Vec<BatchEntry>,
}

impl PastFutureScheduler {
    /// Creates a scheduler.
    ///
    /// * `window` — history window size (paper default 1000);
    /// * `reserved_frac` — fraction of capacity kept free as a buffer
    ///   against distribution shift (paper evaluates 3%, 5%, 10%);
    /// * `sample_repeats` — number of sampling passes, the most
    ///   conservative of which is used (≥ 1);
    /// * `seed` — RNG seed for the sampling passes.
    ///
    /// # Panics
    ///
    /// Panics if `reserved_frac` is outside `[0, 1)` or `sample_repeats`
    /// is 0.
    pub fn new(window: usize, reserved_frac: f64, sample_repeats: usize, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&reserved_frac),
            "reserved fraction {reserved_frac} outside [0, 1)"
        );
        assert!(sample_repeats > 0, "sample_repeats must be at least 1");
        PastFutureScheduler {
            predictor: OutputLengthPredictor::new(window),
            reserved_frac,
            sample_repeats,
            rng: StdRng::seed_from_u64(seed),
            name: format!("past-future(reserved={:.0}%)", reserved_frac * 100.0),
            dist_cache: None,
            dist_dirty: true,
            entries: Vec::new(),
        }
    }

    /// The paper's default configuration: window 1000, 5% reserved memory,
    /// 4 sampling passes.
    pub fn with_defaults(seed: u64) -> Self {
        PastFutureScheduler::new(OutputLengthHistory::DEFAULT_WINDOW, 0.05, 4, seed)
    }

    /// The reserved-memory fraction.
    pub fn reserved_frac(&self) -> f64 {
        self.reserved_frac
    }

    /// Read access to the predictor (for diagnostics).
    pub fn predictor(&self) -> &OutputLengthPredictor {
        &self.predictor
    }

    /// One full Algorithm-1 pass: returns how many queue-front requests fit.
    fn admission_pass(
        &mut self,
        running: &[RunningRequest],
        queue: &[QueuedRequest],
        budget: u64,
    ) -> usize {
        let dist = self.dist_cache.as_ref();
        // Lines 2–6: refresh predictions for the running batch.
        self.entries.clear();
        for r in running {
            let predicted =
                self.predictor
                    .predict(&mut self.rng, dist, r.generated, r.max_new_tokens);
            self.entries.push(BatchEntry {
                committed: r.committed(),
                remaining: u64::from(predicted.saturating_sub(r.generated).max(1)),
            });
        }
        FutureMemoryEstimator::sort_by_remaining_desc(&mut self.entries);
        // Lines 7–16: admit queue candidates while M* fits the budget.
        // Candidates are modelled at their post-prefill state (the prefill
        // emits their first token while the rest of the batch is paused).
        // The batch stays in Eq. 2 order across insertions, so each probe
        // is O(log n) placement + O(n) scan; M* is permutation-invariant,
        // so the result is identical to re-sorting from scratch.
        let mut admitted = 0;
        for candidate in queue {
            let predicted = self.predictor.predict(
                &mut self.rng,
                dist,
                candidate.generated,
                candidate.max_new_tokens,
            );
            let (committed, remaining) = candidate.post_prefill_entry(predicted);
            let pos = self.entries.partition_point(|e| e.remaining >= remaining);
            self.entries.insert(
                pos,
                BatchEntry {
                    committed,
                    remaining,
                },
            );
            if FutureMemoryEstimator::peak_memory_sorted(&self.entries) <= budget {
                admitted += 1;
            } else {
                break;
            }
        }
        admitted
    }
}

impl Scheduler for PastFutureScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn plan_admission(
        &mut self,
        running: &[RunningRequest],
        queue: &[QueuedRequest],
        memory: &MemoryState,
    ) -> usize {
        if queue.is_empty() {
            return 0;
        }
        if self.dist_dirty {
            self.dist_cache = self.predictor.distribution();
            self.dist_dirty = false;
        }
        let budget = (memory.capacity_tokens as f64 * (1.0 - self.reserved_frac)) as u64;
        let mut admitted = usize::MAX;
        for _ in 0..self.sample_repeats {
            admitted = admitted.min(self.admission_pass(running, queue, budget));
            if admitted == 0 {
                break;
            }
        }
        admitted
    }

    fn on_request_finished(&mut self, output_len: u32) {
        self.predictor.record(output_len);
        self.dist_dirty = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn queued(id: u64, input: u32, max_new: u32) -> QueuedRequest {
        QueuedRequest {
            id,
            input_len: input,
            generated: 0,
            max_new_tokens: max_new,
            oracle_remaining: None,
        }
    }

    fn running(id: u64, input: u32, generated: u32, max_new: u32) -> RunningRequest {
        RunningRequest {
            id,
            input_len: input,
            generated,
            max_new_tokens: max_new,
            oracle_remaining: None,
        }
    }

    fn memory(capacity: u64, used: u64) -> MemoryState {
        MemoryState {
            capacity_tokens: capacity,
            used_tokens: used,
        }
    }

    #[test]
    fn cold_start_falls_back_to_max_new_tokens() {
        // Empty history: predictions equal max_new_tokens, so the scheduler
        // behaves exactly like the conservative baseline.
        let mut s = PastFutureScheduler::new(100, 0.0, 1, 1);
        // Each request budgets 10 input + 90 output = 100 tokens.
        let queue: Vec<QueuedRequest> = (0..5).map(|i| queued(i, 10, 90)).collect();
        let n = s.plan_admission(&[], &queue, &memory(250, 0));
        assert_eq!(n, 2, "only two 100-token worst cases fit in 250");
    }

    #[test]
    fn warm_history_admits_more_than_cold() {
        // History says outputs are ~20 tokens, far below the 90-token cap.
        let mut s = PastFutureScheduler::new(100, 0.0, 1, 1);
        for _ in 0..100 {
            s.on_request_finished(20);
        }
        let queue: Vec<QueuedRequest> = (0..8).map(|i| queued(i, 10, 90)).collect();
        let n = s.plan_admission(&[], &queue, &memory(250, 0));
        // Each request now budgets ~30 tokens; all of them fit where the
        // cold scheduler admitted 2.
        assert!(n > 2, "warm history should admit more, got {n}");
    }

    #[test]
    fn reserved_fraction_shrinks_budget() {
        let mk = |reserved: f64| {
            let mut s = PastFutureScheduler::new(100, reserved, 1, 1);
            for _ in 0..100 {
                s.on_request_finished(50);
            }
            let queue: Vec<QueuedRequest> = (0..10).map(|i| queued(i, 50, 100)).collect();
            s.plan_admission(&[], &queue, &memory(1000, 0))
        };
        let no_reserve = mk(0.0);
        let heavy_reserve = mk(0.3);
        assert!(
            no_reserve > heavy_reserve,
            "reserve must reduce admission: {no_reserve} vs {heavy_reserve}"
        );
    }

    #[test]
    fn accounts_for_running_batch_growth() {
        let mut s = PastFutureScheduler::new(100, 0.0, 1, 1);
        for _ in 0..100 {
            s.on_request_finished(100);
        }
        // Running request has committed 150 and will grow ~50 more.
        let run = [running(0, 100, 50, 200)];
        let queue = [queued(1, 100, 200)];
        // Capacity 260: running alone peaks at 200; adding the candidate's
        // 100 input + ~100 output cannot fit.
        let n = s.plan_admission(&run, &queue, &memory(260, 150));
        assert_eq!(n, 0);
        // With ample capacity it is admitted.
        let n = s.plan_admission(&run, &queue, &memory(1000, 150));
        assert_eq!(n, 1);
    }

    #[test]
    fn admission_is_fcfs_prefix() {
        let mut s = PastFutureScheduler::new(100, 0.0, 1, 1);
        for _ in 0..100 {
            s.on_request_finished(10);
        }
        // First request is huge and cannot fit; the second would fit alone
        // but FCFS order must stop at the first reject.
        let queue = [queued(0, 10_000, 10_100), queued(1, 10, 100)];
        let n = s.plan_admission(&[], &queue, &memory(500, 0));
        assert_eq!(n, 0);
    }

    #[test]
    fn more_repeats_is_more_conservative() {
        // With a bimodal history, a single pass can get lucky; the min over
        // repeats never admits more than any single pass.
        let run_with_repeats = |repeats: usize| {
            let mut s = PastFutureScheduler::new(1000, 0.0, repeats, 99);
            for i in 0..1000 {
                s.on_request_finished(if i % 2 == 0 { 10 } else { 500 });
            }
            let queue: Vec<QueuedRequest> = (0..20).map(|i| queued(i, 50, 600)).collect();
            s.plan_admission(&[], &queue, &memory(3000, 0))
        };
        let single: usize = run_with_repeats(1);
        let many = run_with_repeats(16);
        assert!(many <= single, "repeats must not increase admission");
    }

    #[test]
    fn predictor_conditional_refresh() {
        let mut p = OutputLengthPredictor::new(10);
        for len in [100u32, 200, 300] {
            p.record(len);
        }
        let dist = p.distribution().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // A request at 250 generated tokens can only be predicted as 300.
        for _ in 0..50 {
            let pred = p.predict(&mut rng, Some(&dist), 250, 1000);
            assert_eq!(pred, 300);
        }
        // A request past every historical length falls back to its cap.
        assert_eq!(p.predict(&mut rng, Some(&dist), 300, 1000), 1000);
        // Cold start falls back to the cap.
        assert_eq!(p.predict(&mut rng, None, 0, 777), 777);
    }

    #[test]
    fn prediction_clamped_to_cap() {
        let mut p = OutputLengthPredictor::new(10);
        for _ in 0..10 {
            p.record(5000);
        }
        let dist = p.distribution().unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        // History says 5000, but the request is capped at 128.
        assert_eq!(p.predict(&mut rng, Some(&dist), 0, 128), 128);
        // Running request: prediction stays > generated even when clamped.
        assert_eq!(p.predict(&mut rng, Some(&dist), 100, 128), 128);
    }

    #[test]
    fn name_reflects_reserve() {
        let s = PastFutureScheduler::new(100, 0.1, 1, 0);
        assert_eq!(s.name(), "past-future(reserved=10%)");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn invalid_reserve_panics() {
        let _ = PastFutureScheduler::new(100, 1.0, 1, 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_repeats_panics() {
        let _ = PastFutureScheduler::new(100, 0.0, 0, 0);
    }
}
