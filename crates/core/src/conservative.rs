//! The conservative baseline scheduler (TGI / DeepSpeed-MII style).

use crate::scheduler::{MemoryState, QueuedRequest, RunningRequest, Scheduler};

/// Conservative admission: budget every request at its worst case,
/// `input_len + max_new_tokens` (paper Section 2.4).
///
/// Because real outputs are usually far shorter than the generation cap,
/// this wastes most of the memory it reserves: requests queue for a long
/// time (breaking the TTFT SLA under load) and utilization stays low. The
/// `overcommit` factor (> 1) pretends capacity is larger, the tuning knob
/// the paper's Table 1 explores (e.g. 125%/150%) — it trades queueing for
/// evictions.
#[derive(Debug, Clone)]
pub struct ConservativeScheduler {
    overcommit: f64,
    name: String,
}

impl ConservativeScheduler {
    /// Creates a scheduler with the given overcommit factor (1.0 = none).
    ///
    /// # Panics
    ///
    /// Panics if `overcommit < 1.0`.
    pub fn new(overcommit: f64) -> Self {
        assert!(overcommit >= 1.0, "overcommit {overcommit} below 1.0");
        let name = if (overcommit - 1.0).abs() < f64::EPSILON {
            "conservative(no overcommit)".to_string()
        } else {
            format!("conservative(overcommit={:.0}%)", overcommit * 100.0)
        };
        ConservativeScheduler { overcommit, name }
    }

    /// The overcommit factor.
    pub fn overcommit(&self) -> f64 {
        self.overcommit
    }
}

impl Default for ConservativeScheduler {
    fn default() -> Self {
        ConservativeScheduler::new(1.0)
    }
}

impl Scheduler for ConservativeScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn plan_admission(
        &mut self,
        running: &[RunningRequest],
        queue: &[QueuedRequest],
        memory: &MemoryState,
    ) -> usize {
        let budget = (memory.capacity_tokens as f64 * self.overcommit) as u64;
        // Worst-case footprint of the running batch: every request runs to
        // its generation cap.
        let mut committed: u64 = running
            .iter()
            .map(|r| r.committed() + r.worst_case_remaining())
            .sum();
        let mut admitted = 0;
        for candidate in queue {
            let need = candidate.committed_on_admission() + candidate.worst_case_remaining();
            if committed + need <= budget {
                committed += need;
                admitted += 1;
            } else {
                break;
            }
        }
        admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queued(id: u64, input: u32, max_new: u32) -> QueuedRequest {
        QueuedRequest {
            id,
            input_len: input,
            generated: 0,
            max_new_tokens: max_new,
            oracle_remaining: None,
        }
    }

    #[test]
    fn budgets_worst_case() {
        let mut s = ConservativeScheduler::new(1.0);
        // Each request: 10 input + 90 cap = 100 worst case.
        let queue: Vec<QueuedRequest> = (0..5).map(|i| queued(i, 10, 90)).collect();
        let memory = MemoryState {
            capacity_tokens: 250,
            used_tokens: 0,
        };
        assert_eq!(s.plan_admission(&[], &queue, &memory), 2);
    }

    #[test]
    fn overcommit_admits_more() {
        let queue: Vec<QueuedRequest> = (0..5).map(|i| queued(i, 10, 90)).collect();
        let memory = MemoryState {
            capacity_tokens: 250,
            used_tokens: 0,
        };
        let mut plain = ConservativeScheduler::new(1.0);
        let mut over = ConservativeScheduler::new(1.5);
        assert_eq!(plain.plan_admission(&[], &queue, &memory), 2);
        assert_eq!(over.plan_admission(&[], &queue, &memory), 3);
    }

    #[test]
    fn counts_running_batch_worst_case() {
        let mut s = ConservativeScheduler::new(1.0);
        let running = [RunningRequest {
            id: 0,
            input_len: 100,
            generated: 10,
            max_new_tokens: 100,
            oracle_remaining: None,
        }];
        // Running worst case: 100 + 100 = 200 (generated counts toward cap).
        let queue = [queued(1, 10, 40)];
        let tight = MemoryState {
            capacity_tokens: 249,
            used_tokens: 110,
        };
        assert_eq!(s.plan_admission(&running, &queue, &tight), 0);
        let enough = MemoryState {
            capacity_tokens: 250,
            used_tokens: 110,
        };
        assert_eq!(s.plan_admission(&running, &queue, &enough), 1);
    }

    #[test]
    fn unused_current_memory_is_irrelevant() {
        // Conservative reasons about worst-case commitments, not current
        // usage: even with zero current usage it refuses what cannot fit at
        // the cap.
        let mut s = ConservativeScheduler::new(1.0);
        let queue = [queued(0, 10, 4096)];
        let memory = MemoryState {
            capacity_tokens: 4000,
            used_tokens: 0,
        };
        assert_eq!(s.plan_admission(&[], &queue, &memory), 0);
    }

    #[test]
    fn names() {
        assert_eq!(
            ConservativeScheduler::new(1.0).name(),
            "conservative(no overcommit)"
        );
        assert_eq!(
            ConservativeScheduler::new(1.25).name(),
            "conservative(overcommit=125%)"
        );
    }

    #[test]
    #[should_panic(expected = "below 1.0")]
    fn undercommit_panics() {
        let _ = ConservativeScheduler::new(0.9);
    }
}
