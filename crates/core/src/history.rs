//! Sliding window of historical output lengths (the "Past").

use std::collections::VecDeque;

use crate::distribution::OutputLengthDistribution;

/// Ring buffer of the output lengths of the `window` most recently finished
/// requests, denoted `L_h` in the paper (Eq. 1 uses `w = 1000`).
///
/// # Example
///
/// ```
/// use pf_core::OutputLengthHistory;
///
/// let mut history = OutputLengthHistory::new(3);
/// for len in [10, 20, 30, 40] {
///     history.record(len);
/// }
/// // Window of 3: the oldest observation (10) has been evicted.
/// assert_eq!(history.len(), 3);
/// assert_eq!(history.iter().min(), Some(20));
/// ```
#[derive(Debug, Clone)]
pub struct OutputLengthHistory {
    window: usize,
    buf: VecDeque<u32>,
}

impl OutputLengthHistory {
    /// The paper's default window size.
    pub const DEFAULT_WINDOW: usize = 1000;

    /// Creates an empty history with the given window size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "history window must be positive");
        OutputLengthHistory {
            window,
            buf: VecDeque::with_capacity(window),
        }
    }

    /// Records the actual output length of a finished request.
    pub fn record(&mut self, output_len: u32) {
        if self.buf.len() == self.window {
            self.buf.pop_front();
        }
        self.buf.push_back(output_len);
    }

    /// Window size `w`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of observations currently held (≤ window).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True before any request has finished.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Iterates over the retained observations, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.buf.iter().copied()
    }

    /// Builds the empirical distribution `P(l)` over the window (Eq. 1), or
    /// `None` when no request has finished yet.
    pub fn distribution(&self) -> Option<OutputLengthDistribution> {
        OutputLengthDistribution::from_lengths(self.iter())
    }
}

impl Default for OutputLengthHistory {
    fn default() -> Self {
        OutputLengthHistory::new(Self::DEFAULT_WINDOW)
    }
}

impl Extend<u32> for OutputLengthHistory {
    fn extend<T: IntoIterator<Item = u32>>(&mut self, iter: T) {
        for len in iter {
            self.record(len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_up_to_window() {
        let mut h = OutputLengthHistory::new(2);
        assert!(h.is_empty());
        h.record(5);
        h.record(6);
        h.record(7);
        assert_eq!(h.len(), 2);
        let v: Vec<u32> = h.iter().collect();
        assert_eq!(v, vec![6, 7]);
    }

    #[test]
    fn default_window_is_1000() {
        let h = OutputLengthHistory::default();
        assert_eq!(h.window(), 1000);
    }

    #[test]
    fn distribution_roundtrip() {
        let mut h = OutputLengthHistory::new(10);
        assert!(h.distribution().is_none());
        h.extend([1, 2, 3]);
        let d = h.distribution().unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.max(), 3);
    }

    #[test]
    fn extend_honours_window() {
        let mut h = OutputLengthHistory::new(5);
        h.extend(0..100u32);
        assert_eq!(h.len(), 5);
        assert_eq!(h.iter().collect::<Vec<_>>(), vec![95, 96, 97, 98, 99]);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = OutputLengthHistory::new(0);
    }
}
