//! Declarative scheduler configuration.

use std::fmt;

use crate::aggressive::AggressiveScheduler;
use crate::conservative::ConservativeScheduler;
use crate::history::OutputLengthHistory;
use crate::oracle::OracleScheduler;
use crate::past_future::PastFutureScheduler;
use crate::scheduler::Scheduler;

/// Serializable description of a scheduler, used by simulation configs and
/// the experiment harness to build fresh [`Scheduler`] instances per run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SchedulerConfig {
    /// The paper's Past-Future scheduler (Algorithm 1).
    PastFuture {
        /// History window size (`w` in Eq. 1).
        window: usize,
        /// Reserved capacity fraction in `[0, 1)`.
        reserved_frac: f64,
        /// Sampling passes; the most conservative wins.
        sample_repeats: usize,
    },
    /// vLLM-style aggressive admission below a memory watermark.
    Aggressive {
        /// Watermark in `(0, 1]`.
        watermark: f64,
    },
    /// TGI-style conservative worst-case budgeting.
    Conservative {
        /// Overcommit factor ≥ 1.
        overcommit: f64,
    },
    /// Ground-truth oracle ("theoretical optimum").
    Oracle,
}

impl SchedulerConfig {
    /// Past-Future with the paper's defaults (window 1000, reserved 5%,
    /// 4 sampling passes).
    pub fn past_future() -> Self {
        SchedulerConfig::PastFuture {
            window: OutputLengthHistory::DEFAULT_WINDOW,
            reserved_frac: 0.05,
            sample_repeats: 4,
        }
    }

    /// Past-Future with an explicit reserved fraction.
    pub fn past_future_reserved(reserved_frac: f64) -> Self {
        SchedulerConfig::PastFuture {
            window: OutputLengthHistory::DEFAULT_WINDOW,
            reserved_frac,
            sample_repeats: 4,
        }
    }

    /// Aggressive with an explicit watermark.
    pub fn aggressive(watermark: f64) -> Self {
        SchedulerConfig::Aggressive { watermark }
    }

    /// Conservative without overcommit.
    pub fn conservative() -> Self {
        SchedulerConfig::Conservative { overcommit: 1.0 }
    }

    /// Conservative with overcommit.
    pub fn conservative_overcommit(overcommit: f64) -> Self {
        SchedulerConfig::Conservative { overcommit }
    }

    /// Instantiates the scheduler. `seed` feeds the Past-Future sampling
    /// passes; the other policies are deterministic and ignore it.
    pub fn build(&self, seed: u64) -> Box<dyn Scheduler> {
        match *self {
            SchedulerConfig::PastFuture {
                window,
                reserved_frac,
                sample_repeats,
            } => Box::new(PastFutureScheduler::new(
                window,
                reserved_frac,
                sample_repeats,
                seed,
            )),
            SchedulerConfig::Aggressive { watermark } => {
                Box::new(AggressiveScheduler::new(watermark))
            }
            SchedulerConfig::Conservative { overcommit } => {
                Box::new(ConservativeScheduler::new(overcommit))
            }
            SchedulerConfig::Oracle => Box::new(OracleScheduler::new()),
        }
    }

    /// Whether this configuration needs ground-truth output lengths from
    /// the engine (only the oracle does).
    pub fn needs_oracle(&self) -> bool {
        matches!(self, SchedulerConfig::Oracle)
    }
}

impl fmt::Display for SchedulerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerConfig::PastFuture { reserved_frac, .. } => {
                write!(f, "past-future(reserved={:.0}%)", reserved_frac * 100.0)
            }
            SchedulerConfig::Aggressive { watermark } => {
                write!(f, "aggressive(watermark={:.0}%)", watermark * 100.0)
            }
            SchedulerConfig::Conservative { overcommit } => {
                if (overcommit - 1.0).abs() < f64::EPSILON {
                    write!(f, "conservative(no overcommit)")
                } else {
                    write!(f, "conservative(overcommit={:.0}%)", overcommit * 100.0)
                }
            }
            SchedulerConfig::Oracle => write!(f, "theoretical-optimum"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_matching_names() {
        for config in [
            SchedulerConfig::past_future(),
            SchedulerConfig::aggressive(0.95),
            SchedulerConfig::conservative(),
            SchedulerConfig::conservative_overcommit(1.5),
            SchedulerConfig::Oracle,
        ] {
            let scheduler = config.build(1);
            assert_eq!(scheduler.name(), config.to_string());
        }
    }

    #[test]
    fn only_oracle_needs_truth() {
        assert!(SchedulerConfig::Oracle.needs_oracle());
        assert!(!SchedulerConfig::past_future().needs_oracle());
        assert!(!SchedulerConfig::aggressive(0.9).needs_oracle());
        assert!(!SchedulerConfig::conservative().needs_oracle());
    }

    #[test]
    fn defaults_match_paper() {
        match SchedulerConfig::past_future() {
            SchedulerConfig::PastFuture {
                window,
                reserved_frac,
                sample_repeats,
            } => {
                assert_eq!(window, 1000);
                assert!((reserved_frac - 0.05).abs() < 1e-12);
                assert_eq!(sample_repeats, 4);
            }
            _ => unreachable!(),
        }
    }
}
