//! The scheduler interface shared by all admission policies.

use std::fmt;

/// Snapshot of one request in the running batch, as visible to a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunningRequest {
    /// Engine-assigned id.
    pub id: u64,
    /// Prompt length (`l_p`), including image tokens.
    pub input_len: u32,
    /// Tokens generated so far (`l_t`).
    pub generated: u32,
    /// Generation cap configured for the request.
    pub max_new_tokens: u32,
    /// Ground-truth remaining output tokens. `None` for real schedulers;
    /// `Some` only when the engine runs the oracle ("theoretical optimum")
    /// baseline.
    pub oracle_remaining: Option<u32>,
}

impl RunningRequest {
    /// Tokens currently committed to the KV cache (`l_p + l_t`).
    pub fn committed(&self) -> u64 {
        u64::from(self.input_len) + u64::from(self.generated)
    }

    /// Worst-case remaining output tokens (the generation cap minus what
    /// has been produced, never less than 1 for a still-running request).
    pub fn worst_case_remaining(&self) -> u64 {
        u64::from(self.max_new_tokens.saturating_sub(self.generated).max(1))
    }
}

/// Snapshot of one queued request, as visible to a scheduler.
///
/// `generated > 0` identifies a request that was evicted mid-generation and
/// re-queued: its produced tokens are retained logically and will be
/// re-prefilled on readmission (recompute preemption).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QueuedRequest {
    /// Engine-assigned id.
    pub id: u64,
    /// Prompt length (`l_p`), including image tokens.
    pub input_len: u32,
    /// Tokens generated before an eviction (0 for fresh requests).
    pub generated: u32,
    /// Generation cap configured for the request.
    pub max_new_tokens: u32,
    /// Ground-truth remaining output tokens (oracle baseline only).
    pub oracle_remaining: Option<u32>,
}

impl QueuedRequest {
    /// Tokens the prefill of this request will commit (`l_p + l_t`).
    pub fn committed_on_admission(&self) -> u64 {
        u64::from(self.input_len) + u64::from(self.generated)
    }

    /// Worst-case remaining output tokens.
    pub fn worst_case_remaining(&self) -> u64 {
        u64::from(self.max_new_tokens.saturating_sub(self.generated).max(1))
    }

    /// The request's state right after its admission prefill, given a
    /// predicted *total* output length: the prefill itself emits the first
    /// post-admission token during a step in which the running batch does
    /// not grow, so future-memory estimates must start from
    /// `(l_p + l_t + 1, remaining − 1)` to stay exact.
    pub fn post_prefill_entry(&self, predicted_total: u32) -> (u64, u64) {
        let committed = self.committed_on_admission() + 1;
        let remaining = u64::from(predicted_total.saturating_sub(self.generated).max(1)) - 1;
        (committed, remaining)
    }
}

/// KV-cache occupancy snapshot handed to schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemoryState {
    /// Total KV-cache capacity in token slots.
    pub capacity_tokens: u64,
    /// Token slots currently in use.
    pub used_tokens: u64,
}

impl MemoryState {
    /// Free token slots.
    pub fn available_tokens(&self) -> u64 {
        self.capacity_tokens.saturating_sub(self.used_tokens)
    }
}

/// An admission policy for continuous batching.
///
/// The engine calls [`Scheduler::plan_admission`] before every prefill
/// opportunity. The scheduler returns how many requests to admit **from the
/// front of the queue** (FCFS — the paper's Algorithm 1 walks the queue in
/// order and stops at the first request that does not fit). The engine then
/// performs the prefill and later reports completions via
/// [`Scheduler::on_request_finished`].
///
/// Implementations must be deterministic given their construction seed.
pub trait Scheduler: fmt::Debug {
    /// Human-readable policy name (stable, used in reports).
    fn name(&self) -> &str;

    /// Decides how many queue-front requests to admit now.
    ///
    /// Returning `n` admits `queue[..n]`. Must not exceed `queue.len()`.
    fn plan_admission(
        &mut self,
        running: &[RunningRequest],
        queue: &[QueuedRequest],
        memory: &MemoryState,
    ) -> usize;

    /// Observes the actual output length of a finished request (feeds the
    /// Past-Future history; default: ignored).
    fn on_request_finished(&mut self, output_len: u32) {
        let _ = output_len;
    }

    /// Observes an eviction of a running request (default: ignored).
    fn on_eviction(&mut self, id: u64) {
        let _ = id;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_request_accessors() {
        let r = RunningRequest {
            id: 1,
            input_len: 100,
            generated: 30,
            max_new_tokens: 256,
            oracle_remaining: None,
        };
        assert_eq!(r.committed(), 130);
        assert_eq!(r.worst_case_remaining(), 226);
    }

    #[test]
    fn worst_case_remaining_never_zero() {
        let r = RunningRequest {
            id: 1,
            input_len: 10,
            generated: 256,
            max_new_tokens: 256,
            oracle_remaining: None,
        };
        assert_eq!(r.worst_case_remaining(), 1);
    }

    #[test]
    fn queued_request_accounts_for_eviction_state() {
        let q = QueuedRequest {
            id: 2,
            input_len: 50,
            generated: 40,
            max_new_tokens: 128,
            oracle_remaining: None,
        };
        assert_eq!(q.committed_on_admission(), 90);
        assert_eq!(q.worst_case_remaining(), 88);
    }

    #[test]
    fn memory_state_available() {
        let m = MemoryState {
            capacity_tokens: 100,
            used_tokens: 30,
        };
        assert_eq!(m.available_tokens(), 70);
        let over = MemoryState {
            capacity_tokens: 100,
            used_tokens: 130,
        };
        assert_eq!(over.available_tokens(), 0);
    }
}
