//! The Past-Future request scheduler (the paper's contribution) and its
//! baselines.
//!
//! Continuous batching admits queued requests into the running batch based
//! on an estimate of how much KV-cache memory the batch will need. The
//! Past-Future scheduler (paper Section 3) estimates this precisely by
//! combining:
//!
//! * **the Past** — [`OutputLengthHistory`] records the actual output
//!   lengths of recently finished requests (sliding window, default 1000);
//!   [`OutputLengthDistribution`] is the resulting empirical distribution
//!   `P(l)` (Eq. 1), which supports sampling from both `P(l)` and the
//!   conditional `P(l > l_t)` used to refresh predictions for requests that
//!   have already generated `l_t` tokens;
//! * **the Future** — [`FutureMemoryEstimator`] computes the memory the
//!   running batch will occupy at every future request-completion point
//!   (Eq. 2–3) and takes the maximum (Eq. 4): the *future required memory*
//!   `M*`. Admission is allowed only while `M*` fits in capacity.
//!
//! Four [`Scheduler`] implementations are provided:
//!
//! | Scheduler | Policy | Models |
//! |---|---|---|
//! | [`PastFutureScheduler`] | Algorithm 1 | LightLLM |
//! | [`AggressiveScheduler`] | admit while current usage below a watermark | vLLM |
//! | [`ConservativeScheduler`] | budget `input + max_new_tokens` per request | TGI, DeepSpeed-MII |
//! | [`OracleScheduler`] | Eq. 2–4 with *true* output lengths | the paper's "theoretical optimum" |
//!
//! # Example
//!
//! ```
//! use pf_core::{
//!     FutureMemoryEstimator, BatchEntry, OutputLengthHistory, Scheduler,
//!     PastFutureScheduler, MemoryState, QueuedRequest,
//! };
//!
//! // Future required memory of a three-request batch (paper Figure 5:
//! // scheduling the queued request at time t needs a peak of 19 tokens).
//! let batch = [
//!     BatchEntry { committed: 5, remaining: 2 },
//!     BatchEntry { committed: 5, remaining: 4 },
//!     BatchEntry { committed: 3, remaining: 5 }, // the newly admitted request
//! ];
//! let peak = FutureMemoryEstimator::peak_memory(&batch);
//! assert_eq!(peak, 19); // max over completion points (Eq. 4)
//!
//! // Admission planning with the Past-Future scheduler.
//! let mut scheduler = PastFutureScheduler::new(1000, 0.05, 4, 42);
//! for len in [100u32, 120, 90, 110] {
//!     scheduler.on_request_finished(len); // warm the history
//! }
//! let queue = [QueuedRequest { id: 1, input_len: 50, generated: 0,
//!                              max_new_tokens: 512, oracle_remaining: None }];
//! let memory = MemoryState { capacity_tokens: 10_000, used_tokens: 0 };
//! let admitted = scheduler.plan_admission(&[], &queue, &memory);
//! assert_eq!(admitted, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aggressive;
mod config;
mod conservative;
mod distribution;
mod estimator;
mod history;
mod oracle;
mod past_future;
mod scheduler;

pub use aggressive::AggressiveScheduler;
pub use config::SchedulerConfig;
pub use conservative::ConservativeScheduler;
pub use distribution::OutputLengthDistribution;
pub use estimator::{AdmissionIndex, BatchEntry, CompletionPoint, FutureMemoryEstimator};
pub use history::OutputLengthHistory;
pub use oracle::OracleScheduler;
pub use past_future::{OutputLengthPredictor, PastFutureScheduler};
pub use scheduler::{MemoryState, QueuedRequest, RunningRequest, Scheduler};
