//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this shim
//! provides the (small) subset of the `rand 0.8` API the workspace actually
//! uses, backed by a xoshiro256++ generator. Sequences differ from upstream
//! `rand`'s `StdRng` (ChaCha12), but every consumer in this workspace only
//! requires determinism for a fixed seed plus reasonable statistical
//! quality, both of which xoshiro256++ provides.
//!
//! Surface implemented:
//!
//! * [`Rng`] — `gen`, `gen_range` (half-open and inclusive integer ranges,
//!   half-open float ranges), `gen_bool`, `fill` (unused helpers omitted);
//! * [`SeedableRng`] — `seed_from_u64`, `from_seed`;
//! * [`rngs::StdRng`];
//! * [`seq::SliceRandom::shuffle`] and [`seq::index::sample`].

#![warn(missing_docs)]

/// Uniformly samplable primitive (the `Standard`-distribution subset).
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128) - (self.start as u128);
                let v = uniform_u128(rng, span);
                (self.start as u128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128) - (start as u128) + 1;
                let v = uniform_u128(rng, span);
                (start as u128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        let u = f64::draw(rng);
        start + u * (end - start)
    }
}

/// Unbiased uniform draw in `[0, span)` via rejection sampling.
fn uniform_u128<G: RngCore + ?Sized>(rng: &mut G, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span = span as u64;
        // Widening-multiply rejection (Lemire); zone is the largest multiple
        // of span that fits in 2^64.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            let (hi, lo) = {
                let m = (v as u128) * (span as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo <= zone {
                return hi as u128;
            }
        }
    } else {
        // Spans over 2^64 only arise for pathological ranges; simple
        // modulo rejection over two words.
        loop {
            let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if v < u128::MAX - u128::MAX % span {
                return v % span;
            }
        }
    }
}

/// Core generator trait: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods (the `rand::Rng` extension trait).
pub trait Rng: RngCore {
    /// Draws a value of a samplable primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "invalid probability {p}");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds (the `rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Seed material.
    type Seed;

    /// Builds a generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    ///
    /// Not the upstream ChaCha12 `StdRng`; see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as upstream rand does.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling extension for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Index sampling (the `rand::seq::index` subset).
    pub mod index {
        use super::super::{Rng, RngCore};

        /// A set of sampled indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Consumes the set into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        /// Samples `amount` distinct indices from `0..length` (partial
        /// Fisher–Yates; order is the selection order).
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} from {length}");
            let mut pool: Vec<usize> = (0..length).collect();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..pool.len());
                pool.swap(i, j);
                out.push(pool[i]);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::index;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: u64 = StdRng::seed_from_u64(1).gen();
        let b: u64 = StdRng::seed_from_u64(1).gen();
        let c: u64 = StdRng::seed_from_u64(2).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(10u32..=12);
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn gen_range_mean_is_central() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| rng.gen_range(0u64..1000)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 499.5).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(6);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn index_sample_distinct() {
        let mut rng = StdRng::seed_from_u64(7);
        let picked = index::sample(&mut rng, 50, 10).into_vec();
        assert_eq!(picked.len(), 10);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert!(picked.iter().all(|&i| i < 50));
    }
}
