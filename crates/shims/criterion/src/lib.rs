//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crate registry, so this shim
//! implements the subset of the criterion 0.5 API the workspace's benches
//! use: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId` and `black_box`.
//!
//! Measurement is a simple mean over timed iterations (warm-up, then
//! `sample_size` samples of auto-scaled iteration batches) printed as
//! `group/id ... <mean> per iter`. There is no statistical analysis, HTML
//! report or regression detection — the benches remain runnable and give
//! ballpark numbers, which is all an offline container can do anyway.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier (stable `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display value.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        run_bench(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(
            &label,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the iteration body.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean time per iteration of the routine, filled by [`Bencher::iter`].
    elapsed_per_iter: Option<Duration>,
    target_time: Duration,
}

impl Bencher {
    /// Times `routine`, auto-scaling the iteration count to fill the
    /// configured measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Estimate cost with one call, then batch to the target window.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let target = self.target_time.max(Duration::from_millis(10));
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed_per_iter = Some(start.elapsed() / iters as u32);
    }
}

fn run_bench<F>(label: &str, sample_size: usize, warm_up: Duration, measurement: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up pass.
    let mut bencher = Bencher {
        elapsed_per_iter: None,
        target_time: warm_up,
    };
    f(&mut bencher);
    // Timed samples.
    let per_sample = measurement / sample_size as u32;
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            elapsed_per_iter: None,
            target_time: per_sample,
        };
        f(&mut bencher);
        if let Some(d) = bencher.elapsed_per_iter {
            samples.push(d);
        }
    }
    if samples.is_empty() {
        println!("{label:<50} (no measurement: Bencher::iter never called)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{label:<50} median {} per iter (min {}, max {}, {} samples)",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3}s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group entry point (name/config/targets form and
/// positional form).
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n * n));
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
