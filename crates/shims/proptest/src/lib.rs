//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crate registry, so this shim
//! implements the subset of the proptest API the workspace uses: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`,
//! `prop_oneof!`, range/tuple/`collection::vec` strategies and `prop_map`.
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. Each test runs `ProptestConfig::cases` deterministic random
//! cases (seeded from the test name), and the first failing case panics
//! with its case number. That keeps the property tests meaningful —
//! deterministic, reproducible, covering the same input space — without
//! reimplementing proptest's shrinking machinery.

#![warn(missing_docs)]

pub mod test_runner {
    //! Test-runner configuration and error types.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (`cases` is the only knob the workspace uses).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property-test assertion.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The deterministic generator driving value sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds a generator from a test name (FNV-1a over the bytes).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (sampling only, no shrinking).

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample_value(&self, rng: &mut TestRng) -> T {
            (**self).sample_value(rng)
        }
    }

    /// Boxes a strategy behind the object-safe [`Strategy`] interface
    /// (used by [`prop_oneof!`](crate::prop_oneof)).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample_value(rng))
        }
    }

    /// Uniform choice between several strategies with a common value type.
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} arms)", self.arms.len())
        }
    }

    impl<T> Union<T> {
        /// Builds a union over the given arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample_value(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].sample_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec`s with element strategy `element` and a length
    /// drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests (see the crate docs for shim semantics).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            $(let $arg = $strat;)+
            for case in 0..config.cases {
                $(let $arg = ($arg).sample_value(&mut rng);)+
                let outcome = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body;
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    ::std::panic!(
                        "property {} failed at case #{}: {}",
                        stringify!($name),
                        case,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 5u32..10, y in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u8..255, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn prop_map_and_oneof(v in prop_oneof![
            (1u32..5).prop_map(|x| x * 2),
            (10u32..20).prop_map(|x| x + 1),
        ]) {
            prop_assert!((2..=8).contains(&v) || (11..=20).contains(&v));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..1000, 5..10);
        let a: Vec<u64> = strat.sample_value(&mut TestRng::for_test("t"));
        let b: Vec<u64> = strat.sample_value(&mut TestRng::for_test("t"));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(_x in 0u32..10) {
                prop_assert!(false, "boom");
            }
        }
        always_fails();
    }
}
